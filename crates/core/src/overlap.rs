//! Communication/computation overlap — the paper's §VI remark made
//! concrete.
//!
//! §VI: "until now we got all these improvements without overlapping the
//! communications on the virtual hierarchies", i.e. further gains are
//! available by hiding panel transfers behind the local multiply. This
//! module realizes that remark as a *double-buffered pivot pipeline*
//! built on the nonblocking collective handles of
//! [`crate::comm::Communicator::ibcast_shared`]:
//!
//! * [`summa_overlap`] keeps a two-slot panel buffer per operand. While
//!   the kernel consumes the panels in slot `k mod 2`, the broadcasts
//!   for step `k+1` stream into the other slot; the wait for a panel is
//!   deferred until the moment the kernel needs it, so a transfer that
//!   finished during the previous multiply costs nothing.
//! * [`hsumma_overlap`] runs the same two-slot protocol on *both* levels
//!   of the hierarchy — inter-group outer panels and intra-group inner
//!   slices — and lets the inner pipeline cross outer-step boundaries:
//!   the last slice of outer step `kg` overlaps with landing outer step
//!   `kg+1` and starting its first slice, so neither broadcast level
//!   ever stalls the multiply loop.
//!
//! The broadcasts are flat pushes (relays would have to block inside the
//! "nonblocking" start, putting the transfer right back on the critical
//! path), and the wire traffic — every (src, dst, tag, bytes) — is
//! identical to the retained one-step-lookahead baselines
//! ([`summa_overlap_lookahead`], [`hsumma_overlap_lookahead`]); only
//! *when* each rank blocks changes. The `overlap_pipeline` bench bin
//! measures the two against each other, and `trace_run --algo overlap`
//! shows the broadcast edges leaving the critical path once the compute
//! term dominates.
//!
//! In the simulator, overlap corresponds to the free-running
//! (non-`sync`) execution semantics; `sim_overlap_benefit` quantifies
//! the gap against blocking-collective SUMMA.

use crate::comm::{Communicator, MatLike, PanelBcast};
use crate::partition::{pivot_offset, pivot_owner};
use crate::summa::check_tiles;
use hsumma_matrix::GridShape;
use hsumma_netsim::{Platform, SimBcast};
use hsumma_runtime::CommError;

pub use crate::summa::SummaConfig;

/// A step's pair of in-flight broadcasts: the A-panel and B-panel
/// handles filling one pipeline slot.
type BcastPair<C> = (
    PanelBcast<<C as Communicator>::Shared>,
    PanelBcast<<C as Communicator>::Shared>,
);

/// A landed outer step's shared panels (`None` on ranks outside the
/// pivot inner row/column, which receive slices instead).
type LandedPair<C> = (
    Option<<C as Communicator>::Shared>,
    Option<<C as Communicator>::Shared>,
);

/// SUMMA with a double-buffered pivot pipeline. Same distribution,
/// operands and result (bit for bit) as [`crate::summa::summa`]; the
/// `cfg.bcast` field is ignored (the flat nonblocking push schedule
/// replaces it).
///
/// Generic over the [`Communicator`] substrate: pushed panels travel as
/// shared handles (an `Arc` refcount bump per destination on the real
/// runtime, a byte charge on the simulator), and completion is deferred
/// to the moment the kernel needs the panel, so transfers that landed
/// during the previous step's multiply are free.
///
/// # Panics
/// Panics on the same inconsistencies as `summa`.
pub fn summa_overlap<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &SummaConfig,
) -> Result<C::Mat, CommError> {
    let (th, tw) = check_tiles(grid, n, a, b, comm.size());
    let bs = cfg.block;
    assert!(bs > 0, "block size must be positive");
    assert_eq!(tw % bs, 0, "block must divide the tile width");
    assert_eq!(th % bs, 0, "block must divide the tile height");

    let (gi, gj) = grid.coords(comm.rank());
    let row_comm = comm.split(gi as u64, gj as i64)?;
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;

    let owner_col = |k: usize| pivot_owner(k, bs, tw);
    let owner_row = |k: usize| pivot_owner(k, bs, th);

    // Starts step k's broadcasts: the pivot owners materialize the panel
    // once and fan it out nonblocking; everyone else gets a pending
    // handle for the slot.
    let start = |k: usize| -> Result<BcastPair<C>, CommError> {
        let ac = owner_col(k);
        let a_h = row_comm.ibcast_shared(
            ac,
            2 * k as u64,
            th,
            bs,
            (gj == ac).then(|| C::share(a.block(0, pivot_offset(k, bs, tw), th, bs))),
        )?;
        let br = owner_row(k);
        let b_h = col_comm.ibcast_shared(
            br,
            2 * k as u64 + 1,
            bs,
            tw,
            (gi == br).then(|| C::share(b.block(pivot_offset(k, bs, th), 0, bs, tw))),
        )?;
        Ok((a_h, b_h))
    };

    let steps = n / bs;
    let mut c = C::Mat::zeros(th, tw);
    let step_pairs = th * tw * bs;
    // Two-slot pipeline: slot k mod 2 holds step k's in-flight
    // broadcasts; while the kernel consumes that slot, step k+1's
    // broadcasts fill the other.
    let mut slots: [Option<BcastPair<C>>; 2] = [None, None];
    if steps > 0 {
        slots[0] = Some(start(0)?);
    }
    for k in 0..steps {
        if k + 1 < steps {
            slots[(k + 1) % 2] = Some(start(k + 1)?);
        }
        let (a_h, b_h) = slots[k % 2].take().expect("slot k was started");
        let a_panel = row_comm.ibcast_wait(a_h)?;
        let b_panel = col_comm.ibcast_wait(b_h)?;
        comm.compute(step_pairs as f64, 2 * step_pairs as u64, || {
            C::Mat::gemm(
                cfg.kernel,
                C::shared_ref(&a_panel),
                C::shared_ref(&b_panel),
                &mut c,
            )
        });
    }
    Ok(c)
}

/// The pre-pipeline overlap baseline: SUMMA with one-step lookahead and
/// *blocking* receives (flat push distribution). Kept verbatim so the
/// `overlap_pipeline` bench can measure the pipelined rewrite against
/// the exact schedule it replaced; produces bit-identical results to
/// [`summa_overlap`] and [`crate::summa::summa`].
///
/// # Panics
/// Panics on the same inconsistencies as `summa`.
pub fn summa_overlap_lookahead<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &SummaConfig,
) -> Result<C::Mat, CommError> {
    let (th, tw) = check_tiles(grid, n, a, b, comm.size());
    let bs = cfg.block;
    assert!(bs > 0, "block size must be positive");
    assert_eq!(tw % bs, 0, "block must divide the tile width");
    assert_eq!(th % bs, 0, "block must divide the tile height");

    let (gi, gj) = grid.coords(comm.rank());
    let row_comm = comm.split(gi as u64, gj as i64)?;
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;

    let owner_col = |k: usize| pivot_owner(k, bs, tw);
    let owner_row = |k: usize| pivot_owner(k, bs, th);

    // Pushes step k's panels to all peers; owners only. The panel is
    // materialized once and shared — each destination gets a shared
    // handle, not its own deep copy.
    let push = |k: usize| -> Result<(), CommError> {
        if gj == owner_col(k) {
            let panel = C::share(a.block(0, pivot_offset(k, bs, tw), th, bs));
            for dst in 0..row_comm.size() {
                if dst != row_comm.rank() {
                    row_comm.send_shared(dst, 2 * k as u64, &panel)?;
                }
            }
        }
        if gi == owner_row(k) {
            let panel = C::share(b.block(pivot_offset(k, bs, th), 0, bs, tw));
            for dst in 0..col_comm.size() {
                if dst != col_comm.rank() {
                    col_comm.send_shared(dst, 2 * k as u64 + 1, &panel)?;
                }
            }
        }
        Ok(())
    };

    let steps = n / bs;
    let mut c = C::Mat::zeros(th, tw);
    // Owners refill this scratch in place each step instead of allocating
    // a fresh panel; non-owners borrow the received shared panel.
    let mut a_scratch = C::Mat::zeros(th, bs);
    let mut b_scratch = C::Mat::zeros(bs, tw);
    let step_pairs = th * tw * bs;
    if steps > 0 {
        push(0)?;
    }
    for k in 0..steps {
        // Lookahead: inject step k+1's panels before computing step k.
        if k + 1 < steps {
            push(k + 1)?;
        }
        let a_recv: C::Shared;
        let a_panel: &C::Mat = if gj == owner_col(k) {
            a.block_into(0, pivot_offset(k, bs, tw), &mut a_scratch);
            &a_scratch
        } else {
            a_recv = row_comm.recv_shared(owner_col(k), 2 * k as u64, th, bs)?;
            C::shared_ref(&a_recv)
        };
        let b_recv: C::Shared;
        let b_panel: &C::Mat = if gi == owner_row(k) {
            b.block_into(pivot_offset(k, bs, th), 0, &mut b_scratch);
            &b_scratch
        } else {
            b_recv = col_comm.recv_shared(owner_row(k), 2 * k as u64 + 1, bs, tw)?;
            C::shared_ref(&b_recv)
        };
        comm.compute(step_pairs as f64, 2 * step_pairs as u64, || {
            C::Mat::gemm(cfg.kernel, a_panel, b_panel, &mut c)
        });
    }
    Ok(c)
}

/// HSUMMA with the double-buffered pivot pipeline *on the virtual
/// hierarchies* (§VI verbatim): two-slot buffers at both broadcast
/// levels. Outer (inter-group) panels for step `kg+1` stream while step
/// `kg`'s inner slices are consumed; inner (intra-group) slices run one
/// slice ahead, and the inner pipeline crosses outer-step boundaries —
/// during the last slice of `kg`, outer step `kg+1` is landed and its
/// first slice started, so the multiply loop never waits on a transfer
/// that could have been overlapped.
///
/// Same operands, distribution and result (bit for bit) as
/// [`crate::hsumma::hsumma`]; the `outer_bcast`/`inner_bcast` fields are
/// ignored (flat nonblocking pushes replace them — relays would have to
/// block, defeating the pipeline).
///
/// # Panics
/// Panics on the same configuration inconsistencies as `hsumma`.
pub fn hsumma_overlap<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &crate::hsumma::HsummaConfig,
) -> Result<C::Mat, CommError> {
    let (th, tw) = check_tiles(grid, n, a, b, comm.size());
    let hg = crate::grid::HierGrid::new(grid, cfg.groups);
    let inner = hg.inner();
    let (bb, bs) = (cfg.outer_block, cfg.inner_block);
    assert!(bs > 0 && bb > 0, "block sizes must be positive");
    assert_eq!(bb % bs, 0, "inner block must divide outer block");
    assert_eq!(tw % bb, 0, "outer block must divide the tile width");
    assert_eq!(th % bb, 0, "outer block must divide the tile height");

    let (gi, gj) = grid.coords(comm.rank());
    let (x, y) = hg.group_of(gi, gj);
    let (i, j) = hg.inner_of(gi, gj);
    let color3 = crate::grid::color3;
    let group_row = comm.split(color3(x, i, j), y as i64)?;
    let group_col = comm.split(color3(y, i, j), x as i64)?;
    let row = comm.split(color3(x, y, i), j as i64)?;
    let col = comm.split(color3(x, y, j), i as i64)?;

    let outer_steps = n / bb;
    let inner_steps = bb / bs;
    let a_owner = |kg: usize| {
        let gcol = pivot_owner(kg, bb, tw);
        (gcol, gcol / inner.cols, gcol % inner.cols) // (grid col, yk, jk)
    };
    let b_owner = |kg: usize| {
        let grow = pivot_owner(kg, bb, th);
        (grow, grow / inner.rows, grow % inner.rows) // (grid row, xk, ik)
    };

    // Starts outer step kg's inter-group broadcasts. Only the pivot
    // inner column (A) / inner row (B) participates: the handle is
    // `None` elsewhere, and those ranks get the panel re-broadcast in
    // inner slices instead.
    type OuterPair<C> = (
        Option<PanelBcast<<C as Communicator>::Shared>>,
        Option<PanelBcast<<C as Communicator>::Shared>>,
    );
    let start_outer = |kg: usize| -> Result<OuterPair<C>, CommError> {
        let (gcol, yk, jk) = a_owner(kg);
        let a_h = if j == jk {
            Some(group_row.ibcast_shared(
                yk,
                2 * kg as u64,
                th,
                bb,
                (gj == gcol).then(|| C::share(a.block(0, pivot_offset(kg, bb, tw), th, bb))),
            )?)
        } else {
            None
        };
        let (grow, xk, ik) = b_owner(kg);
        let b_h = if i == ik {
            Some(group_col.ibcast_shared(
                xk,
                2 * kg as u64 + 1,
                bb,
                tw,
                (gi == grow).then(|| C::share(b.block(pivot_offset(kg, bb, th), 0, bb, tw))),
            )?)
        } else {
            None
        };
        Ok((a_h, b_h))
    };

    let inner_tag = |kg: usize, ki: usize, is_b: bool| {
        (2 * (kg * inner_steps + ki) + usize::from(is_b)) as u64 + (1 << 32)
    };

    // Starts the intra-group broadcasts of slice ki of outer step kg:
    // the holder of the outer panel (the inner pivot row/column, which
    // is exactly the inner root) slices it and fans the slice out.
    let start_inner = |kg: usize,
                       ki: usize,
                       outer_a: Option<&C::Shared>,
                       outer_b: Option<&C::Shared>|
     -> Result<BcastPair<C>, CommError> {
        let (_, _, jk) = a_owner(kg);
        let a_h = row.ibcast_shared(
            jk,
            inner_tag(kg, ki, false),
            th,
            bs,
            outer_a.map(|p| C::share(C::shared_ref(p).block(0, ki * bs, th, bs))),
        )?;
        let (_, _, ik) = b_owner(kg);
        let b_h = col.ibcast_shared(
            ik,
            inner_tag(kg, ki, true),
            bs,
            tw,
            outer_b.map(|p| C::share(C::shared_ref(p).block(ki * bs, 0, bs, tw))),
        )?;
        Ok((a_h, b_h))
    };

    let mut c = C::Mat::zeros(th, tw);
    let inner_pairs = th * tw * bs;
    if outer_steps == 0 {
        return Ok(c);
    }

    // Two-slot buffers at both hierarchy levels. `outer_p[s]` holds the
    // *landed* outer panels of the outer step occupying slot s (shared
    // handles, so consecutive pivot ownership reuses the storage safely
    // — a fresh panel always lands in the *other* slot while this one is
    // still being sliced). `inner_h[idx % 2]` holds the in-flight slice
    // broadcasts for global slice index idx = kg·inner_steps + ki.
    let mut outer_h: [Option<OuterPair<C>>; 2] = [None, None];
    let mut outer_p: [LandedPair<C>; 2] = [(None, None), (None, None)];
    let mut inner_h: [Option<BcastPair<C>>; 2] = [None, None];

    // Prime the pipeline. Ordering rule (it is THE rule of this
    // schedule): a root posts its fan-out *before* it blocks on anything
    // — sender time is a serial resource, so a send issued after a wait
    // arrives a whole wait later at every destination. Hence outer step
    // 1 is started before outer step 0 is landed.
    outer_h[0] = Some(start_outer(0)?);
    if outer_steps > 1 {
        outer_h[1] = Some(start_outer(1)?);
    }
    let (a_h, b_h) = outer_h[0].take().expect("outer 0 started");
    outer_p[0] = (
        a_h.map(|h| group_row.ibcast_wait(h)).transpose()?,
        b_h.map(|h| group_col.ibcast_wait(h)).transpose()?,
    );
    inner_h[0] = Some(start_inner(
        0,
        0,
        outer_p[0].0.as_ref(),
        outer_p[0].1.as_ref(),
    )?);

    for kg in 0..outer_steps {
        for ki in 0..inner_steps {
            let idx = kg * inner_steps + ki;
            let boundary = ki + 1 == inner_steps && kg + 1 < outer_steps;
            // Keep the inner pipeline one slice ahead. At the outer
            // boundary (last slice of kg) this means landing outer step
            // kg+1 and starting *its* first slice — the cross-boundary
            // overlap the one-step-lookahead baseline lacked.
            if ki + 1 < inner_steps {
                let (oa, ob) = &outer_p[kg % 2];
                inner_h[(idx + 1) % 2] = Some(start_inner(kg, ki + 1, oa.as_ref(), ob.as_ref())?);
            } else if boundary {
                // Slot kg%2 is free (its handles were consumed when kg
                // landed); refill it with outer kg+2's fan-out NOW, before
                // any wait below can delay the sends.
                if kg + 2 < outer_steps {
                    outer_h[kg % 2] = Some(start_outer(kg + 2)?);
                }
                // Adaptive handoff: *poll* outer kg+1 (free — no clock
                // advance, no park). Only if both panels already landed
                // does the first slice of kg+1 start here, streaming
                // during the gemm below. A still-in-flight outer panel
                // must NOT be waited for in front of the multiply — that
                // would put the inter-group transfer right back on the
                // critical path — so it lands after the gemm instead,
                // when the wait is hidden behind the compute just done.
                let pair = outer_h[(kg + 1) % 2].as_mut().expect("outer kg+1 started");
                let a_done = match pair.0.as_mut() {
                    Some(h) => group_row.ibcast_test(h)?,
                    None => true,
                };
                let b_done = match pair.1.as_mut() {
                    Some(h) => group_col.ibcast_test(h)?,
                    None => true,
                };
                if a_done && b_done {
                    let (a_h, b_h) = outer_h[(kg + 1) % 2].take().expect("outer kg+1 started");
                    outer_p[(kg + 1) % 2] = (
                        a_h.map(|h| group_row.ibcast_wait(h)).transpose()?,
                        b_h.map(|h| group_col.ibcast_wait(h)).transpose()?,
                    );
                    let (oa, ob) = &outer_p[(kg + 1) % 2];
                    inner_h[(idx + 1) % 2] =
                        Some(start_inner(kg + 1, 0, oa.as_ref(), ob.as_ref())?);
                }
            }
            let (a_h, b_h) = inner_h[idx % 2].take().expect("inner slice started");
            let a_in = row.ibcast_wait(a_h)?;
            let b_in = col.ibcast_wait(b_h)?;
            comm.compute(inner_pairs as f64, 2 * inner_pairs as u64, || {
                C::Mat::gemm(
                    cfg.kernel,
                    C::shared_ref(&a_in),
                    C::shared_ref(&b_in),
                    &mut c,
                )
            });
            if boundary && inner_h[(idx + 1) % 2].is_none() {
                // Outer kg+1 was still in flight before the gemm: land
                // it now, with the multiply's worth of transfer time
                // already credited, and start its first slice.
                let (a_h, b_h) = outer_h[(kg + 1) % 2].take().expect("outer kg+1 started");
                outer_p[(kg + 1) % 2] = (
                    a_h.map(|h| group_row.ibcast_wait(h)).transpose()?,
                    b_h.map(|h| group_col.ibcast_wait(h)).transpose()?,
                );
                let (oa, ob) = &outer_p[(kg + 1) % 2];
                inner_h[(idx + 1) % 2] = Some(start_inner(kg + 1, 0, oa.as_ref(), ob.as_ref())?);
            }
        }
    }
    Ok(c)
}

/// The pre-pipeline HSUMMA overlap baseline: outer panels prefetched one
/// outer step ahead, a whole outer panel's worth of inner slices pushed
/// in a burst once the outer panel lands, blocking receives throughout.
/// Kept verbatim as the `overlap_pipeline` bench baseline; produces
/// bit-identical results to [`hsumma_overlap`] and
/// [`crate::hsumma::hsumma`], and moves the identical wire traffic.
///
/// # Panics
/// Panics on the same configuration inconsistencies as `hsumma`.
pub fn hsumma_overlap_lookahead<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &crate::hsumma::HsummaConfig,
) -> Result<C::Mat, CommError> {
    let (th, tw) = check_tiles(grid, n, a, b, comm.size());
    let hg = crate::grid::HierGrid::new(grid, cfg.groups);
    let inner = hg.inner();
    let (bb, bs) = (cfg.outer_block, cfg.inner_block);
    assert!(bs > 0 && bb > 0, "block sizes must be positive");
    assert_eq!(bb % bs, 0, "inner block must divide outer block");
    assert_eq!(tw % bb, 0, "outer block must divide the tile width");
    assert_eq!(th % bb, 0, "outer block must divide the tile height");

    let (gi, gj) = grid.coords(comm.rank());
    let (x, y) = hg.group_of(gi, gj);
    let (i, j) = hg.inner_of(gi, gj);
    let color3 = crate::grid::color3;
    let group_row = comm.split(color3(x, i, j), y as i64)?;
    let group_col = comm.split(color3(y, i, j), x as i64)?;
    let row = comm.split(color3(x, y, i), j as i64)?;
    let col = comm.split(color3(x, y, j), i as i64)?;

    let outer_steps = n / bb;
    let inner_steps = bb / bs;
    let a_owner = |kg: usize| {
        let gcol = pivot_owner(kg, bb, tw);
        (gcol, gcol / inner.cols, gcol % inner.cols) // (grid col, yk, jk)
    };
    let b_owner = |kg: usize| {
        let grow = pivot_owner(kg, bb, th);
        (grow, grow / inner.rows, grow % inner.rows) // (grid row, xk, ik)
    };

    // Prefetch push of outer step kg across groups (owners only). One
    // materialized panel per push, shared across destinations.
    let push_outer = |kg: usize| -> Result<(), CommError> {
        let (gcol, _, jk) = a_owner(kg);
        if gj == gcol && j == jk {
            let panel = C::share(a.block(0, pivot_offset(kg, bb, tw), th, bb));
            for dst in 0..group_row.size() {
                if dst != group_row.rank() {
                    group_row.send_shared(dst, 2 * kg as u64, &panel)?;
                }
            }
        }
        let (grow, _, ik) = b_owner(kg);
        if gi == grow && i == ik {
            let panel = C::share(b.block(pivot_offset(kg, bb, th), 0, bb, tw));
            for dst in 0..group_col.size() {
                if dst != group_col.rank() {
                    group_col.send_shared(dst, 2 * kg as u64 + 1, &panel)?;
                }
            }
        }
        Ok(())
    };

    let mut c = C::Mat::zeros(th, tw);
    // Reusable scratch: outer panels for ranks that own them locally,
    // inner panels for every holder of an outer panel.
    let mut outer_a_scratch = C::Mat::zeros(th, bb);
    let mut outer_b_scratch = C::Mat::zeros(bb, tw);
    let mut a_in_scratch = C::Mat::zeros(th, bs);
    let mut b_in_scratch = C::Mat::zeros(bs, tw);
    let inner_pairs = th * tw * bs;
    if outer_steps > 0 {
        push_outer(0)?;
    }
    for kg in 0..outer_steps {
        if kg + 1 < outer_steps {
            push_outer(kg + 1)?;
        }

        // Land the outer panels on the inner pivot row/column.
        let (gcol, yk, jk) = a_owner(kg);
        let outer_a_recv: C::Shared;
        let outer_a: Option<&C::Mat> = if j == jk {
            Some(if gj == gcol {
                a.block_into(0, pivot_offset(kg, bb, tw), &mut outer_a_scratch);
                &outer_a_scratch
            } else {
                outer_a_recv = group_row.recv_shared(yk, 2 * kg as u64, th, bb)?;
                C::shared_ref(&outer_a_recv)
            })
        } else {
            None
        };
        let (grow, xk, ik) = b_owner(kg);
        let outer_b_recv: C::Shared;
        let outer_b: Option<&C::Mat> = if i == ik {
            Some(if gi == grow {
                b.block_into(pivot_offset(kg, bb, th), 0, &mut outer_b_scratch);
                &outer_b_scratch
            } else {
                outer_b_recv = group_col.recv_shared(xk, 2 * kg as u64 + 1, bb, tw)?;
                C::shared_ref(&outer_b_recv)
            })
        } else {
            None
        };

        // Push every inner panel of this outer step at once, then drain.
        let inner_tag = |ki: usize, is_b: bool| {
            (2 * (kg * inner_steps + ki) + usize::from(is_b)) as u64 + (1 << 32)
        };
        if let Some(panel) = outer_a {
            for ki in 0..inner_steps {
                let slice = C::share(panel.block(0, ki * bs, th, bs));
                for dst in 0..row.size() {
                    if dst != row.rank() {
                        row.send_shared(dst, inner_tag(ki, false), &slice)?;
                    }
                }
            }
        }
        if let Some(panel) = outer_b {
            for ki in 0..inner_steps {
                let slice = C::share(panel.block(ki * bs, 0, bs, tw));
                for dst in 0..col.size() {
                    if dst != col.rank() {
                        col.send_shared(dst, inner_tag(ki, true), &slice)?;
                    }
                }
            }
        }
        for ki in 0..inner_steps {
            let a_in_recv: C::Shared;
            let a_in: &C::Mat = match outer_a {
                Some(panel) => {
                    panel.block_into(0, ki * bs, &mut a_in_scratch);
                    &a_in_scratch
                }
                None => {
                    a_in_recv = row.recv_shared(jk, inner_tag(ki, false), th, bs)?;
                    C::shared_ref(&a_in_recv)
                }
            };
            let b_in_recv: C::Shared;
            let b_in: &C::Mat = match outer_b {
                Some(panel) => {
                    panel.block_into(ki * bs, 0, &mut b_in_scratch);
                    &b_in_scratch
                }
                None => {
                    b_in_recv = col.recv_shared(ik, inner_tag(ki, true), bs, tw)?;
                    C::shared_ref(&b_in_recv)
                }
            };
            comm.compute(inner_pairs as f64, 2 * inner_pairs as u64, || {
                C::Mat::gemm(cfg.kernel, a_in, b_in, &mut c)
            });
        }
    }
    Ok(c)
}

/// Quantifies the overlap benefit in the simulator: free-running
/// (overlapped) vs blocking-collective SUMMA under the same flat push
/// schedule. Returns `(overlapped_total, blocking_total)` seconds.
pub fn sim_overlap_benefit(platform: &Platform, grid: GridShape, n: usize, b: usize) -> (f64, f64) {
    let free = crate::simdrive::sim_summa(platform, grid, n, b, SimBcast::Flat);
    let sync = crate::simdrive::sim_summa_sync(platform, grid, n, b, SimBcast::Flat);
    (free.total_time, sync.total_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::HierGrid;
    use crate::hsumma::{hsumma, HsummaConfig};
    use crate::summa::summa;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::{seeded_uniform, GemmKernel};
    use proptest::prelude::*;

    fn cfg(block: usize) -> SummaConfig {
        SummaConfig {
            block,
            kernel: GemmKernel::Blocked,
            ..Default::default()
        }
    }

    #[test]
    fn overlap_summa_matches_serial() {
        for (s, t, n, block) in [(2, 2, 16, 4), (2, 4, 16, 2), (1, 1, 8, 4), (3, 3, 9, 1)] {
            let grid = GridShape::new(s, t);
            let a = seeded_uniform(n, n, 60);
            let b = seeded_uniform(n, n, 61);
            let want = reference_product(&a, &b);
            let c = cfg(block);
            let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
                summa_overlap(comm, grid, n, &at, &bt, &c).unwrap()
            });
            assert!(
                got.approx_eq(&want, 1e-9),
                "{s}x{t} n={n} block={block}: err {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn overlap_equals_plain_summa_exactly() {
        // Same local operation order => bit-identical result.
        let grid = GridShape::new(2, 2);
        let n = 16;
        let a = seeded_uniform(n, n, 71);
        let b = seeded_uniform(n, n, 72);
        let c = cfg(4);
        let plain = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa(comm, grid, n, &at, &bt, &c).unwrap()
        });
        let overlapped = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa_overlap(comm, grid, n, &at, &bt, &c).unwrap()
        });
        assert_eq!(plain, overlapped);
    }

    #[test]
    fn pipelined_equals_lookahead_exactly() {
        // The rewrite changed *when* ranks block, not what they compute:
        // pipelined and lookahead must agree bit for bit, on SUMMA and
        // on HSUMMA.
        let grid = GridShape::new(2, 2);
        let n = 16;
        let a = seeded_uniform(n, n, 73);
        let b = seeded_uniform(n, n, 74);
        let c = cfg(4);
        let pipelined = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa_overlap(comm, grid, n, &at, &bt, &c).unwrap()
        });
        let lookahead = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa_overlap_lookahead(comm, grid, n, &at, &bt, &c).unwrap()
        });
        assert_eq!(pipelined, lookahead);

        let grid = GridShape::new(4, 4);
        let n = 32;
        let a = seeded_uniform(n, n, 75);
        let b = seeded_uniform(n, n, 76);
        let hcfg = HsummaConfig {
            outer_block: 8,
            inner_block: 2,
            kernel: GemmKernel::Blocked,
            ..HsummaConfig::uniform(GridShape::new(2, 2), 8)
        };
        let pipelined = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma_overlap(comm, grid, n, &at, &bt, &hcfg).unwrap()
        });
        let lookahead = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma_overlap_lookahead(comm, grid, n, &at, &bt, &hcfg).unwrap()
        });
        assert_eq!(pipelined, lookahead);
    }

    #[test]
    fn hsumma_overlap_matches_serial_across_groupings() {
        let grid = GridShape::new(4, 4);
        let n = 16;
        let a = seeded_uniform(n, n, 81);
        let b = seeded_uniform(n, n, 82);
        let want = reference_product(&a, &b);
        for (g, groups) in HierGrid::valid_group_counts(grid) {
            let hcfg = HsummaConfig {
                kernel: GemmKernel::Blocked,
                ..HsummaConfig::uniform(groups, 2)
            };
            let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
                hsumma_overlap(comm, grid, n, &at, &bt, &hcfg).unwrap()
            });
            assert!(got.approx_eq(&want, 1e-9), "G={g} diverged");
        }
    }

    #[test]
    fn hsumma_overlap_equals_hsumma_exactly() {
        let grid = GridShape::new(4, 4);
        let n = 32;
        let a = seeded_uniform(n, n, 83);
        let b = seeded_uniform(n, n, 84);
        let hcfg = HsummaConfig {
            outer_block: 8,
            inner_block: 2,
            kernel: GemmKernel::Blocked,
            ..HsummaConfig::uniform(GridShape::new(2, 2), 8)
        };
        let plain = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma(comm, grid, n, &at, &bt, &hcfg).unwrap()
        });
        let overlapped = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma_overlap(comm, grid, n, &at, &bt, &hcfg).unwrap()
        });
        assert_eq!(plain, overlapped, "same local op order => bitwise equal");
    }

    #[test]
    fn consecutive_pivot_owner_reuses_slots_safely() {
        // The buffer-reuse hazard: outer_block < tile width means the
        // same group column owns the pivot panel two outer steps in a
        // row (kg·bb/tw identical for consecutive kg), so both outer
        // slots hold panels from the *same* owner simultaneously. The
        // two-slot protocol must keep them apart.
        let grid = GridShape::new(4, 4);
        let n = 32; // tiles 8×8, bb = 4 => outer owner repeats: 0,0,1,1,...
        let a = seeded_uniform(n, n, 85);
        let b = seeded_uniform(n, n, 86);
        let hcfg = HsummaConfig {
            outer_block: 4,
            inner_block: 2,
            kernel: GemmKernel::Blocked,
            ..HsummaConfig::uniform(GridShape::new(2, 2), 4)
        };
        let owner = |kg: usize| (kg * hcfg.outer_block) / 8;
        assert_eq!(
            owner(0),
            owner(1),
            "precondition: steps 0 and 1 share a pivot owner"
        );
        let plain = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma(comm, grid, n, &at, &bt, &hcfg).unwrap()
        });
        let pipelined = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma_overlap(comm, grid, n, &at, &bt, &hcfg).unwrap()
        });
        assert_eq!(plain, pipelined);
    }

    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }

    fn divisors(v: usize) -> Vec<usize> {
        (1..=v).filter(|d| v.is_multiple_of(*d)).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn pipelined_paths_match_reference_on_awkward_shapes(
            rows in 1usize..4,
            cols in 1usize..4,
            tile in 1usize..4,
            pick in 0usize..1024,
        ) {
            // Non-square grids, non-square tiles, every valid grouping
            // reachable by `pick` — including shapes where a group owns
            // the pivot panel several steps in a row (bb < tile extent).
            let grid = GridShape::new(rows, cols);
            let n = rows * cols * tile * 2;
            let (th, tw) = (n / rows, n / cols);
            let bbs = divisors(gcd(th, tw));
            let bb = bbs[pick % bbs.len()];
            let bss = divisors(bb);
            let bs = bss[(pick / bbs.len()) % bss.len()];
            let groupings = HierGrid::valid_group_counts(grid);
            let (_, groups) = groupings[(pick / 7) % groupings.len()];

            let a = seeded_uniform(n, n, 90 + pick as u64);
            let b = seeded_uniform(n, n, 91 + pick as u64);
            let want = reference_product(&a, &b);

            let scfg = cfg(bs);
            let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
                summa_overlap(comm, grid, n, &at, &bt, &scfg).unwrap()
            });
            prop_assert!(
                got.approx_eq(&want, 1e-9),
                "summa {rows}x{cols} n={n} bs={bs}: err {}",
                got.max_abs_diff(&want)
            );

            let hcfg = HsummaConfig {
                outer_block: bb,
                inner_block: bs,
                kernel: GemmKernel::Blocked,
                ..HsummaConfig::uniform(groups, bb)
            };
            let blocking = distributed_product(grid, n, &a, &b, |comm, at, bt| {
                hsumma(comm, grid, n, &at, &bt, &hcfg).unwrap()
            });
            let pipelined = distributed_product(grid, n, &a, &b, |comm, at, bt| {
                hsumma_overlap(comm, grid, n, &at, &bt, &hcfg).unwrap()
            });
            prop_assert!(
                pipelined.approx_eq(&want, 1e-9),
                "hsumma {rows}x{cols} n={n} G={groups:?} bb={bb} bs={bs}: err {}",
                pipelined.max_abs_diff(&want)
            );
            // Stronger than approx: the pipeline preserves the exact
            // accumulation order of the blocking reference.
            prop_assert_eq!(blocking, pipelined);
        }
    }

    #[test]
    fn simulated_overlap_beats_blocking() {
        // With flat pushes, the root's serialization overlaps with other
        // ranks' compute once the per-step barrier is dropped.
        let platform = Platform::bluegene_p_effective();
        let grid = GridShape::new(8, 8);
        let (free, sync) = sim_overlap_benefit(&platform, grid, 512, 32);
        assert!(free < sync, "overlapped {free} should beat blocking {sync}");
    }
}
