//! Grid-free data distributions: who owns which block of an `m × n` global.
//!
//! Every schedule in this crate used to phrase ownership through a
//! process grid — `GridShape` coordinates plus the divisibility
//! assumptions of [`crate::partition`]. A [`Distribution`] drops the
//! grid: it is nothing but one owned [`BlockRange`] per rank over an
//! `m × n` global, validated to tile the global **exactly** (no overlap,
//! full cover — the same invariant `tile_shape_rect` enforces through
//! divisibility, now checked structurally so arbitrary extents work).
//! Empty ranges are legal and describe ranks that own nothing, e.g. the
//! idle remainder of a brick decomposition over a prime-ish `p`.
//!
//! Three things are built on it here:
//!
//! * [`Distribution::grid2d`] — the block-checkerboard layout as a
//!   special case, extended to extents the grid does *not* divide by
//!   dealing each dimension with [`chunk_range`] (uneven tiles, still an
//!   exact cover);
//! * [`Distribution::scatter`]/[`Distribution::gather`] — the serving
//!   layer's host-side partition paths, generic over [`MatLike`];
//! * [`redistribute`] — an SPMD all-to-all that moves a matrix from one
//!   distribution to another over any [`Communicator`], one message per
//!   intersecting (owner, new-owner) pair in a deterministic order, so
//!   real and simulated runs move identical (src, dst, bytes) multisets.
//!
//! [`BrickDecomp`] describes the 3-D `(a, b, c)` decomposition of the
//! `m × n × k` iteration cube used by [`crate::cosma()`], and derives the
//! [`Distribution`]s of the `A`, `B` and `C` operands it implies.

use crate::comm::{Communicator, MatLike};
use crate::partition::{ceil_div, chunk_range};
use hsumma_matrix::{BlockRange, GridShape};
use hsumma_runtime::CommError;

/// Tag band for [`redistribute`] traffic: application-class (faults and
/// deadlines configured for `TagClass::App` reach it), far above the
/// small step indices the schedules use for their own point-to-point
/// messages.
pub const REDIST_TAG: u64 = 1 << 32;

/// One owned rectangular block per rank over an `m × n` global matrix.
///
/// The descriptor is pure data — it implies no process grid, no
/// divisibility, and no communicator; it only promises that the ranges
/// tile the global exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Distribution {
    rows: usize,
    cols: usize,
    ranges: Vec<BlockRange>,
}

impl Distribution {
    /// Builds a distribution from explicit per-rank ranges.
    ///
    /// # Panics
    /// Panics unless the non-empty ranges tile the `rows × cols` global
    /// exactly: every cell covered, no cell covered twice, nothing
    /// outside the global.
    pub fn new(rows: usize, cols: usize, ranges: Vec<BlockRange>) -> Self {
        let dist = Distribution { rows, cols, ranges };
        dist.assert_exact_cover();
        dist
    }

    /// The block-checkerboard layout of an `rows × cols` global over a
    /// process grid, without the divisibility requirement of
    /// `BlockDist`: each dimension is dealt with [`chunk_range`], so
    /// tiles differ by at most one row/column and still cover exactly.
    pub fn grid2d(grid: GridShape, rows: usize, cols: usize) -> Self {
        let ranges = (0..grid.size())
            .map(|rank| {
                let (i, j) = grid.coords(rank);
                let (r0, r1) = chunk_range(rows, grid.rows, i);
                let (c0, c1) = chunk_range(cols, grid.cols, j);
                BlockRange::new(r0, r1, c0, c1)
            })
            .collect();
        Distribution::new(rows, cols, ranges)
    }

    /// Global row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Global column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of ranks the descriptor covers (including empty owners).
    pub fn num_ranks(&self) -> usize {
        self.ranges.len()
    }

    /// The block `rank` owns.
    pub fn range(&self, rank: usize) -> BlockRange {
        self.ranges[rank]
    }

    /// All per-rank ranges, indexed by rank.
    pub fn ranges(&self) -> &[BlockRange] {
        &self.ranges
    }

    /// The rank owning global cell `(i, j)`.
    ///
    /// # Panics
    /// Panics if `(i, j)` is outside the global (an exact cover makes
    /// ownership total otherwise).
    pub fn owner_of(&self, i: usize, j: usize) -> usize {
        assert!(i < self.rows && j < self.cols, "cell outside the global");
        self.ranges
            .iter()
            .position(|r| r.row0 <= i && i < r.row1 && r.col0 <= j && j < r.col1)
            .expect("exact cover owns every cell")
    }

    /// An all-zero local tile of `rank`'s owned shape.
    pub fn local_zeros<M: MatLike>(&self, rank: usize) -> M {
        let r = self.range(rank);
        M::zeros(r.rows(), r.cols())
    }

    /// Splits the global matrix into per-rank local tiles (empty owners
    /// get `0 × 0` tiles).
    ///
    /// # Panics
    /// Panics if `global`'s shape differs from the descriptor's.
    pub fn scatter<M: MatLike>(&self, global: &M) -> Vec<M> {
        assert_eq!(
            (global.rows(), global.cols()),
            (self.rows, self.cols),
            "global shape does not match the distribution"
        );
        self.ranges
            .iter()
            .map(|r| global.block(r.row0, r.col0, r.rows(), r.cols()))
            .collect()
    }

    /// Reassembles the global matrix from per-rank local tiles.
    ///
    /// # Panics
    /// Panics if the number or shapes of tiles don't match the
    /// descriptor.
    pub fn gather<M: MatLike>(&self, tiles: &[M]) -> M {
        assert_eq!(tiles.len(), self.ranges.len(), "wrong number of tiles");
        let mut global = M::zeros(self.rows, self.cols);
        for (rank, (tile, r)) in tiles.iter().zip(&self.ranges).enumerate() {
            assert_eq!(
                (tile.rows(), tile.cols()),
                (r.rows(), r.cols()),
                "tile {rank} does not match its owned range"
            );
            if !r.is_empty() {
                global.set_block(r.row0, r.col0, tile);
            }
        }
        global
    }

    /// Checks the exact-cover invariant by a row-band sweep: between any
    /// two consecutive row boundaries, the column intervals of the
    /// ranges spanning the band must partition `[0, cols)` exactly.
    fn assert_exact_cover(&self) {
        let total: usize = self.ranges.iter().map(|r| r.elems()).sum();
        assert_eq!(
            total,
            self.rows * self.cols,
            "owned areas must sum to the global area"
        );
        if self.rows == 0 || self.cols == 0 {
            return;
        }
        for r in &self.ranges {
            assert!(
                r.is_empty() || (r.row1 <= self.rows && r.col1 <= self.cols),
                "range {r:?} reaches outside the {}x{} global",
                self.rows,
                self.cols
            );
        }
        // Distinct row boundaries, ascending.
        let mut bounds: Vec<usize> = vec![0, self.rows];
        for r in self.ranges.iter().filter(|r| !r.is_empty()) {
            bounds.push(r.row0);
            bounds.push(r.row1);
        }
        bounds.sort_unstable();
        bounds.dedup();
        // Bucket each range into the bands it spans. Boundaries include
        // every range's row0/row1, so a range covers whole bands only.
        let band_of = |row: usize| bounds.binary_search(&row).expect("boundary");
        let mut bands: Vec<Vec<(usize, usize)>> = vec![Vec::new(); bounds.len() - 1];
        for r in self.ranges.iter().filter(|r| !r.is_empty()) {
            for band in bands[band_of(r.row0)..band_of(r.row1)].iter_mut() {
                band.push((r.col0, r.col1));
            }
        }
        for (band, intervals) in bands.iter_mut().enumerate() {
            intervals.sort_unstable();
            let mut at = 0;
            for &(c0, c1) in intervals.iter() {
                assert_eq!(
                    c0,
                    at,
                    "rows {}..{}: columns {at}..{c0} covered {} times",
                    bounds[band],
                    bounds[band + 1],
                    if c0 > at { "zero" } else { "multiple" }
                );
                at = c1;
            }
            assert_eq!(
                at,
                self.cols,
                "rows {}..{}: columns {at}..{} uncovered",
                bounds[band],
                bounds[band + 1],
                self.cols
            );
        }
    }
}

/// SPMD redistribution: moves a matrix owned per `src` into the layout
/// of `dst` over `comm`, returning this rank's new local tile.
///
/// Each rank sends the intersection of its owned block with every new
/// owner's block (one message per pair, ascending destination rank),
/// keeps the self-intersection locally, then receives from old owners
/// in ascending source rank. The schedule depends only on the two
/// descriptors, so both substrates move identical multisets.
///
/// # Panics
/// Panics unless the descriptors describe the same global over
/// `comm.size()` ranks and `mine` has this rank's `src` shape.
pub fn redistribute<C: Communicator>(
    comm: &C,
    src: &Distribution,
    dst: &Distribution,
    mine: &C::Mat,
) -> Result<C::Mat, CommError> {
    assert_eq!(
        (src.rows(), src.cols()),
        (dst.rows(), dst.cols()),
        "source and destination describe different globals"
    );
    assert_eq!(src.num_ranks(), comm.size(), "src ranks != comm size");
    assert_eq!(dst.num_ranks(), comm.size(), "dst ranks != comm size");
    let me = comm.rank();
    let my_src = src.range(me);
    let my_dst = dst.range(me);
    assert_eq!(
        (mine.rows(), mine.cols()),
        (my_src.rows(), my_src.cols()),
        "local tile does not match the source distribution"
    );

    for peer in 0..comm.size() {
        if peer == me {
            continue;
        }
        if let Some(part) = my_src.intersect(&dst.range(peer)) {
            let tile = mine.block(
                part.row0 - my_src.row0,
                part.col0 - my_src.col0,
                part.rows(),
                part.cols(),
            );
            comm.send_mat(peer, REDIST_TAG, tile)?;
        }
    }

    let mut out = C::Mat::zeros(my_dst.rows(), my_dst.cols());
    if let Some(keep) = my_src.intersect(&my_dst) {
        let tile = mine.block(
            keep.row0 - my_src.row0,
            keep.col0 - my_src.col0,
            keep.rows(),
            keep.cols(),
        );
        out.set_block(keep.row0 - my_dst.row0, keep.col0 - my_dst.col0, &tile);
    }
    for peer in 0..comm.size() {
        if peer == me {
            continue;
        }
        if let Some(part) = src.range(peer).intersect(&my_dst) {
            let tile = comm.recv_mat(peer, REDIST_TAG, part.rows(), part.cols())?;
            out.set_block(part.row0 - my_dst.row0, part.col0 - my_dst.col0, &tile);
        }
    }
    Ok(out)
}

/// The `(a, b, c)` brick decomposition of the `m × n × k` iteration
/// cube: `a` bricks along `m`, `b` along `n`, `c` along `k` (the
/// replication / reduction dimension). Rank `r < a·b·c` sits at
/// coordinates `(i, j, l) = ((r mod a·b) / b, r mod b, r / (a·b))` —
/// layer-major, like the 2.5D schedule — and computes the partial
/// product `A[i-th m-chunk, l-th k-chunk] · B[l-th k-chunk, j-th
/// n-chunk]`. Ranks `r ≥ a·b·c` idle. Chunks are dealt with
/// [`chunk_range`], so no extent needs to divide anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrickDecomp {
    /// Bricks along the `m` (rows of `A`/`C`) dimension.
    pub a: usize,
    /// Bricks along the `n` (columns of `B`/`C`) dimension.
    pub b: usize,
    /// Bricks along the contraction dimension `k` — the replication
    /// factor the partial-`C` reduction folds away.
    pub c: usize,
}

impl BrickDecomp {
    /// Creates a decomposition; panics if any factor is zero.
    pub fn new(a: usize, b: usize, c: usize) -> Self {
        assert!(a > 0 && b > 0 && c > 0, "brick factors must be positive");
        BrickDecomp { a, b, c }
    }

    /// Active rank count `a·b·c`.
    pub fn ranks(&self) -> usize {
        self.a * self.b * self.c
    }

    /// Coordinates `(i, j, l)` of an active rank.
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.ranks());
        let layer = self.a * self.b;
        (rank % layer / self.b, rank % self.b, rank / layer)
    }

    /// Rank at coordinates `(i, j, l)`.
    pub fn rank(&self, i: usize, j: usize, l: usize) -> usize {
        debug_assert!(i < self.a && j < self.b && l < self.c);
        l * self.a * self.b + i * self.b + j
    }

    /// The `i`-th chunk of the `m` dimension.
    pub fn m_range(&self, i: usize, m: usize) -> (usize, usize) {
        chunk_range(m, self.a, i)
    }

    /// The `j`-th chunk of the `n` dimension.
    pub fn n_range(&self, j: usize, n: usize) -> (usize, usize) {
        chunk_range(n, self.b, j)
    }

    /// The `l`-th chunk of the `k` dimension.
    pub fn k_range(&self, l: usize, k: usize) -> (usize, usize) {
        chunk_range(k, self.c, l)
    }

    /// Input distribution of the `m × k` operand `A` over `p` ranks:
    /// rank `(i, 0, l)` owns the `i`-th `m`-chunk × `l`-th `k`-chunk
    /// brick; everyone else owns nothing.
    pub fn a_distribution(&self, m: usize, k: usize, p: usize) -> Distribution {
        self.operand_distribution(p, m, k, |_, i, j, l| {
            (j == 0).then(|| (self.m_range(i, m), self.k_range(l, k)))
        })
    }

    /// Input distribution of the `k × n` operand `B` over `p` ranks:
    /// rank `(0, j, l)` owns the `l`-th `k`-chunk × `j`-th `n`-chunk
    /// brick.
    pub fn b_distribution(&self, k: usize, n: usize, p: usize) -> Distribution {
        self.operand_distribution(p, k, n, |_, i, j, l| {
            (i == 0).then(|| (self.k_range(l, k), self.n_range(j, n)))
        })
    }

    /// Output distribution of the `m × n` product `C` over `p` ranks:
    /// rank `(i, j, 0)` owns the `(i, j)` brick after the reduction
    /// over `l`.
    pub fn c_distribution(&self, m: usize, n: usize, p: usize) -> Distribution {
        self.operand_distribution(p, m, n, |_, i, j, l| {
            (l == 0).then(|| (self.m_range(i, m), self.n_range(j, n)))
        })
    }

    fn operand_distribution(
        &self,
        p: usize,
        rows: usize,
        cols: usize,
        own: impl Fn(&BrickDecomp, usize, usize, usize) -> Option<((usize, usize), (usize, usize))>,
    ) -> Distribution {
        assert!(
            p >= self.ranks(),
            "decomposition needs {} ranks",
            self.ranks()
        );
        let ranges = (0..p)
            .map(|r| {
                if r >= self.ranks() {
                    return BlockRange::empty();
                }
                let (i, j, l) = self.coords(r);
                match own(self, i, j, l) {
                    Some(((r0, r1), (c0, c1))) => BlockRange::new(r0, r1, c0, c1),
                    None => BlockRange::empty(),
                }
            })
            .collect();
        Distribution::new(rows, cols, ranges)
    }

    /// Per-rank received-element count of the schedule this
    /// decomposition implies: the surrogate the search minimizes.
    fn recv_volume(&self, m: usize, n: usize, k: usize) -> f64 {
        let ma = ceil_div(m, self.a) as f64;
        let nb = ceil_div(n, self.b) as f64;
        let kc = ceil_div(k, self.c) as f64;
        let mut v = 0.0;
        if self.b > 1 {
            v += ma * kc; // A brick replicated along j
        }
        if self.a > 1 {
            v += kc * nb; // B brick replicated along i
        }
        if self.c > 1 {
            v += 2.0 * ma * nb; // partial-C reduce-scatter + gather
        }
        v
    }

    /// Near-optimal decomposition of the `m × n × k` cube over at most
    /// `p` ranks: minimizes per-rank received elements plus a
    /// compute-imbalance proxy (`0.1` element-equivalents per extra
    /// multiply-add, roughly `γ / (8·β)` on the modeled platforms), so
    /// leaving ranks idle is penalized exactly as much as the longer
    /// local GEMM it causes. For platform-aware selection the model
    /// crate prices candidates with real `α/β/γ`; this search is the
    /// dependency-free default.
    pub fn search(p: usize, m: usize, n: usize, k: usize) -> BrickDecomp {
        const PAIR_WEIGHT: f64 = 0.1;
        assert!(p > 0 && m > 0 && n > 0 && k > 0, "extents must be positive");
        let mut best = BrickDecomp::new(1, 1, 1);
        let mut best_cost = f64::INFINITY;
        for a in 1..=p.min(m) {
            for b in 1..=(p / a).min(n) {
                let c_max = (p / (a * b)).min(k);
                // recv_volume is monotone between the endpoints: larger c
                // shrinks the replicated A/B bricks, c > 1 adds the fixed
                // partial-C reduction term — so only the endpoints matter.
                for c in [1, c_max] {
                    let cand = BrickDecomp::new(a, b, c);
                    let pairs =
                        ceil_div(m, a) as f64 * ceil_div(n, b) as f64 * ceil_div(k, c) as f64;
                    let cost = cand.recv_volume(m, n, k) + PAIR_WEIGHT * pairs;
                    if cost < best_cost {
                        best_cost = cost;
                        best = cand;
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsumma_matrix::Matrix;

    #[test]
    fn grid2d_matches_block_dist_when_divisible() {
        let grid = GridShape::new(2, 3);
        let dist = Distribution::grid2d(grid, 10, 9);
        assert_eq!(dist.range(0), BlockRange::new(0, 5, 0, 3));
        assert_eq!(dist.range(5), BlockRange::new(5, 10, 6, 9));
    }

    #[test]
    fn grid2d_covers_non_dividing_extents() {
        // 7 x 5 over 2 x 3: tiles differ by one row/column but cover.
        let dist = Distribution::grid2d(GridShape::new(2, 3), 7, 5);
        let total: usize = dist.ranges().iter().map(|r| r.elems()).sum();
        assert_eq!(total, 35);
        assert_eq!(dist.owner_of(0, 0), 0);
        assert_eq!(dist.owner_of(6, 4), 5);
    }

    #[test]
    #[should_panic(expected = "uncovered")]
    fn exact_cover_rejects_holes() {
        // Areas sum to the global, but the first row band has a hole
        // (balanced by an overlap in the second): the sweep must see it.
        let _ = Distribution::new(
            2,
            2,
            vec![
                BlockRange::new(0, 1, 0, 1),
                BlockRange::new(1, 2, 0, 2),
                BlockRange::new(1, 2, 0, 1),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "sum to the global area")]
    fn exact_cover_rejects_overlap() {
        let _ = Distribution::new(
            4,
            4,
            vec![BlockRange::new(0, 4, 0, 3), BlockRange::new(0, 4, 2, 4)],
        );
    }

    #[test]
    #[should_panic(expected = "covered")]
    fn exact_cover_rejects_equal_area_overlap() {
        // Areas sum correctly but a column is covered twice and another
        // never: the band sweep must catch it.
        let _ = Distribution::new(
            2,
            2,
            vec![BlockRange::new(0, 2, 0, 1), BlockRange::new(0, 2, 0, 1)],
        );
    }

    #[test]
    fn scatter_gather_roundtrip_uneven() {
        let dist = Distribution::grid2d(GridShape::new(3, 2), 7, 9);
        let m = hsumma_matrix::seeded_uniform(7, 9, 11);
        let tiles = dist.scatter(&m);
        assert_eq!(dist.gather::<Matrix>(&tiles), m);
    }

    #[test]
    fn brick_coords_roundtrip_and_operands_cover() {
        let d = BrickDecomp::new(3, 2, 4);
        for r in 0..d.ranks() {
            let (i, j, l) = d.coords(r);
            assert_eq!(d.rank(i, j, l), r);
        }
        // Operand distributions over more ranks than the decomposition
        // uses: idle ranks own nothing, cover still exact (validated in
        // the constructors).
        let p = d.ranks() + 3;
        let da = d.a_distribution(10, 13, p);
        let db = d.b_distribution(13, 7, p);
        let dc = d.c_distribution(10, 7, p);
        assert!(da.range(p - 1).is_empty());
        assert_eq!(db.rows(), 13);
        assert!(!dc.range(d.rank(2, 1, 0)).is_empty());
    }

    #[test]
    fn search_prefers_flat_grids_for_flat_problems() {
        // Tall-skinny m >> n = k: the best decomposition spends its
        // ranks along m.
        let d = BrickDecomp::search(16, 4096, 64, 64);
        assert!(d.a >= d.b && d.a >= d.c, "{d:?}");
        // Cube problem with a cube-friendly p uses all ranks.
        let d = BrickDecomp::search(64, 512, 512, 512);
        assert_eq!(d.ranks(), 64);
    }

    #[test]
    fn search_handles_prime_p_by_idling_ranks() {
        let d = BrickDecomp::search(13, 256, 256, 256);
        assert!(d.ranks() <= 13);
        assert!(d.ranks() >= 8, "should not waste most ranks: {d:?}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `grid2d` tiles any global exactly for any grid — the 2-D
            /// lift of `chunk_range`'s exact dealing. The constructor's
            /// own sweep would panic on a violation; this pins the cover
            /// and the scatter/gather roundtrip independently.
            #[test]
            fn grid2d_exactly_covers_arbitrary_shapes(
                rows in 1usize..40, cols in 1usize..40,
                s in 1usize..7, t in 1usize..7,
            ) {
                let dist = Distribution::grid2d(GridShape::new(s, t), rows, cols);
                let area: usize = dist.ranges().iter().map(|r| r.elems()).sum();
                prop_assert_eq!(area, rows * cols);
                // Every cell has exactly one owner.
                for r in (0..rows).step_by(3) {
                    for c in (0..cols).step_by(3) {
                        let owners = dist
                            .ranges()
                            .iter()
                            .filter(|b| b.row0 <= r && r < b.row1 && b.col0 <= c && c < b.col1)
                            .count();
                        prop_assert_eq!(owners, 1, "cell ({}, {})", r, c);
                    }
                }
                let m = hsumma_matrix::seeded_uniform(rows, cols, 7);
                prop_assert_eq!(dist.gather::<Matrix>(&dist.scatter(&m)), m);
            }

            /// Every brick operand distribution is an exact cover for
            /// arbitrary extents and rank counts ≥ the decomposition's —
            /// including awkward primes in every position.
            #[test]
            fn brick_distributions_exactly_cover(
                a in 1usize..5, b in 1usize..5, c in 1usize..5,
                m in 1usize..30, n in 1usize..30, k in 1usize..30,
                spare in 0usize..4,
            ) {
                let d = BrickDecomp::new(a, b, c);
                let p = d.ranks() + spare;
                for (dist, rows, cols) in [
                    (d.a_distribution(m, k, p), m, k),
                    (d.b_distribution(k, n, p), k, n),
                    (d.c_distribution(m, n, p), m, n),
                ] {
                    let area: usize = dist.ranges().iter().map(|r| r.elems()).sum();
                    prop_assert_eq!(area, rows * cols);
                    prop_assert_eq!(dist.ranges().len(), p);
                }
            }
        }
    }
}
