//! Distributed block LU factorization — the paper's future work §VI
//! ("we plan to apply the same approach to other numerical linear
//! algebra kernels such as QR/LU factorization"), applied.
//!
//! Right-looking block LU without pivoting over the same 2-D
//! block-checkerboard distribution as SUMMA. Per panel step `k`:
//!
//! 1. the diagonal block owner factors `A_kk = L_kk·U_kk` locally and
//!    broadcasts the packed factor along its grid row and column;
//! 2. the pivot-column ranks compute their `L_ik = A_ik·U_kk⁻¹` slabs,
//!    the pivot-row ranks their `U_kj = L_kk⁻¹·A_kj` slabs;
//! 3. the `L` panel is broadcast along grid rows and the `U` panel along
//!    grid columns — *the same communication pattern as SUMMA's pivot
//!    broadcasts*, which is exactly why HSUMMA's two-level hierarchy
//!    transfers: with [`LuConfig::groups`] set, both panel broadcasts run
//!    inter-group first, then intra-group (hierarchical LU, "HLU");
//! 4. every rank applies the trailing update `A_ij -= L_ik·U_kj`.
//!
//! Pivoting is omitted (see `hsumma_matrix::factor`): it would add a
//! column-reduction orthogonal to the communication structure under
//! study. Use diagonally dominant inputs.
//!
//! [`block_lu`] is generic over the [`Communicator`] substrate;
//! [`sim_block_lu`] runs the *same* function over simulated clocks with
//! phantom payloads (local kernels charged analytically: `bs³/3` pairs
//! for the diagonal factor, `m·bs²/2` per triangular solve, `r·c·bs` per
//! trailing update).

use crate::comm::{Communicator, MatLike, PhantomMat};
use crate::grid::HierGrid;
use crate::partition::{pivot_offset, pivot_owner, tile_shape};
use crate::summa::bcast_matrix;
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_netsim::spmd::SimWorld;
use hsumma_netsim::{Hockney, Platform, SimBcast, SimNet, SimReport};
use hsumma_runtime::{BcastAlgorithm, CommError};

/// Parameters of a distributed LU run.
#[derive(Clone, Copy, Debug)]
pub struct LuConfig {
    /// Panel width; must divide both local tile extents.
    pub block: usize,
    /// Broadcast algorithm for panels (and hierarchy phases).
    pub bcast: BcastAlgorithm,
    /// Local kernel for the trailing update.
    pub kernel: GemmKernel,
    /// `Some(I × J)`: broadcast panels hierarchically over that group
    /// arrangement (hierarchical LU). `None`: plain SUMMA-style rows/cols.
    pub groups: Option<GridShape>,
}

impl Default for LuConfig {
    fn default() -> Self {
        LuConfig {
            block: 32,
            bcast: BcastAlgorithm::Binomial,
            kernel: GemmKernel::Packed,
            groups: None,
        }
    }
}

/// The row extent of rank `gi`'s share of the L panel at step `k` (rows
/// strictly below the pivot block), and its local row offset.
fn below_rows(gi: usize, ri: usize, ro: usize, bs: usize, th: usize) -> (usize, usize) {
    use std::cmp::Ordering::*;
    match gi.cmp(&ri) {
        Greater => (0, th),
        Equal => (ro + bs, th - ro - bs),
        Less => (0, 0),
    }
}

/// Runs the distributed block LU on the calling rank, factoring the
/// distributed matrix *in place*: the returned tile holds this rank's
/// part of the packed `L\U` (unit lower below the diagonal, upper on and
/// above it).
///
/// SPMD over `comm`; `a` is this rank's block-checkerboard tile.
///
/// # Panics
/// Panics on inconsistent configuration or a zero pivot (unpivoted LU).
pub fn block_lu<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    cfg: &LuConfig,
) -> Result<C::Mat, CommError> {
    assert_eq!(comm.size(), grid.size(), "communicator must span the grid");
    let (th, tw) = tile_shape(grid, n);
    assert_eq!((a.rows(), a.cols()), (th, tw), "tile has wrong shape");
    let bs = cfg.block;
    assert!(
        bs > 0 && th % bs == 0 && tw % bs == 0,
        "block must divide tile extents"
    );

    let (gi, gj) = grid.coords(comm.rank());
    // Flat row/column communicators (always needed: diagonal broadcast).
    let row_comm = comm.split(gi as u64, gj as i64)?;
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;
    // Optional hierarchy for the panel broadcasts.
    let hier = match cfg.groups {
        None => None,
        Some(groups) => {
            let hg = HierGrid::new(grid, groups);
            let (x, y) = hg.group_of(gi, gj);
            let (i, j) = hg.inner_of(gi, gj);
            let c3 = crate::grid::color3;
            let group_row = comm.split(c3(x, i, j), y as i64)?;
            let group_col = comm.split(c3(y, i, j), x as i64)?;
            let inner_row = comm.split(c3(x, y, i), j as i64)?;
            let inner_col = comm.split(c3(x, y, j), i as i64)?;
            Some((hg, group_row, group_col, inner_row, inner_col))
        }
    };

    // Two-phase (or flat) broadcast of an L-panel slab along this grid
    // row from grid column `cj`.
    let bcast_l = |panel: &mut C::Mat, cj: usize| -> Result<(), CommError> {
        match &hier {
            None => bcast_matrix(&row_comm, cfg.bcast, cj, panel),
            Some((hg, group_row, _, inner_row, _)) => {
                let inner = hg.inner();
                let (yk, jk) = (cj / inner.cols, cj % inner.cols);
                let my_j = gj % inner.cols;
                if my_j == jk {
                    bcast_matrix(group_row, cfg.bcast, yk, panel)?;
                }
                bcast_matrix(inner_row, cfg.bcast, jk, panel)
            }
        }
    };
    let bcast_u = |panel: &mut C::Mat, ri: usize| -> Result<(), CommError> {
        match &hier {
            None => bcast_matrix(&col_comm, cfg.bcast, ri, panel),
            Some((hg, _, group_col, _, inner_col)) => {
                let inner = hg.inner();
                let (xk, ik) = (ri / inner.rows, ri % inner.rows);
                let my_i = gi % inner.rows;
                if my_i == ik {
                    bcast_matrix(group_col, cfg.bcast, xk, panel)?;
                }
                bcast_matrix(inner_col, cfg.bcast, ik, panel)
            }
        }
    };

    let mut t = a.clone();
    for k in 0..n / bs {
        comm.trace_step(k, bs, bs, || -> Result<(), CommError> {
            let (ri, ro) = (pivot_owner(k, bs, th), pivot_offset(k, bs, th));
            let (cj, co) = (pivot_owner(k, bs, tw), pivot_offset(k, bs, tw));

            // --- 1. diagonal factor + broadcast ------------------------------
            let mut diag = if gi == ri && gj == cj {
                let mut d = t.block(ro, co, bs, bs);
                comm.compute((bs * bs * bs) as f64 / 3.0, 0, || d.lu_nopiv_inplace());
                t.set_block(ro, co, &d);
                d
            } else {
                C::Mat::zeros(bs, bs)
            };
            // Down the pivot column (for the L slabs' trsm)...
            if gj == cj {
                bcast_matrix(&col_comm, cfg.bcast, ri, &mut diag)?;
            }
            // ...and across the pivot row (for the U slabs' trsm).
            if gi == ri {
                bcast_matrix(&row_comm, cfg.bcast, cj, &mut diag)?;
            }

            // --- 2. panel solves ----------------------------------------------
            let (rlo, rcount) = below_rows(gi, ri, ro, bs, th);
            if gj == cj && rcount > 0 {
                let mut slab = t.block(rlo, co, rcount, bs);
                comm.compute((rcount * bs * bs) as f64 / 2.0, 0, || {
                    C::Mat::trsm_right_upper(&diag, &mut slab)
                });
                t.set_block(rlo, co, &slab);
            }
            let (clo, ccount) = below_rows(gj, cj, co, bs, tw);
            if gi == ri && ccount > 0 {
                let mut slab = t.block(ro, clo, bs, ccount);
                comm.compute((ccount * bs * bs) as f64 / 2.0, 0, || {
                    C::Mat::trsm_left_lower_unit(&diag, &mut slab)
                });
                t.set_block(ro, clo, &slab);
            }

            // --- 3. panel broadcasts -------------------------------------------
            let mut l_panel = if rcount > 0 {
                if gj == cj {
                    t.block(rlo, co, rcount, bs)
                } else {
                    C::Mat::zeros(rcount, bs)
                }
            } else {
                C::Mat::zeros(0, bs)
            };
            if rcount > 0 {
                bcast_l(&mut l_panel, cj)?;
            }
            let mut u_panel = if ccount > 0 {
                if gi == ri {
                    t.block(ro, clo, bs, ccount)
                } else {
                    C::Mat::zeros(bs, ccount)
                }
            } else {
                C::Mat::zeros(bs, 0)
            };
            if ccount > 0 {
                bcast_u(&mut u_panel, ri)?;
            }

            // --- 4. trailing update --------------------------------------------
            if rcount > 0 && ccount > 0 {
                let mut trailing = t.block(rlo, clo, rcount, ccount);
                let pairs = rcount * ccount * bs;
                comm.compute(pairs as f64, 2 * pairs as u64, || {
                    C::Mat::gemm_scaled(cfg.kernel, -1.0, &l_panel, &u_panel, &mut trailing)
                });
                t.set_block(rlo, clo, &trailing);
            }
            Ok(())
        })?;
        comm.maybe_step_sync()?;
    }
    Ok(t)
}

/// Timing replay of the block-LU communication schedule (flat or
/// hierarchical panel broadcasts) on the simulator: [`block_lu`] itself,
/// run over phantom payloads.
pub fn sim_block_lu(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    bs: usize,
    bcast: SimBcast,
    groups: Option<GridShape>,
    step_sync: bool,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_block_lu_on(
        &mut net,
        platform.gamma,
        grid,
        n,
        bs,
        bcast,
        groups,
        step_sync,
    )
}

/// Like [`sim_block_lu`], on a caller-provided network (so a tracer can
/// be attached beforehand). `gamma` is seconds per multiply-add pair.
#[allow(clippy::too_many_arguments)]
pub fn sim_block_lu_on(
    net: &mut SimNet,
    gamma: f64,
    grid: GridShape,
    n: usize,
    bs: usize,
    bcast: SimBcast,
    groups: Option<GridShape>,
    step_sync: bool,
) -> SimReport {
    assert_eq!(net.size(), grid.size(), "network must span the grid");
    let (th, tw) = tile_shape(grid, n);
    let cfg = LuConfig {
        block: bs,
        bcast,
        groups,
        ..Default::default()
    };
    let owned = std::mem::replace(net, SimNet::new(1, Hockney::new(0.0, 0.0)));
    let (done, _) = SimWorld::run(owned, gamma, step_sync, move |comm| {
        let tile = PhantomMat { rows: th, cols: tw };
        block_lu(comm, grid, n, &tile, &cfg).unwrap()
    });
    *net = done;
    net.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsumma_matrix::factor::{seeded_diag_dominant, unpack_lower_unit, unpack_upper};
    use hsumma_matrix::{gemm, BlockDist, Matrix};
    use hsumma_runtime::Runtime;

    /// Scatter → distributed LU → gather → reconstruct L·U and compare.
    fn run_lu_case(grid: GridShape, n: usize, cfg: LuConfig) {
        let a = seeded_diag_dominant(n, 42);
        let dist = BlockDist::new(grid, n, n);
        let tiles = dist.scatter(&a);
        let out = Runtime::run(grid.size(), |comm| {
            block_lu(comm, grid, n, &tiles[comm.rank()].clone(), &cfg).unwrap()
        });
        let packed = dist.gather(&out);
        let l = unpack_lower_unit(&packed);
        let u = unpack_upper(&packed);
        let mut rebuilt = Matrix::zeros(n, n);
        gemm(GemmKernel::Blocked, &l, &u, &mut rebuilt);
        assert!(
            rebuilt.approx_eq(&a, 1e-7),
            "grid {grid:?} n={n} cfg={cfg:?}: err {}",
            rebuilt.max_abs_diff(&a)
        );
    }

    #[test]
    fn lu_single_rank_matches_local_factorization() {
        run_lu_case(
            GridShape::new(1, 1),
            8,
            LuConfig {
                block: 2,
                ..Default::default()
            },
        );
    }

    #[test]
    fn lu_square_grid() {
        run_lu_case(
            GridShape::new(2, 2),
            16,
            LuConfig {
                block: 2,
                ..Default::default()
            },
        );
    }

    #[test]
    fn lu_rectangular_grid() {
        run_lu_case(
            GridShape::new(2, 4),
            16,
            LuConfig {
                block: 2,
                ..Default::default()
            },
        );
        run_lu_case(
            GridShape::new(4, 2),
            16,
            LuConfig {
                block: 2,
                ..Default::default()
            },
        );
    }

    #[test]
    fn lu_block_equal_to_tile() {
        run_lu_case(
            GridShape::new(2, 2),
            8,
            LuConfig {
                block: 4,
                ..Default::default()
            },
        );
    }

    #[test]
    fn hierarchical_lu_matches_flat_lu() {
        let grid = GridShape::new(4, 4);
        let n = 16;
        let a = seeded_diag_dominant(n, 17);
        let dist = BlockDist::new(grid, n, n);
        let tiles = dist.scatter(&a);
        let run = |groups: Option<GridShape>| {
            let cfg = LuConfig {
                block: 2,
                kernel: GemmKernel::Blocked,
                groups,
                ..Default::default()
            };
            let out = Runtime::run(grid.size(), |comm| {
                block_lu(comm, grid, n, &tiles[comm.rank()].clone(), &cfg).unwrap()
            });
            dist.gather(&out)
        };
        let flat = run(None);
        for groups in [
            GridShape::new(2, 2),
            GridShape::new(1, 4),
            GridShape::new(4, 4),
        ] {
            let hier = run(Some(groups));
            assert_eq!(flat, hier, "groups {groups:?} changed the factorization");
        }
    }

    #[test]
    fn hierarchical_lu_reconstructs() {
        run_lu_case(
            GridShape::new(4, 4),
            32,
            LuConfig {
                block: 4,
                groups: Some(GridShape::new(2, 2)),
                ..Default::default()
            },
        );
    }

    #[test]
    fn sim_lu_runs_and_counts_messages() {
        let plat = Platform::bluegene_p();
        let grid = GridShape::new(4, 4);
        let flat = sim_block_lu(&plat, grid, 64, 8, SimBcast::Binomial, None, true);
        assert!(flat.total_time > 0.0);
        assert!(flat.msgs > 0);
        let hier = sim_block_lu(
            &plat,
            grid,
            64,
            8,
            SimBcast::Binomial,
            Some(GridShape::new(2, 2)),
            true,
        );
        // Hierarchy moves the same panel volume (every rank still receives
        // each panel once under tree broadcasts).
        assert_eq!(flat.bytes, hier.bytes);
    }

    #[test]
    fn hierarchical_lu_helps_under_serialized_broadcasts() {
        // Same mechanism as HSUMMA: with a linear-cost broadcast, the
        // two-level split reduces the per-step broadcast width.
        let plat = Platform::bluegene_p_effective();
        let grid = GridShape::new(16, 16);
        let flat = sim_block_lu(&plat, grid, 512, 32, SimBcast::Flat, None, true);
        let hier = sim_block_lu(
            &plat,
            grid,
            512,
            32,
            SimBcast::Flat,
            Some(GridShape::new(4, 4)),
            true,
        );
        assert!(
            hier.comm_time < flat.comm_time,
            "HLU {} should beat LU {}",
            hier.comm_time,
            flat.comm_time
        );
    }

    #[test]
    fn below_rows_covers_the_three_cases() {
        // th = 8, bs = 2, pivot in tile row 1 at offset 4.
        assert_eq!(below_rows(2, 1, 4, 2, 8), (0, 8)); // below: whole tile
        assert_eq!(below_rows(1, 1, 4, 2, 8), (6, 2)); // same: remainder
        assert_eq!(below_rows(0, 1, 4, 2, 8), (0, 0)); // above: nothing
    }
}
