//! TSQR — communication-avoiding QR of tall-skinny matrices, the QR half
//! of §VI's "apply the same approach to other numerical linear algebra
//! kernels such as QR/LU factorization".
//!
//! A tall matrix `A` (`m × n`, `m ≫ n`) is distributed as row blocks over
//! `p` ranks. Each rank factors its block locally, then the `n × n` `R`
//! factors are combined up a binary tree (each combine is a local QR of
//! two stacked `R`s — `log₂ p` rounds of one small message each, the
//! communication-optimal schedule), and the tree's orthogonal factors are
//! propagated back down so every rank can reconstruct its slice of the
//! global thin `Q`.
//!
//! Just as HSUMMA's hierarchy restructures SUMMA's broadcasts, TSQR's
//! tree restructures the panel factorization's reduction — the same
//! "make the communicator smaller" principle applied to QR. [`tsqr()`] is
//! generic over the [`Communicator`] substrate (real payloads or phantom
//! ones on simulated clocks); [`sim_tsqr`] prices the schedule
//! analytically against the naive gather-and-factor alternative.

use crate::comm::{Communicator, MatLike};
use hsumma_matrix::GemmKernel;
use hsumma_netsim::model::ELEM_BYTES;
use hsumma_netsim::{Platform, SimNet};
use hsumma_runtime::{BcastAlgorithm, CommError};

const TAG_R_UP: u64 = 41;
const TAG_Q_DOWN: u64 = 42;

/// Distributed TSQR over the ranks of `comm`. Every rank passes its local
/// row block `a_local` (`rows × n`, same `n` everywhere, `rows ≥ n`).
/// Returns `(q_local, r)`: this rank's `rows × n` slice of the global
/// orthonormal `Q`, and the global `n × n` upper-triangular `R`
/// (identical on every rank), with `Q·R = A` and `QᵀQ = I`.
///
/// # Panics
/// Panics if `rows < n` on any rank (each local block must be tall).
pub fn tsqr<C: Communicator>(comm: &C, a_local: &C::Mat) -> Result<(C::Mat, C::Mat), CommError> {
    let n = a_local.cols();
    let rows = a_local.rows();
    let p = comm.size();
    let me = comm.rank();

    // Local factorization: a thin QR of an m×n block costs ~m·n² pairs.
    let (q_local, mut r) = comm.compute((rows * n * n) as f64, 0, || a_local.qr_thin());

    // Upward sweep: binary tree on ranks; at level `l` ranks aligned to
    // 2^(l+1) absorb the R of the partner 2^l above them. Remember each
    // combine's orthogonal factor halves for the downward sweep.
    let mut combines: Vec<(usize, C::Mat, C::Mat)> = Vec::new(); // (partner, q_top, q_bot)
    let mut stride = 1usize;
    while stride < p {
        if me.is_multiple_of(2 * stride) {
            let partner = me + stride;
            if partner < p {
                let r_partner = comm.recv_mat(partner, TAG_R_UP, n, n)?;
                let (q2, r_new) = comm.compute((2 * n * n * n) as f64, 0, || {
                    let mut stacked = C::Mat::zeros(2 * n, n);
                    stacked.set_block(0, 0, &r);
                    stacked.set_block(n, 0, &r_partner);
                    stacked.qr_thin()
                });
                combines.push((partner, q2.block(0, 0, n, n), q2.block(n, 0, n, n)));
                r = r_new;
            }
        } else if me % (2 * stride) == stride {
            comm.send_mat(me - stride, TAG_R_UP, r.clone())?;
        }
        stride *= 2;
    }

    // Downward sweep: the root's accumulated transform is the identity;
    // each combine sends its bottom half (times the running transform) to
    // the partner and keeps the top half.
    let mut transform = if me == 0 {
        C::Mat::identity(n)
    } else {
        // Wait for our transform from whoever absorbed our R.
        let parent = me - lowest_set_bit(me);
        comm.recv_mat(parent, TAG_Q_DOWN, n, n)?
    };
    for (partner, q_top, q_bot) in combines.into_iter().rev() {
        let mut down = C::Mat::zeros(n, n);
        C::Mat::gemm(GemmKernel::Blocked, &q_bot, &transform, &mut down);
        comm.send_mat(partner, TAG_Q_DOWN, down)?;
        let mut up = C::Mat::zeros(n, n);
        C::Mat::gemm(GemmKernel::Blocked, &q_top, &transform, &mut up);
        transform = up;
    }

    // Local Q slice: Q_local · transform.
    let mut q_out = C::Mat::zeros(rows, n);
    comm.compute((rows * n * n) as f64, 0, || {
        C::Mat::gemm(GemmKernel::Blocked, &q_local, &transform, &mut q_out)
    });

    // Everyone needs the final R (rank 0 holds it after the sweep; other
    // ranks' stale partials are overwritten).
    comm.bcast_mat(BcastAlgorithm::Binomial, 0, &mut r)?;
    Ok((q_out, r))
}

fn lowest_set_bit(x: usize) -> usize {
    x & x.wrapping_neg()
}

/// Prices the TSQR schedule on the simulator against the naive
/// alternative (gather all blocks to rank 0, factor there): returns
/// `(tsqr_time, gather_time)` for `p` ranks, `rows` local rows, width `n`.
pub fn sim_tsqr(platform: &Platform, p: usize, rows: usize, n: usize) -> (f64, f64) {
    let r_bytes = (n * n) as u64 * ELEM_BYTES;
    // γ·(2mn² flops) for a local m×n QR, in multiply-add pairs ≈ m·n².
    let local_qr = |m: usize| platform.gamma * (m * n * n) as f64;

    // TSQR: local QR everywhere, then log2(p) combine rounds.
    let mut net = SimNet::new(p, platform.net);
    for rank in 0..p {
        net.compute(rank, local_qr(rows));
    }
    let mut stride = 1;
    while stride < p {
        for me in (0..p).step_by(2 * stride) {
            if me + stride < p {
                net.send(me + stride, me, r_bytes);
                net.compute(me, local_qr(2 * n));
            }
        }
        stride *= 2;
    }
    let tsqr_time = net.elapsed();

    // Naive: everyone ships its whole block to rank 0, which factors the
    // full stacked matrix.
    let mut net = SimNet::new(p, platform.net);
    let block_bytes = (rows * n) as u64 * ELEM_BYTES;
    for rank in 1..p {
        net.send(rank, 0, block_bytes);
    }
    net.compute(0, local_qr(rows * p));
    (tsqr_time, net.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsumma_matrix::{gemm, seeded_uniform, Matrix};
    use hsumma_runtime::Runtime;

    /// Runs TSQR end-to-end and checks the three QR postconditions.
    fn run_tsqr_case(p: usize, rows_per_rank: usize, n: usize) {
        let m = p * rows_per_rank;
        let a = seeded_uniform(m, n, 77);
        let blocks: Vec<Matrix> = (0..p)
            .map(|r| a.block(r * rows_per_rank, 0, rows_per_rank, n))
            .collect();
        let out = Runtime::run(p, |comm| tsqr(comm, &blocks[comm.rank()]).unwrap());

        // All ranks agree on R, and R is upper triangular.
        let r = &out[0].1;
        for (rank, (_, ri)) in out.iter().enumerate() {
            assert!(ri.approx_eq(r, 1e-9), "rank {rank} has a different R");
        }
        for i in 1..n {
            for j in 0..i {
                assert!(r.get(i, j).abs() < 1e-9, "R not triangular at ({i},{j})");
            }
        }

        // Stack the Q slices: Q·R = A and QᵀQ = I.
        let mut q = Matrix::zeros(m, n);
        for (rank, (qi, _)) in out.iter().enumerate() {
            q.set_block(rank * rows_per_rank, 0, qi);
        }
        let mut qr = Matrix::zeros(m, n);
        gemm(GemmKernel::Blocked, &q, r, &mut qr);
        assert!(qr.approx_eq(&a, 1e-8), "QR != A: {}", qr.max_abs_diff(&a));
        let mut qtq = Matrix::zeros(n, n);
        gemm(GemmKernel::Blocked, &q.transpose(), &q, &mut qtq);
        assert!(
            qtq.approx_eq(&Matrix::identity(n), 1e-8),
            "Q columns not orthonormal"
        );
    }

    #[test]
    fn tsqr_single_rank_is_local_qr() {
        run_tsqr_case(1, 8, 3);
    }

    #[test]
    fn tsqr_two_ranks() {
        run_tsqr_case(2, 6, 4);
    }

    #[test]
    fn tsqr_power_of_two_ranks() {
        run_tsqr_case(8, 5, 3);
    }

    #[test]
    fn tsqr_non_power_of_two_ranks() {
        run_tsqr_case(6, 4, 2);
        run_tsqr_case(5, 4, 3);
    }

    #[test]
    fn tsqr_square_local_blocks() {
        run_tsqr_case(4, 3, 3);
    }

    #[test]
    fn tsqr_runs_on_the_simulator() {
        // The same schedule over phantom payloads: 4 ranks, 8×3 blocks.
        use crate::comm::PhantomMat;
        use hsumma_netsim::spmd::SimWorld;
        let plat = Platform::grid5000();
        let (net, _) = SimWorld::run(SimNet::new(4, plat.net), plat.gamma, false, |comm| {
            let block = PhantomMat { rows: 8, cols: 3 };
            tsqr(comm, &block).unwrap()
        });
        let rep = net.report();
        // Upward: 3 R messages; downward: 3 Q messages; bcast: 3 messages.
        assert_eq!(rep.msgs, 9);
        assert_eq!(rep.bytes, 9 * 9 * ELEM_BYTES);
    }

    #[test]
    fn sim_tsqr_beats_gather_at_scale() {
        // The whole point of TSQR: log p small messages beat shipping the
        // entire tall matrix to one rank.
        let plat = Platform::bluegene_p_effective();
        let (t_tree, t_gather) = sim_tsqr(&plat, 256, 4096, 32);
        assert!(
            t_tree < t_gather,
            "TSQR {t_tree} should beat gather-and-factor {t_gather}"
        );
    }
}
