//! End-to-end drivers shared by tests, examples and benchmarks.
//!
//! The distributed algorithms are SPMD functions over per-rank tiles;
//! verifying them requires the scatter → run → gather → compare loop.
//! [`distributed_product`] packages that loop.

use hsumma_matrix::{gemm, BlockDist, GemmKernel, GridShape, Matrix};
use hsumma_runtime::{Comm, Runtime};

/// Serial reference product `A·B` (naive kernel — the correctness oracle).
pub fn reference_product(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(GemmKernel::Naive, a, b, &mut c);
    c
}

/// Scatters `a` and `b` over `grid`, runs `algo` on every rank (receiving
/// its local tiles), gathers the per-rank results into the global `C`.
///
/// `algo` must be an SPMD distributed multiply returning the local C tile.
pub fn distributed_product(
    grid: GridShape,
    n: usize,
    a: &Matrix,
    b: &Matrix,
    algo: impl Fn(&mut Comm, Matrix, Matrix) -> Matrix + Send + Sync,
) -> Matrix {
    let dist = BlockDist::new(grid, n, n);
    let a_tiles = dist.scatter(a);
    let b_tiles = dist.scatter(b);
    let c_tiles = Runtime::run(grid.size(), |comm| {
        let at = a_tiles[comm.rank()].clone();
        let bt = b_tiles[comm.rank()].clone();
        algo(comm, at, bt)
    });
    dist.gather(&c_tiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsumma_matrix::seeded_uniform;

    #[test]
    fn distributed_identity_algo_roundtrips_a() {
        // An "algorithm" that just returns its A tile: the harness must
        // reassemble the original global A.
        let grid = GridShape::new(2, 2);
        let a = seeded_uniform(8, 8, 5);
        let b = seeded_uniform(8, 8, 6);
        let got = distributed_product(grid, 8, &a, &b, |_, at, _| at);
        assert_eq!(got, a);
    }

    #[test]
    fn reference_product_identity() {
        let a = seeded_uniform(6, 6, 9);
        let id = Matrix::identity(6);
        assert!(reference_product(&a, &id).approx_eq(&a, 1e-12));
    }
}
