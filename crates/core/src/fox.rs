//! Fox's algorithm (1987) — broadcast-multiply-roll baseline (§I).
//!
//! Square `q × q` grid, one tile per processor. In round `k`, each
//! processor row broadcasts its diagonal-offset tile `A[i][(i+k) mod q]`
//! along the row, multiplies it with the current `B` tile, then rolls `B`
//! one position up. Like Cannon's, the square-grid restriction kept it out
//! of general-purpose libraries.

use crate::comm::{Communicator, MatLike};
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_runtime::{BcastAlgorithm, CommError};

const TAG_ROLL_B: u64 = 21;

/// Runs Fox's algorithm on the calling rank. SPMD over a square grid;
/// operands block-checkerboard distributed. Returns the local `C` tile.
///
/// # Panics
/// Panics if the grid is not square or tile shapes are inconsistent.
pub fn fox<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    kernel: GemmKernel,
) -> Result<C::Mat, CommError> {
    fox_with(comm, grid, n, a, b, kernel, BcastAlgorithm::Binomial)
}

/// [`fox`] with an explicit row-broadcast algorithm. Generic over the
/// [`Communicator`] substrate, so the same schedule runs on the threaded
/// runtime or on simulated clocks.
///
/// # Panics
/// Panics if the grid is not square or tile shapes are inconsistent.
pub fn fox_with<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    kernel: GemmKernel,
    bcast: BcastAlgorithm,
) -> Result<C::Mat, CommError> {
    assert_eq!(grid.rows, grid.cols, "Fox requires a square processor grid");
    let q = grid.rows;
    assert_eq!(comm.size(), grid.size(), "communicator must span the grid");
    assert_eq!(n % q, 0, "n must be divisible by the grid side");
    let ts = n / q;
    assert_eq!((a.rows(), a.cols()), (ts, ts), "A tile has wrong shape");
    assert_eq!((b.rows(), b.cols()), (ts, ts), "B tile has wrong shape");

    let (i, j) = grid.coords(comm.rank());
    let row_comm = comm.split(i as u64, j as i64)?;
    let up = grid.rank((i + q - 1) % q, j);
    let down = grid.rank((i + 1) % q, j);

    let mut b_cur = b.clone();
    let mut c = C::Mat::zeros(ts, ts);
    let step_pairs = ts * ts * ts;
    for k in 0..q {
        b_cur = comm.trace_step(k, ts, ts, || -> Result<_, CommError> {
            // Broadcast A[i][(i+k) mod q] along row i.
            let root = (i + k) % q;
            let mut a_bc = if j == root {
                a.clone()
            } else {
                C::Mat::zeros(ts, ts)
            };
            crate::summa::bcast_matrix(&row_comm, bcast, root, &mut a_bc)?;

            comm.compute(step_pairs as f64, 2 * step_pairs as u64, || {
                C::Mat::gemm(kernel, &a_bc, &b_cur, &mut c)
            });

            // Roll B up by one (skip on a 1-wide column).
            if q > 1 {
                comm.send_mat(up, TAG_ROLL_B, b_cur)?;
                comm.recv_mat(down, TAG_ROLL_B, ts, ts)
            } else {
                Ok(b_cur)
            }
        })?;
        comm.maybe_step_sync()?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::seeded_uniform;

    fn run_fox_case(q: usize, n: usize) {
        let grid = GridShape::new(q, q);
        let a = seeded_uniform(n, n, 700);
        let b = seeded_uniform(n, n, 800);
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            fox(comm, grid, n, &at, &bt, GemmKernel::Blocked).unwrap()
        });
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "q={q} n={n}: max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn fox_2x2() {
        run_fox_case(2, 8);
    }

    #[test]
    fn fox_3x3() {
        run_fox_case(3, 9);
    }

    #[test]
    fn fox_4x4() {
        run_fox_case(4, 16);
    }

    #[test]
    fn fox_single_rank() {
        run_fox_case(1, 4);
    }

    #[test]
    fn fox_cannon_summa_hsumma_agree() {
        use crate::hsumma::{hsumma, HsummaConfig};
        use crate::summa::{summa, SummaConfig};

        let grid = GridShape::new(2, 2);
        let n = 8;
        let a = seeded_uniform(n, n, 31);
        let b = seeded_uniform(n, n, 32);
        let want = reference_product(&a, &b);

        let by_fox = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            fox(comm, grid, n, &at, &bt, GemmKernel::Blocked).unwrap()
        });
        let by_cannon = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            crate::cannon::cannon(comm, grid, n, &at, &bt, GemmKernel::Blocked).unwrap()
        });
        let by_summa = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa(
                comm,
                grid,
                n,
                &at,
                &bt,
                &SummaConfig {
                    block: 2,
                    ..Default::default()
                },
            )
            .unwrap()
        });
        let by_hsumma = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma(
                comm,
                grid,
                n,
                &at,
                &bt,
                &HsummaConfig::uniform(GridShape::new(2, 2), 2),
            )
            .unwrap()
        });

        for (name, got) in [
            ("fox", by_fox),
            ("cannon", by_cannon),
            ("summa", by_summa),
            ("hsumma", by_hsumma),
        ] {
            assert!(got.approx_eq(&want, 1e-9), "{name} diverged from reference");
        }
    }
}
