//! Fox's algorithm (1987) — broadcast-multiply-roll baseline (§I).
//!
//! Square `q × q` grid, one tile per processor. In round `k`, each
//! processor row broadcasts its diagonal-offset tile `A[i][(i+k) mod q]`
//! along the row, multiplies it with the current `B` tile, then rolls `B`
//! one position up. Like Cannon's, the square-grid restriction kept it out
//! of general-purpose libraries.

use hsumma_matrix::{gemm, GemmKernel, GridShape, Matrix};
use hsumma_runtime::{BcastAlgorithm, Comm};

const TAG_ROLL_B: u64 = 21;

/// Runs Fox's algorithm on the calling rank. SPMD over a square grid;
/// operands block-checkerboard distributed. Returns the local `C` tile.
///
/// # Panics
/// Panics if the grid is not square or tile shapes are inconsistent.
pub fn fox(
    comm: &Comm,
    grid: GridShape,
    n: usize,
    a: &Matrix,
    b: &Matrix,
    kernel: GemmKernel,
) -> Matrix {
    assert_eq!(grid.rows, grid.cols, "Fox requires a square processor grid");
    let q = grid.rows;
    assert_eq!(comm.size(), grid.size(), "communicator must span the grid");
    assert_eq!(n % q, 0, "n must be divisible by the grid side");
    let ts = n / q;
    assert_eq!(a.shape(), (ts, ts), "A tile has wrong shape");
    assert_eq!(b.shape(), (ts, ts), "B tile has wrong shape");

    let (i, j) = grid.coords(comm.rank());
    let row_comm = comm.split(i as u64, j as i64);
    let up = grid.rank((i + q - 1) % q, j);
    let down = grid.rank((i + 1) % q, j);

    let mut b_cur = b.clone();
    let mut c = Matrix::zeros(ts, ts);
    let step_flops = (2 * ts * ts * ts) as u64;
    let tile_bytes = (ts * ts * std::mem::size_of::<f64>()) as u64;
    for k in 0..q {
        b_cur = comm.trace_step(k, ts, ts, || {
            // Broadcast A[i][(i+k) mod q] along row i.
            let root = (i + k) % q;
            let mut a_bc = if j == root {
                a.clone()
            } else {
                Matrix::zeros(ts, ts)
            };
            crate::summa::bcast_matrix(&row_comm, BcastAlgorithm::Binomial, root, &mut a_bc);

            comm.time_compute_flops(step_flops, || gemm(kernel, &a_bc, &b_cur, &mut c));

            // Roll B up by one (skip on a 1-wide column).
            if q > 1 {
                comm.send_sized(up, TAG_ROLL_B, b_cur, tile_bytes);
                comm.recv_sized::<Matrix>(down, TAG_ROLL_B, tile_bytes)
            } else {
                b_cur
            }
        });
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::seeded_uniform;

    fn run_fox_case(q: usize, n: usize) {
        let grid = GridShape::new(q, q);
        let a = seeded_uniform(n, n, 700);
        let b = seeded_uniform(n, n, 800);
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            fox(comm, grid, n, &at, &bt, GemmKernel::Blocked)
        });
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "q={q} n={n}: max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn fox_2x2() {
        run_fox_case(2, 8);
    }

    #[test]
    fn fox_3x3() {
        run_fox_case(3, 9);
    }

    #[test]
    fn fox_4x4() {
        run_fox_case(4, 16);
    }

    #[test]
    fn fox_single_rank() {
        run_fox_case(1, 4);
    }

    #[test]
    fn fox_cannon_summa_hsumma_agree() {
        use crate::hsumma::{hsumma, HsummaConfig};
        use crate::summa::{summa, SummaConfig};

        let grid = GridShape::new(2, 2);
        let n = 8;
        let a = seeded_uniform(n, n, 31);
        let b = seeded_uniform(n, n, 32);
        let want = reference_product(&a, &b);

        let by_fox = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            fox(comm, grid, n, &at, &bt, GemmKernel::Blocked)
        });
        let by_cannon = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            crate::cannon::cannon(comm, grid, n, &at, &bt, GemmKernel::Blocked)
        });
        let by_summa = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa(
                comm,
                grid,
                n,
                &at,
                &bt,
                &SummaConfig {
                    block: 2,
                    ..Default::default()
                },
            )
        });
        let by_hsumma = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma(
                comm,
                grid,
                n,
                &at,
                &bt,
                &HsummaConfig::uniform(GridShape::new(2, 2), 2),
            )
        });

        for (name, got) in [
            ("fox", by_fox),
            ("cannon", by_cannon),
            ("summa", by_summa),
            ("hsumma", by_hsumma),
        ] {
            assert!(got.approx_eq(&want, 1e-9), "{name} diverged from reference");
        }
    }
}
