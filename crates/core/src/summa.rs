//! Executable SUMMA over the threaded runtime.
//!
//! SUMMA (van de Geijn & Watts 1997; §II-A of the paper) multiplies
//! `C = A·B` on an `s × t` grid: at step `k`, the owners of pivot column
//! panel `k` of `A` broadcast it along their grid rows, the owners of
//! pivot row panel `k` of `B` broadcast it along their grid columns, and
//! every processor accumulates `C_tile += A_panel · B_panel`.

use crate::comm::{Communicator, MatLike};
use crate::partition::{pivot_offset, pivot_owner, tile_shape};
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_runtime::{BcastAlgorithm, CommError};

/// Parameters of a SUMMA run.
#[derive(Clone, Copy, Debug)]
pub struct SummaConfig {
    /// Panel width `b`. Must divide both local tile extents.
    pub block: usize,
    /// Broadcast algorithm for the pivot panels.
    pub bcast: BcastAlgorithm,
    /// Local multiply kernel.
    pub kernel: GemmKernel,
}

impl Default for SummaConfig {
    fn default() -> Self {
        SummaConfig {
            block: 32,
            bcast: BcastAlgorithm::Binomial,
            kernel: GemmKernel::Packed,
        }
    }
}

/// Broadcasts `mat` (whose shape every member already knows) from `root`
/// over `comm` in place; non-roots pass a correctly shaped scratch matrix.
pub(crate) fn bcast_matrix<C: Communicator>(
    comm: &C,
    algo: BcastAlgorithm,
    root: usize,
    mat: &mut C::Mat,
) -> Result<(), CommError> {
    comm.bcast_mat(algo, root, mat)
}

/// Validates the distributed-operand invariants shared by SUMMA and
/// HSUMMA and returns `(tile_rows, tile_cols)`.
pub(crate) fn check_tiles<M: MatLike>(
    grid: GridShape,
    n: usize,
    a: &M,
    b: &M,
    comm_size: usize,
) -> (usize, usize) {
    assert_eq!(
        comm_size,
        grid.size(),
        "communicator must span the whole grid"
    );
    let (th, tw) = tile_shape(grid, n);
    assert_eq!((a.rows(), a.cols()), (th, tw), "A tile has wrong shape");
    assert_eq!((b.rows(), b.cols()), (th, tw), "B tile has wrong shape");
    (th, tw)
}

/// Runs SUMMA on the calling rank. SPMD: every rank of `comm` must call
/// this with its local tiles of `A` and `B` (block-checkerboard
/// distribution over `grid`). This entry point is the square `n × n`
/// special case — [`crate::rect::summa_rect`] takes general `(M, L, N)`
/// extents, and the planner layer reaches non-grid-divisible shapes via
/// the [`crate::cosma()`] brick schedule. Returns the local tile of `C`.
///
/// Generic over the [`Communicator`] substrate: with the runtime's `Comm`
/// it multiplies real matrices; with the simulator's `SimComm` the same
/// schedule advances virtual clocks over phantom payloads.
///
/// # Panics
/// Panics if the grid, tile shapes or block size are inconsistent
/// (`block` must divide `n/s` and `n/t`).
pub fn summa<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &SummaConfig,
) -> Result<C::Mat, CommError> {
    let (th, tw) = check_tiles(grid, n, a, b, comm.size());
    let bs = cfg.block;
    assert!(bs > 0, "block size must be positive");
    assert_eq!(tw % bs, 0, "block must divide the tile width");
    assert_eq!(th % bs, 0, "block must divide the tile height");

    let (gi, gj) = grid.coords(comm.rank());
    // Row communicator: same grid row, ordered by column (local rank = gj).
    let row_comm = comm.split(gi as u64, gj as i64)?;
    // Column communicator: same grid column, ordered by row.
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;

    let mut c = C::Mat::zeros(th, tw);
    // Panel scratch is allocated once and reused across all steps: pivot
    // owners refill it from their tile, everyone else has it overwritten
    // by the broadcast.
    let mut a_panel = C::Mat::zeros(th, bs);
    let mut b_panel = C::Mat::zeros(bs, tw);
    let steps = n / bs;
    let step_pairs = th * tw * bs;
    for k in 0..steps {
        comm.trace_step(k, bs, bs, || -> Result<(), CommError> {
            // --- pivot column panel of A, broadcast along the grid row ---
            let owner_col = pivot_owner(k, bs, tw);
            if gj == owner_col {
                a.block_into(0, pivot_offset(k, bs, tw), &mut a_panel);
            }
            bcast_matrix(&row_comm, cfg.bcast, owner_col, &mut a_panel)?;

            // --- pivot row panel of B, broadcast along the grid column ---
            let owner_row = pivot_owner(k, bs, th);
            if gi == owner_row {
                b.block_into(pivot_offset(k, bs, th), 0, &mut b_panel);
            }
            bcast_matrix(&col_comm, cfg.bcast, owner_row, &mut b_panel)?;

            // --- local update: C += A_panel · B_panel ---------------------
            comm.compute(step_pairs as f64, 2 * step_pairs as u64, || {
                C::Mat::gemm(cfg.kernel, &a_panel, &b_panel, &mut c)
            });
            Ok(())
        })?;
        comm.maybe_step_sync()?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::{seeded_uniform, BlockDist};
    use hsumma_runtime::Runtime;

    /// Runs SUMMA end-to-end: scatter, multiply, gather, compare.
    fn run_summa_case(grid: GridShape, n: usize, cfg: SummaConfig) {
        let a = seeded_uniform(n, n, 100);
        let b = seeded_uniform(n, n, 200);
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa(comm, grid, n, &at, &bt, &cfg).unwrap()
        });
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "grid {grid:?} n={n} cfg={cfg:?}: max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn summa_square_grid_matches_serial() {
        run_summa_case(
            GridShape::new(2, 2),
            8,
            SummaConfig {
                block: 2,
                ..Default::default()
            },
        );
    }

    #[test]
    fn summa_rectangular_grid_matches_serial() {
        run_summa_case(
            GridShape::new(2, 4),
            16,
            SummaConfig {
                block: 2,
                ..Default::default()
            },
        );
        run_summa_case(
            GridShape::new(4, 2),
            16,
            SummaConfig {
                block: 2,
                ..Default::default()
            },
        );
    }

    #[test]
    fn summa_single_rank_degenerates_to_local_gemm() {
        run_summa_case(
            GridShape::new(1, 1),
            8,
            SummaConfig {
                block: 4,
                ..Default::default()
            },
        );
    }

    #[test]
    fn summa_block_size_one() {
        run_summa_case(
            GridShape::new(2, 2),
            6,
            SummaConfig {
                block: 1,
                ..Default::default()
            },
        );
    }

    #[test]
    fn summa_block_equal_to_tile() {
        // b = n/s: a single step per tile boundary.
        run_summa_case(
            GridShape::new(2, 2),
            8,
            SummaConfig {
                block: 4,
                ..Default::default()
            },
        );
    }

    #[test]
    fn summa_all_broadcast_algorithms_agree() {
        let grid = GridShape::new(2, 2);
        let n = 8;
        for bcast in [
            BcastAlgorithm::Flat,
            BcastAlgorithm::Binomial,
            BcastAlgorithm::Binary,
            BcastAlgorithm::Ring,
            BcastAlgorithm::Pipelined { segments: 3 },
            BcastAlgorithm::ScatterAllgather,
        ] {
            run_summa_case(
                grid,
                n,
                SummaConfig {
                    block: 2,
                    bcast,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn summa_counts_communication_and_computation() {
        let grid = GridShape::new(2, 2);
        let n = 16;
        let a = seeded_uniform(n, n, 1);
        let b = seeded_uniform(n, n, 2);
        let dist = BlockDist::new(grid, n, n);
        let a_tiles = dist.scatter(&a);
        let b_tiles = dist.scatter(&b);
        let stats = Runtime::run(grid.size(), |comm| {
            let at = a_tiles[comm.rank()].clone();
            let bt = b_tiles[comm.rank()].clone();
            comm.reset_stats();
            let _ = summa(
                comm,
                grid,
                n,
                &at,
                &bt,
                &SummaConfig {
                    block: 4,
                    ..Default::default()
                },
            )
            .unwrap();
            comm.stats()
        });
        for s in &stats {
            assert!(s.comp_seconds > 0.0, "compute time should be recorded");
            assert!(s.msgs_sent > 0, "every rank participates in broadcasts");
        }
    }

    #[test]
    #[should_panic(expected = "block must divide")]
    fn summa_rejects_non_dividing_block() {
        let grid = GridShape::new(2, 2);
        let n = 8;
        let a = seeded_uniform(n, n, 1);
        let b = seeded_uniform(n, n, 2);
        let _ = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa(
                comm,
                grid,
                n,
                &at,
                &bt,
                &SummaConfig {
                    block: 3,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    }
}
