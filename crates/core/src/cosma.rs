//! A COSMA-style near-communication-optimal schedule over brick
//! decompositions of the `m × n × k` iteration cube.
//!
//! COSMA (Kwasniewski et al., *Red-Blue Pebbling Revisited*, SC'19,
//! arXiv:1908.09606) derives a parallel schedule from the sequential
//! I/O lower bound: instead of projecting the computation onto a 2-D
//! process grid, it cuts the iteration cube itself into `a × b × c`
//! near-cubic bricks ([`BrickDecomp`]), one per rank. Rank `(i, j, l)`
//! computes the partial product of `A`'s `(i, l)` brick and `B`'s
//! `(l, j)` brick; partial `C(i, j)` bricks are then reduced over the
//! `c` replication layers. The payoff over SUMMA/HSUMMA is twofold:
//! a handful of large transfers instead of `n/b` pivot-step broadcasts
//! (latency), and — when memory allows `c > 1` — strictly less traffic
//! per rank (bandwidth), exactly as in the 2.5D schedule but without
//! requiring `p = q²·c` or any divisibility at all. An awkward `p`
//! (prime-ish, say) simply idles `p − a·b·c` ranks.
//!
//! The schedule here is written once over the [`Communicator`] trait:
//!
//! 1. three sub-communicator splits carve the BFS fibers of the cube —
//!    the `j`-fiber that replicates `A[i, l]`, the `i`-fiber that
//!    replicates `B[l, j]`, and the `l`-fiber that reduces `C(i, j)`;
//! 2. operand bricks are broadcast along their fibers in
//!    [`CosmaConfig::steps`] `k`-slices (more steps = smaller in-flight
//!    panels = lower peak memory, at more latency — the DFS knob);
//! 3. every rank runs one local GEMM per slice;
//! 4. partial `C` bricks are combined by a ring **reduce-scatter**
//!    followed by a gather onto the `l = 0` layer, under dedicated tags
//!    in the collective band so `TagClass::Collective` fault rules and
//!    deadlines reach the fragments on both substrates.
//!
//! Input/output layouts are the [`BrickDecomp::a_distribution`] /
//! `b_distribution` / `c_distribution` descriptors; callers holding
//! block-checkerboard tiles can convert with
//! [`crate::distribution::redistribute`] (the planner's dispatch path in
//! [`crate::plan`] does exactly that).

use crate::comm::{Communicator, MatLike};
use crate::distribution::BrickDecomp;
use crate::grid::color3;
use crate::partition::chunk_range;
use crate::summa::bcast_matrix;
use hsumma_matrix::GemmKernel;
use hsumma_runtime::{BcastAlgorithm, CommError};

/// Tag base for reduce-scatter fragments of the partial-`C` reduction:
/// in the collective band (≥ `COLLECTIVE_TAG_FLOOR`), clear of the
/// simulator's internal collective tags and of the ibcast band.
pub const COSMA_TAG_RS: u64 = (1 << 62) + (1 << 50);

/// Tag base for the post-reduce-scatter gather of owned fragments onto
/// the `l = 0` layer (offset by the fragment index).
pub const COSMA_TAG_GATHER: u64 = (1 << 62) + (1 << 50) + (1 << 20);

/// Parameters of a COSMA run.
#[derive(Clone, Copy, Debug)]
pub struct CosmaConfig {
    /// The `(a, b, c)` brick decomposition of the iteration cube.
    pub decomp: BrickDecomp,
    /// Number of `k`-slices each brick's replication is pipelined over
    /// (≥ 1). Total traffic is unchanged; peak in-flight panel memory
    /// shrinks by the same factor the latency term grows.
    pub steps: usize,
    /// Broadcast algorithm for the brick replication fibers.
    pub bcast: BcastAlgorithm,
    /// Local multiply kernel.
    pub kernel: GemmKernel,
}

impl CosmaConfig {
    /// A default configuration for multiplying `m × k` by `k × n` over
    /// `p` ranks: searched brick decomposition, single-slice
    /// replication, binomial broadcasts.
    pub fn for_problem(p: usize, m: usize, n: usize, k: usize) -> Self {
        Self::with_decomp(BrickDecomp::search(p, m, n, k))
    }

    /// The [`CosmaConfig::for_problem`] defaults around an
    /// already-searched decomposition — the entry point for callers that
    /// memoize [`BrickDecomp::search`] (the expensive part) across jobs
    /// of the same exact shape.
    pub fn with_decomp(decomp: BrickDecomp) -> Self {
        CosmaConfig {
            decomp,
            steps: 1,
            bcast: BcastAlgorithm::Binomial,
            kernel: GemmKernel::Packed,
        }
    }
}

/// Runs COSMA on the calling rank. SPMD: every rank of `comm` must call
/// this. Active ranks (`rank < decomp.ranks()`) pass their owned bricks
/// of `A` and `B` per [`BrickDecomp::a_distribution`] /
/// [`BrickDecomp::b_distribution`] — non-owners and idle ranks pass
/// `0 × 0` matrices. Returns `Some(C brick)` on the `l = 0` layer
/// (the owners in [`BrickDecomp::c_distribution`]) and `None`
/// everywhere else.
///
/// Generic over the [`Communicator`] substrate; the schedule (splits,
/// fiber broadcasts, reduce-scatter ring, gather) depends only on
/// `(m, n, k)` and the configuration, so real and simulated runs move
/// identical per-rank `(src, dst, bytes)` multisets.
///
/// # Panics
/// Panics if the decomposition needs more ranks than `comm` has, if
/// `steps == 0`, or if a local operand does not match its owned brick.
pub fn cosma<C: Communicator>(
    comm: &C,
    m: usize,
    n: usize,
    k: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &CosmaConfig,
) -> Result<Option<C::Mat>, CommError> {
    let d = cfg.decomp;
    assert!(
        d.ranks() <= comm.size(),
        "decomposition {d:?} needs {} ranks, communicator has {}",
        d.ranks(),
        comm.size()
    );
    assert!(cfg.steps > 0, "steps must be positive");
    let me = comm.rank();

    if me >= d.ranks() {
        // Idle remainder: splits are collective over the parent
        // communicator, so idle ranks must participate — each lands in
        // its own singleton group and then does nothing.
        for _ in 0..3 {
            let _ = comm.split(color3(3, 0, me), 0)?;
        }
        assert_eq!(a.elems(), 0, "idle ranks pass an empty A");
        assert_eq!(b.elems(), 0, "idle ranks pass an empty B");
        return Ok(None);
    }

    let (i, j, l) = d.coords(me);
    let (m0, m1) = d.m_range(i, m);
    let (n0, n1) = d.n_range(j, n);
    let (k0, k1) = d.k_range(l, k);
    let (mi, nj, kl) = (m1 - m0, n1 - n0, k1 - k0);
    if j == 0 {
        assert_eq!((a.rows(), a.cols()), (mi, kl), "A brick has wrong shape");
    } else {
        assert_eq!(a.elems(), 0, "only the j = 0 fiber root holds A");
    }
    if i == 0 {
        assert_eq!((b.rows(), b.cols()), (kl, nj), "B brick has wrong shape");
    } else {
        assert_eq!(b.elems(), 0, "only the i = 0 fiber root holds B");
    }

    // BFS fibers of the cube, as sub-communicator splits. Keys order
    // each fiber by its free coordinate, so fiber rank 0 is the brick
    // owner (`j = 0`, `i = 0`) or the reduction root (`l = 0`).
    let j_comm = comm.split(color3(0, i, l), j as i64)?;
    let i_comm = comm.split(color3(1, j, l), i as i64)?;
    let l_comm = comm.split(color3(2, i, j), l as i64)?;

    let mut c_part = C::Mat::zeros(mi, nj);
    for s in 0..cfg.steps {
        let (s0, s1) = chunk_range(kl, cfg.steps, s);
        let kw = s1 - s0;
        comm.trace_step(s, kw, kw, || -> Result<(), CommError> {
            let mut a_panel = if j == 0 {
                a.block(0, s0, mi, kw)
            } else {
                C::Mat::zeros(mi, kw)
            };
            bcast_matrix(&j_comm, cfg.bcast, 0, &mut a_panel)?;

            let mut b_panel = if i == 0 {
                b.block(s0, 0, kw, nj)
            } else {
                C::Mat::zeros(kw, nj)
            };
            bcast_matrix(&i_comm, cfg.bcast, 0, &mut b_panel)?;

            let pairs = mi * nj * kw;
            comm.compute(pairs as f64, 2 * pairs as u64, || {
                C::Mat::gemm(cfg.kernel, &a_panel, &b_panel, &mut c_part)
            });
            Ok(())
        })?;
    }

    reduce_scatter_gather(&l_comm, &mut c_part)?;
    Ok((l == 0).then_some(c_part))
}

/// Combines identically shaped partial matrices over `comm` onto rank 0:
/// a ring reduce-scatter over row fragments (each of the `N` ranks ends
/// owning one fully reduced fragment) followed by a gather of owned
/// fragments to the root. `2·(N−1)` fragment-sized transfers per rank's
/// critical path instead of the binomial reduce's `log₂N` full-matrix
/// hops — the classic large-message reduction.
///
/// Fragments are dealt with [`chunk_range`]; when `N` exceeds the row
/// count the surplus fragments are empty and their messages are skipped
/// (identically on both substrates, since the fragment table is a pure
/// function of shape).
pub fn reduce_scatter_gather<C: Communicator>(comm: &C, mat: &mut C::Mat) -> Result<(), CommError> {
    let p = comm.size();
    if p <= 1 {
        return Ok(());
    }
    let r = comm.rank();
    let (rows, cols) = (mat.rows(), mat.cols());
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;

    // Reduce-scatter ring: at step t, send fragment (r − t), receive and
    // accumulate fragment (r − t − 1). After p − 1 steps rank r owns the
    // fully reduced fragment (r + 1) mod p.
    for t in 0..p - 1 {
        let s_idx = (r + p - t) % p;
        let (ss, se) = chunk_range(rows, p, s_idx);
        if se > ss {
            comm.send_mat(
                next,
                COSMA_TAG_RS + t as u64,
                mat.block(ss, 0, se - ss, cols),
            )?;
        }
        let r_idx = (r + 2 * p - t - 1) % p;
        let (rs, re) = chunk_range(rows, p, r_idx);
        if re > rs {
            let got = comm.recv_mat(prev, COSMA_TAG_RS + t as u64, re - rs, cols)?;
            let mut acc = mat.block(rs, 0, re - rs, cols);
            acc.add_assign(&got);
            mat.set_block(rs, 0, &acc);
        }
    }

    let owned = (r + 1) % p;
    if r == 0 {
        for src in 1..p {
            let idx = (src + 1) % p;
            let (fs, fe) = chunk_range(rows, p, idx);
            if fe > fs {
                let got = comm.recv_mat(src, COSMA_TAG_GATHER + idx as u64, fe - fs, cols)?;
                mat.set_block(fs, 0, &got);
            }
        }
    } else {
        let (fs, fe) = chunk_range(rows, p, owned);
        if fe > fs {
            comm.send_mat(
                0,
                COSMA_TAG_GATHER + owned as u64,
                mat.block(fs, 0, fe - fs, cols),
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::reference_product;
    use hsumma_matrix::{seeded_uniform, Matrix};
    use hsumma_runtime::Runtime;

    /// Scatter per the brick distributions, run cosma on the threaded
    /// runtime, gather the l = 0 bricks, compare against the serial
    /// reference.
    fn run_cosma_case(p: usize, m: usize, n: usize, k: usize, cfg: CosmaConfig) {
        let a = seeded_uniform(m, k, 7);
        let b = seeded_uniform(k, n, 13);
        let da = cfg.decomp.a_distribution(m, k, p);
        let db = cfg.decomp.b_distribution(k, n, p);
        let dc = cfg.decomp.c_distribution(m, n, p);
        let a_tiles = std::sync::Arc::new(da.scatter(&a));
        let b_tiles = std::sync::Arc::new(db.scatter(&b));
        let outs = Runtime::run(p, {
            let (a_tiles, b_tiles) = (a_tiles.clone(), b_tiles.clone());
            move |comm| {
                let at = a_tiles[comm.rank()].clone();
                let bt = b_tiles[comm.rank()].clone();
                cosma(comm, m, n, k, &at, &bt, &cfg).unwrap()
            }
        });
        let tiles: Vec<Matrix> = outs
            .into_iter()
            .enumerate()
            .map(|(r, o)| o.unwrap_or_else(|| dc.local_zeros(r)))
            .collect();
        let got = dc.gather(&tiles);
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "p={p} m={m} n={n} k={k} cfg={cfg:?}: max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn cosma_square_matches_serial() {
        run_cosma_case(
            8,
            8,
            8,
            8,
            CosmaConfig {
                decomp: BrickDecomp::new(2, 2, 2),
                ..CosmaConfig::for_problem(8, 8, 8, 8)
            },
        );
    }

    #[test]
    fn cosma_rectangular_uneven_matches_serial() {
        // Nothing divides anything: 7 x 5 x 9 cube over (2, 2, 2).
        run_cosma_case(
            8,
            7,
            5,
            9,
            CosmaConfig {
                decomp: BrickDecomp::new(2, 2, 2),
                ..CosmaConfig::for_problem(8, 7, 5, 9)
            },
        );
    }

    #[test]
    fn cosma_idles_surplus_ranks() {
        // p = 5 prime: a 2x2x1 decomposition idles the fifth rank.
        run_cosma_case(
            5,
            12,
            10,
            6,
            CosmaConfig {
                decomp: BrickDecomp::new(2, 2, 1),
                ..CosmaConfig::for_problem(5, 12, 10, 6)
            },
        );
    }

    #[test]
    fn cosma_multi_step_replication_matches_serial() {
        run_cosma_case(
            12,
            12,
            8,
            10,
            CosmaConfig {
                decomp: BrickDecomp::new(2, 2, 3),
                steps: 3,
                ..CosmaConfig::for_problem(12, 12, 8, 10)
            },
        );
    }

    #[test]
    fn cosma_searched_decomposition_tall_skinny() {
        let cfg = CosmaConfig::for_problem(6, 48, 4, 4);
        run_cosma_case(6, 48, 4, 4, cfg);
    }

    #[test]
    fn reduce_scatter_gather_reduces_to_root() {
        let outs = Runtime::run(4, |comm| {
            let mut m = Matrix::from_fn(6, 3, |i, j| (comm.rank() + 1) as f64 * (i * 3 + j) as f64);
            reduce_scatter_gather(comm, &mut m).unwrap();
            m
        });
        // Sum over ranks of (r+1)·base = 10·base.
        let want = Matrix::from_fn(6, 3, |i, j| 10.0 * (i * 3 + j) as f64);
        assert!(outs[0].approx_eq(&want, 1e-12));
    }

    #[test]
    fn reduce_scatter_gather_handles_more_ranks_than_rows() {
        let outs = Runtime::run(5, |comm| {
            let mut m = Matrix::from_fn(3, 2, |i, j| (comm.rank() as f64) + (i + j) as f64);
            reduce_scatter_gather(comm, &mut m).unwrap();
            m
        });
        let want = Matrix::from_fn(3, 2, |i, j| 10.0 + 5.0 * (i + j) as f64);
        assert!(outs[0].approx_eq(&want, 1e-12));
    }
}
