//! Processor grids and the two-level group hierarchy.
//!
//! SUMMA arranges `p = s × t` processors in a 2-D grid. HSUMMA (§III)
//! overlays an `I × J` arrangement of *groups* on that grid, so each group
//! is internally an `s/I × t/J` grid. [`HierGrid`] owns all the coordinate
//! algebra: global grid coordinates ↔ (group, inner) coordinates, and the
//! rank lists of the four communicators of Algorithm 1.

use hsumma_matrix::GridShape;

/// Encodes up to three 20-bit coordinates into one `split` color — the
/// shared color scheme of every hierarchical communicator construction in
/// this crate (HSUMMA's four communicators, LU's and the rectangular
/// forms' group splits).
pub(crate) fn color3(a: usize, b: usize, c: usize) -> u64 {
    debug_assert!(a < (1 << 20) && b < (1 << 20) && c < (1 << 20));
    ((a as u64) << 40) | ((b as u64) << 20) | c as u64
}

/// A two-level hierarchical view of an `s × t` processor grid as an
/// `I × J` grid of groups, each an `s/I × t/J` inner grid.
///
/// The paper's processor `P(x,y)(i,j)` is the processor at inner
/// coordinates `(i, j)` of group `(x, y)`.
///
/// ```
/// use hsumma_core::HierGrid;
/// use hsumma_matrix::GridShape;
///
/// // The paper's Fig. 2: a 6x6 grid as 3x3 groups of 2x2 processors.
/// let hg = HierGrid::new(GridShape::new(6, 6), GridShape::new(3, 3));
/// assert_eq!(hg.num_groups(), 9);
/// assert_eq!(hg.group_of(5, 1), (2, 0));
/// assert_eq!(hg.inner_of(5, 1), (1, 1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierGrid {
    grid: GridShape,
    groups: GridShape,
}

impl HierGrid {
    /// Overlays `groups = I × J` on `grid = s × t`.
    ///
    /// # Panics
    /// Panics unless `I` divides `s` and `J` divides `t`.
    pub fn new(grid: GridShape, groups: GridShape) -> Self {
        assert_eq!(
            grid.rows % groups.rows,
            0,
            "group rows {} must divide grid rows {}",
            groups.rows,
            grid.rows
        );
        assert_eq!(
            grid.cols % groups.cols,
            0,
            "group cols {} must divide grid cols {}",
            groups.cols,
            grid.cols
        );
        HierGrid { grid, groups }
    }

    /// The flat processor grid (`s × t`).
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// The arrangement of groups (`I × J`).
    pub fn groups(&self) -> GridShape {
        self.groups
    }

    /// The grid inside one group (`s/I × t/J`).
    pub fn inner(&self) -> GridShape {
        GridShape::new(
            self.grid.rows / self.groups.rows,
            self.grid.cols / self.groups.cols,
        )
    }

    /// Total number of groups `G = I·J`.
    pub fn num_groups(&self) -> usize {
        self.groups.size()
    }

    /// Group coordinates `(x, y)` of the processor at grid `(gi, gj)`.
    pub fn group_of(&self, gi: usize, gj: usize) -> (usize, usize) {
        let inner = self.inner();
        (gi / inner.rows, gj / inner.cols)
    }

    /// Inner coordinates `(i, j)` of the processor at grid `(gi, gj)`.
    pub fn inner_of(&self, gi: usize, gj: usize) -> (usize, usize) {
        let inner = self.inner();
        (gi % inner.rows, gj % inner.cols)
    }

    /// Grid coordinates of processor `P(x,y)(i,j)`.
    pub fn grid_coords(&self, (x, y): (usize, usize), (i, j): (usize, usize)) -> (usize, usize) {
        let inner = self.inner();
        debug_assert!(x < self.groups.rows && y < self.groups.cols);
        debug_assert!(i < inner.rows && j < inner.cols);
        (x * inner.rows + i, y * inner.cols + j)
    }

    /// World ranks of the *group-row communicator* through `P(x,·)(i,j)`:
    /// the processors with the same group row `x` and inner coordinates,
    /// ordered by group column `y`. A's inter-group broadcast runs here.
    pub fn group_row_ranks(&self, x: usize, i: usize, j: usize) -> Vec<usize> {
        (0..self.groups.cols)
            .map(|y| {
                let (gi, gj) = self.grid_coords((x, y), (i, j));
                self.grid.rank(gi, gj)
            })
            .collect()
    }

    /// World ranks of the *group-column communicator* through `P(·,y)(i,j)`,
    /// ordered by group row `x`. B's inter-group broadcast runs here.
    pub fn group_col_ranks(&self, y: usize, i: usize, j: usize) -> Vec<usize> {
        (0..self.groups.rows)
            .map(|x| {
                let (gi, gj) = self.grid_coords((x, y), (i, j));
                self.grid.rank(gi, gj)
            })
            .collect()
    }

    /// World ranks of the *intra-group row communicator* through
    /// `P(x,y)(i,·)`, ordered by inner column `j`.
    pub fn inner_row_ranks(&self, x: usize, y: usize, i: usize) -> Vec<usize> {
        (0..self.inner().cols)
            .map(|j| {
                let (gi, gj) = self.grid_coords((x, y), (i, j));
                self.grid.rank(gi, gj)
            })
            .collect()
    }

    /// World ranks of the *intra-group column communicator* through
    /// `P(x,y)(·,j)`, ordered by inner row `i`.
    pub fn inner_col_ranks(&self, x: usize, y: usize, j: usize) -> Vec<usize> {
        (0..self.inner().rows)
            .map(|i| {
                let (gi, gj) = self.grid_coords((x, y), (i, j));
                self.grid.rank(gi, gj)
            })
            .collect()
    }

    /// A balanced `I × J` factorization of `g` compatible with `grid`
    /// (`I | s`, `J | t`), or `None` if no factorization exists.
    ///
    /// "Balanced" = the group aspect ratio tracks the grid aspect ratio
    /// (maximizing squareness of the inner grids), which is the shape the
    /// paper's `√G × √G` analysis assumes when it exists.
    pub fn factor_groups(grid: GridShape, g: usize) -> Option<GridShape> {
        let mut best: Option<GridShape> = None;
        let mut best_score = f64::INFINITY;
        for i in 1..=g {
            if !g.is_multiple_of(i) {
                continue;
            }
            let j = g / i;
            if !grid.rows.is_multiple_of(i) || !grid.cols.is_multiple_of(j) {
                continue;
            }
            // Squareness of the inner grid: ratio of its longer side to its
            // shorter side (1.0 = perfectly square).
            let ir = (grid.rows / i) as f64;
            let ic = (grid.cols / j) as f64;
            let score = (ir / ic).max(ic / ir);
            if score < best_score {
                best_score = score;
                best = Some(GridShape::new(i, j));
            }
        }
        best
    }

    /// Every achievable group count on `grid`, ascending, with its
    /// balanced factorization. Always contains `1` and `p`.
    pub fn valid_group_counts(grid: GridShape) -> Vec<(usize, GridShape)> {
        (1..=grid.size())
            .filter_map(|g| Self::factor_groups(grid, g).map(|f| (g, f)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_six_by_six_grid_three_by_three_groups() {
        // Fig. 2: a 6×6 grid arranged as 3×3 groups of 2×2 processors.
        let hg = HierGrid::new(GridShape::new(6, 6), GridShape::new(3, 3));
        assert_eq!(hg.inner(), GridShape::new(2, 2));
        assert_eq!(hg.num_groups(), 9);
        assert_eq!(hg.group_of(5, 0), (2, 0));
        assert_eq!(hg.inner_of(5, 0), (1, 0));
        assert_eq!(hg.grid_coords((2, 0), (1, 0)), (5, 0));
    }

    #[test]
    fn coordinate_roundtrip_for_every_rank() {
        let hg = HierGrid::new(GridShape::new(4, 6), GridShape::new(2, 3));
        let grid = hg.grid();
        for rank in 0..grid.size() {
            let (gi, gj) = grid.coords(rank);
            let g = hg.group_of(gi, gj);
            let inner = hg.inner_of(gi, gj);
            assert_eq!(hg.grid_coords(g, inner), (gi, gj));
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn incompatible_groups_rejected() {
        let _ = HierGrid::new(GridShape::new(4, 4), GridShape::new(3, 1));
    }

    #[test]
    fn group_row_ranks_walk_group_columns() {
        let hg = HierGrid::new(GridShape::new(4, 4), GridShape::new(2, 2));
        // Inner grid 2x2. P(0,·)(1,1): grid rows 1, cols 1 and 3.
        let ranks = hg.group_row_ranks(0, 1, 1);
        assert_eq!(ranks, vec![hg.grid().rank(1, 1), hg.grid().rank(1, 3)]);
    }

    #[test]
    fn group_col_ranks_walk_group_rows() {
        let hg = HierGrid::new(GridShape::new(4, 4), GridShape::new(2, 2));
        let ranks = hg.group_col_ranks(1, 0, 1);
        assert_eq!(ranks, vec![hg.grid().rank(0, 3), hg.grid().rank(2, 3)]);
    }

    #[test]
    fn inner_row_and_col_ranks_stay_inside_group() {
        let hg = HierGrid::new(GridShape::new(4, 4), GridShape::new(2, 2));
        let row = hg.inner_row_ranks(1, 1, 0);
        assert_eq!(row, vec![hg.grid().rank(2, 2), hg.grid().rank(2, 3)]);
        let col = hg.inner_col_ranks(1, 1, 1);
        assert_eq!(col, vec![hg.grid().rank(2, 3), hg.grid().rank(3, 3)]);
    }

    #[test]
    fn degenerate_single_group_is_whole_grid() {
        let hg = HierGrid::new(GridShape::new(4, 4), GridShape::new(1, 1));
        assert_eq!(hg.inner(), GridShape::new(4, 4));
        assert_eq!(hg.group_row_ranks(0, 2, 3), vec![hg.grid().rank(2, 3)]);
        assert_eq!(hg.inner_row_ranks(0, 0, 2).len(), 4);
    }

    #[test]
    fn degenerate_all_singleton_groups() {
        let hg = HierGrid::new(GridShape::new(4, 4), GridShape::new(4, 4));
        assert_eq!(hg.inner(), GridShape::new(1, 1));
        assert_eq!(hg.group_row_ranks(2, 0, 0).len(), 4);
        assert_eq!(hg.inner_row_ranks(1, 1, 0).len(), 1);
    }

    #[test]
    fn factor_groups_prefers_square_inner_grids() {
        let grid = GridShape::new(8, 8);
        assert_eq!(HierGrid::factor_groups(grid, 4), Some(GridShape::new(2, 2)));
        assert_eq!(
            HierGrid::factor_groups(grid, 16),
            Some(GridShape::new(4, 4))
        );
        // G=2 on a square grid must pick a 1x2 or 2x1 split.
        let f = HierGrid::factor_groups(grid, 2).unwrap();
        assert_eq!(f.size(), 2);
    }

    #[test]
    fn factor_groups_respects_divisibility() {
        let grid = GridShape::new(4, 8);
        assert_eq!(HierGrid::factor_groups(grid, 3), None);
        let f = HierGrid::factor_groups(grid, 8).unwrap();
        assert_eq!(f.size(), 8);
        assert_eq!(grid.rows % f.rows, 0);
        assert_eq!(grid.cols % f.cols, 0);
    }

    #[test]
    fn valid_group_counts_bracket_includes_1_and_p() {
        let grid = GridShape::new(8, 16);
        let counts = HierGrid::valid_group_counts(grid);
        assert_eq!(counts.first().map(|c| c.0), Some(1));
        assert_eq!(counts.last().map(|c| c.0), Some(128));
        // Powers of two in between are representable on this grid.
        let gs: Vec<usize> = counts.iter().map(|c| c.0).collect();
        for g in [2usize, 4, 8, 16, 32, 64] {
            assert!(gs.contains(&g), "missing G={g}");
        }
    }
}
