//! Hierarchical SUMMA (HSUMMA) — the paper's contribution (§III).
//!
//! HSUMMA overlays an `I × J` grid of groups on SUMMA's `s × t` processor
//! grid and splits each pivot-panel broadcast in two:
//!
//! 1. **inter-group** (outer) phase: the owners of an outer panel of block
//!    size `B` broadcast it *horizontally across groups* (for `A`) or
//!    *vertically across groups* (for `B`) to the processors with the same
//!    inner coordinates — Algorithm 1's `group_row_comm`/`group_col_comm`;
//! 2. **intra-group** (inner) phase: inside each group the panel is
//!    re-broadcast in inner blocks of size `b ≤ B` along the group-local
//!    row/column communicators, followed by the local `DGEMM` update.
//!
//! With `G = 1` or `G = p` groups the schedule degenerates to SUMMA
//! (verified by tests), so HSUMMA can never lose to it — the paper's
//! "worst case" claim.

use crate::comm::{Communicator, MatLike};
use crate::grid::{color3, HierGrid};
use crate::partition::{pivot_offset, pivot_owner};
use crate::summa::{bcast_matrix, check_tiles};
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_runtime::{BcastAlgorithm, CommError};

/// Parameters of an HSUMMA run.
#[derive(Clone, Copy, Debug)]
pub struct HsummaConfig {
    /// The `I × J` arrangement of groups (`G = I·J`).
    pub groups: GridShape,
    /// Outer (inter-group) block size `B`.
    pub outer_block: usize,
    /// Inner (intra-group) block size `b ≤ B`; must divide `B`.
    pub inner_block: usize,
    /// Broadcast algorithm between groups.
    pub outer_bcast: BcastAlgorithm,
    /// Broadcast algorithm inside groups.
    pub inner_bcast: BcastAlgorithm,
    /// Local multiply kernel.
    pub kernel: GemmKernel,
}

impl HsummaConfig {
    /// A config with both block sizes equal (`b = B`, the setting of all
    /// the paper's experiments) and binomial broadcasts.
    pub fn uniform(groups: GridShape, block: usize) -> Self {
        HsummaConfig {
            groups,
            outer_block: block,
            inner_block: block,
            outer_bcast: BcastAlgorithm::Binomial,
            inner_bcast: BcastAlgorithm::Binomial,
            kernel: GemmKernel::Packed,
        }
    }
}

/// Runs HSUMMA on the calling rank. SPMD over `comm`; operands are
/// block-checkerboard distributed over `grid` exactly as in [`crate::summa::summa`]
/// (HSUMMA "does not change the distribution of the matrices", §VI).
/// Returns the local tile of `C`.
///
/// # Panics
/// Panics on inconsistent configuration: `groups` must divide `grid`,
/// `inner_block` must divide `outer_block`, and `outer_block` must divide
/// both local tile extents (so outer panels never straddle a tile).
pub fn hsumma<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &HsummaConfig,
) -> Result<C::Mat, CommError> {
    let (th, tw) = check_tiles(grid, n, a, b, comm.size());
    let hg = HierGrid::new(grid, cfg.groups);
    let inner = hg.inner();
    let (bb, bs) = (cfg.outer_block, cfg.inner_block);
    assert!(bs > 0 && bb > 0, "block sizes must be positive");
    assert_eq!(bb % bs, 0, "inner block must divide outer block");
    assert_eq!(tw % bb, 0, "outer block must divide the tile width");
    assert_eq!(th % bb, 0, "outer block must divide the tile height");

    let (gi, gj) = grid.coords(comm.rank());
    let (x, y) = hg.group_of(gi, gj);
    let (i, j) = hg.inner_of(gi, gj);

    // Algorithm 1's four communicators.
    let group_row = comm.split(color3(x, i, j), y as i64)?; // P(x,·)(i,j)
    let group_col = comm.split(color3(y, i, j), x as i64)?; // P(·,y)(i,j)
    let row = comm.split(color3(x, y, i), j as i64)?; //       P(x,y)(i,·)
    let col = comm.split(color3(x, y, j), i as i64)?; //       P(x,y)(·,j)

    let mut c = C::Mat::zeros(th, tw);
    // All four panel buffers are allocated once and refilled in place each
    // step: outer-panel holders copy from their tile, inner-broadcast
    // non-roots have theirs overwritten by the broadcast.
    let mut outer_a = C::Mat::zeros(th, bb);
    let mut outer_b = C::Mat::zeros(bb, tw);
    let mut a_in = C::Mat::zeros(th, bs);
    let mut b_in = C::Mat::zeros(bs, tw);
    let outer_steps = n / bb;
    let inner_steps = bb / bs;
    let inner_pairs = th * tw * bs;
    for kg in 0..outer_steps {
        comm.trace_step(kg, bb, bs, || -> Result<(), CommError> {
            // ---- inter-group broadcast of A's outer panel ----------------
            let gcol = pivot_owner(kg, bb, tw); // grid column owning the panel
            let (yk, jk) = (gcol / inner.cols, gcol % inner.cols);
            let holds_a = j == jk; // this rank takes part in the outer A phase
            if holds_a {
                if gj == gcol {
                    a.block_into(0, pivot_offset(kg, bb, tw), &mut outer_a);
                }
                bcast_matrix(&group_row, cfg.outer_bcast, yk, &mut outer_a)?;
            }

            // ---- inter-group broadcast of B's outer panel ----------------
            let grow = pivot_owner(kg, bb, th); // grid row owning the panel
            let (xk, ik) = (grow / inner.rows, grow % inner.rows);
            let holds_b = i == ik;
            if holds_b {
                if gi == grow {
                    b.block_into(pivot_offset(kg, bb, th), 0, &mut outer_b);
                }
                bcast_matrix(&group_col, cfg.outer_bcast, xk, &mut outer_b)?;
            }

            // ---- intra-group SUMMA steps over the outer panel ------------
            for ki in 0..inner_steps {
                if holds_a {
                    outer_a.block_into(0, ki * bs, &mut a_in);
                }
                bcast_matrix(&row, cfg.inner_bcast, jk, &mut a_in)?;

                if holds_b {
                    outer_b.block_into(ki * bs, 0, &mut b_in);
                }
                bcast_matrix(&col, cfg.inner_bcast, ik, &mut b_in)?;

                comm.compute(inner_pairs as f64, 2 * inner_pairs as u64, || {
                    C::Mat::gemm(cfg.kernel, &a_in, &b_in, &mut c)
                });
                comm.maybe_step_sync()?;
            }
            Ok(())
        })?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summa::{summa, SummaConfig};
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::seeded_uniform;

    fn run_hsumma_case(grid: GridShape, n: usize, cfg: HsummaConfig) {
        let a = seeded_uniform(n, n, 300);
        let b = seeded_uniform(n, n, 400);
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma(comm, grid, n, &at, &bt, &cfg).unwrap()
        });
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "grid {grid:?} n={n} cfg={cfg:?}: max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn hsumma_paperlike_grouping_matches_serial() {
        // 4x4 grid, 2x2 groups of 2x2 processors.
        let cfg = HsummaConfig::uniform(GridShape::new(2, 2), 2);
        run_hsumma_case(GridShape::new(4, 4), 16, cfg);
    }

    #[test]
    fn hsumma_single_group_degenerates_to_summa_result() {
        let cfg = HsummaConfig::uniform(GridShape::new(1, 1), 2);
        run_hsumma_case(GridShape::new(4, 4), 16, cfg);
    }

    #[test]
    fn hsumma_all_singleton_groups() {
        let cfg = HsummaConfig::uniform(GridShape::new(4, 4), 2);
        run_hsumma_case(GridShape::new(4, 4), 16, cfg);
    }

    #[test]
    fn hsumma_rectangular_grid_and_groups() {
        let cfg = HsummaConfig::uniform(GridShape::new(1, 2), 2);
        run_hsumma_case(GridShape::new(2, 4), 16, cfg);
        let cfg = HsummaConfig::uniform(GridShape::new(2, 1), 2);
        run_hsumma_case(GridShape::new(4, 2), 16, cfg);
    }

    #[test]
    fn hsumma_distinct_inner_and_outer_blocks() {
        // B = 4, b = 1: 4 inner steps per outer step.
        let cfg = HsummaConfig {
            outer_block: 4,
            inner_block: 1,
            ..HsummaConfig::uniform(GridShape::new(2, 2), 4)
        };
        run_hsumma_case(GridShape::new(4, 4), 16, cfg);
        // B = 4, b = 2.
        let cfg = HsummaConfig {
            outer_block: 4,
            inner_block: 2,
            ..HsummaConfig::uniform(GridShape::new(2, 2), 4)
        };
        run_hsumma_case(GridShape::new(4, 4), 16, cfg);
    }

    #[test]
    fn hsumma_mixed_broadcast_algorithms() {
        let cfg = HsummaConfig {
            outer_bcast: BcastAlgorithm::ScatterAllgather,
            inner_bcast: BcastAlgorithm::Pipelined { segments: 2 },
            ..HsummaConfig::uniform(GridShape::new(2, 2), 2)
        };
        run_hsumma_case(GridShape::new(4, 4), 16, cfg);
    }

    #[test]
    fn hsumma_every_valid_group_count_same_answer() {
        let grid = GridShape::new(4, 4);
        let n = 8;
        let a = seeded_uniform(n, n, 7);
        let b = seeded_uniform(n, n, 8);
        let want = reference_product(&a, &b);
        for (g, groups) in HierGrid::valid_group_counts(grid) {
            let cfg = HsummaConfig::uniform(groups, 2);
            let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
                hsumma(comm, grid, n, &at, &bt, &cfg).unwrap()
            });
            assert!(got.approx_eq(&want, 1e-9), "G={g} ({groups:?}) diverged");
        }
    }

    #[test]
    fn hsumma_g1_sends_same_message_count_as_summa() {
        // With G=1 and b=B the communication schedule must be exactly
        // SUMMA's: compare total messages sent.
        let grid = GridShape::new(2, 2);
        let n = 8;
        let a = seeded_uniform(n, n, 1);
        let b = seeded_uniform(n, n, 2);
        let dist = hsumma_matrix::BlockDist::new(grid, n, n);
        let at = dist.scatter(&a);
        let bt = dist.scatter(&b);

        let count = |hier: bool| -> u64 {
            let stats = hsumma_runtime::Runtime::run(grid.size(), |comm| {
                let a_tile = at[comm.rank()].clone();
                let b_tile = bt[comm.rank()].clone();
                // Build all communicators first, then measure only the
                // multiply itself.
                comm.reset_stats();
                let before = comm.stats().msgs_sent;
                if hier {
                    let cfg = HsummaConfig::uniform(GridShape::new(1, 1), 2);
                    let _ = hsumma(comm, grid, n, &a_tile, &b_tile, &cfg).unwrap();
                } else {
                    let cfg = SummaConfig {
                        block: 2,
                        ..Default::default()
                    };
                    let _ = summa(comm, grid, n, &a_tile, &b_tile, &cfg).unwrap();
                }
                comm.stats().msgs_sent - before
            });
            stats.iter().sum()
        };
        // Both runs include their split traffic; splits are 4 for HSUMMA
        // vs 2 for SUMMA, but the two extra communicators are singletons
        // and split cost is deterministic. Compare multiply-phase traffic
        // by subtracting the split-only baseline measured separately.
        let summa_msgs = count(false);
        let hsumma_msgs = count(true);
        // HSUMMA's two extra splits cost a fixed number of messages; the
        // broadcast traffic itself must be identical. Split of p ranks
        // costs (p-1) gathers + binomial bcast messages; with p=4 that is
        // 3 + 3 = 6 per split, and group comms are singletons afterwards.
        assert_eq!(hsumma_msgs, summa_msgs + 2 * 6);
    }

    #[test]
    #[should_panic(expected = "inner block must divide outer block")]
    fn hsumma_rejects_non_dividing_inner_block() {
        let cfg = HsummaConfig {
            outer_block: 4,
            inner_block: 3,
            ..HsummaConfig::uniform(GridShape::new(2, 2), 4)
        };
        run_hsumma_case(GridShape::new(4, 4), 16, cfg);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn hsumma_rejects_groups_not_dividing_grid() {
        let cfg = HsummaConfig::uniform(GridShape::new(3, 3), 2);
        run_hsumma_case(GridShape::new(4, 4), 16, cfg);
    }
}
