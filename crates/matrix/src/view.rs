//! Borrowed, possibly strided matrix views.
//!
//! A [`MatrixView`] lets callers multiply *sub*matrices without copying
//! them out first: the view borrows the parent's buffer with a row
//! stride. Rows remain contiguous, so the cache-blocked GEMM kernel
//! applies unchanged.

use crate::dense::Matrix;

/// An immutable view of an `rows × cols` region whose consecutive rows
/// are `stride` elements apart in the underlying buffer.
#[derive(Clone, Copy)]
pub struct MatrixView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a> MatrixView<'a> {
    /// Wraps a raw buffer. `data` must hold at least
    /// `(rows-1)*stride + cols` elements.
    ///
    /// # Panics
    /// Panics if the buffer is too short or `stride < cols`.
    pub fn new(data: &'a [f64], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride >= cols, "row stride must cover the row");
        if rows > 0 {
            assert!(
                data.len() >= (rows - 1) * stride + cols,
                "buffer too short for the view"
            );
        }
        MatrixView {
            data,
            rows,
            cols,
            stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j]
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// A sub-view of this view.
    ///
    /// # Panics
    /// Panics if the region exceeds the view.
    pub fn subview(&self, r0: usize, c0: usize, h: usize, w: usize) -> MatrixView<'a> {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "subview out of bounds"
        );
        MatrixView {
            data: &self.data[r0 * self.stride + c0..],
            rows: h,
            cols: w,
            stride: self.stride,
        }
    }

    /// Copies the view into an owned matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }
}

impl Matrix {
    /// A view of the whole matrix.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::new(self.as_slice(), self.rows(), self.cols(), self.cols())
    }

    /// A zero-copy view of the `h × w` block at `(r0, c0)` — the borrow
    /// counterpart of [`Matrix::block`].
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn block_view(&self, r0: usize, c0: usize, h: usize, w: usize) -> MatrixView<'_> {
        self.view().subview(r0, c0, h, w)
    }
}

/// `c += a · b` over views: the blocked `i k j` kernel on possibly
/// strided operands. `c` must be an owned matrix (it is written densely).
///
/// # Panics
/// Panics on non-conformant shapes.
pub fn gemm_view(a: &MatrixView<'_>, b: &MatrixView<'_>, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(a.rows(), c.rows(), "C row count must match A");
    assert_eq!(b.cols(), c.cols(), "C column count must match B");
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    const TILE: usize = 64;
    for i in 0..m {
        let c_row = c.row_mut(i);
        for l0 in (0..k).step_by(TILE) {
            let l1 = (l0 + TILE).min(k);
            let a_row = a.row(i);
            for (l, &aval) in a_row.iter().enumerate().take(l1).skip(l0) {
                if aval == 0.0 {
                    continue;
                }
                for (cj, bv) in c_row[..n].iter_mut().zip(b.row(l)) {
                    *cj += aval * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, GemmKernel};
    use crate::generate::seeded_uniform;
    use proptest::prelude::*;

    #[test]
    fn whole_matrix_view_reads_every_element() {
        let m = seeded_uniform(5, 7, 3);
        let v = m.view();
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(v.get(i, j), m.get(i, j));
            }
        }
    }

    #[test]
    fn block_view_matches_copied_block() {
        let m = seeded_uniform(8, 8, 4);
        let v = m.block_view(2, 3, 4, 5);
        assert_eq!(v.to_matrix(), m.block(2, 3, 4, 5));
    }

    #[test]
    fn nested_subviews_compose() {
        let m = seeded_uniform(10, 10, 5);
        let outer = m.block_view(1, 1, 8, 8);
        let inner = outer.subview(2, 3, 4, 4);
        assert_eq!(inner.to_matrix(), m.block(3, 4, 4, 4));
    }

    #[test]
    #[should_panic(expected = "subview out of bounds")]
    fn oversized_subview_panics() {
        let m = Matrix::zeros(4, 4);
        let _ = m.block_view(2, 2, 3, 3);
    }

    #[test]
    fn gemm_view_on_whole_matrices_matches_gemm() {
        let a = seeded_uniform(6, 7, 10);
        let b = seeded_uniform(7, 5, 11);
        let mut want = Matrix::zeros(6, 5);
        gemm(GemmKernel::Naive, &a, &b, &mut want);
        let mut got = Matrix::zeros(6, 5);
        gemm_view(&a.view(), &b.view(), &mut got);
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn gemm_view_accumulates() {
        let a = Matrix::identity(3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 2.0);
        gemm_view(&a.view(), &a.view(), &mut c);
        assert_eq!(c.get(0, 0), 3.0);
        assert_eq!(c.get(0, 1), 2.0);
    }

    proptest! {
        #[test]
        fn gemm_on_views_equals_gemm_on_copies(
            m in 1usize..10, k in 1usize..10, n in 1usize..10,
            ro in 0usize..4, co in 0usize..4, seed in 0u64..500,
        ) {
            // Build padded parents and compare multiplying the embedded
            // blocks via views vs via copies.
            let pa = seeded_uniform(m + ro + 2, k + co + 2, seed);
            let pb = seeded_uniform(k + ro + 2, n + co + 2, seed.wrapping_add(1));
            let av = pa.block_view(ro, co, m, k);
            let bv = pb.block_view(ro, co, k, n);

            let mut via_views = Matrix::zeros(m, n);
            gemm_view(&av, &bv, &mut via_views);

            let mut via_copies = Matrix::zeros(m, n);
            gemm(
                GemmKernel::Blocked,
                &pa.block(ro, co, m, k),
                &pb.block(ro, co, k, n),
                &mut via_copies,
            );
            prop_assert!(via_views.approx_eq(&via_copies, 1e-10));
        }
    }
}
