//! Matrix generators for tests, examples and benchmarks.

use crate::dense::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random matrix in `[-1, 1)` from a caller-supplied RNG.
pub fn random_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Uniform random matrix in `[-1, 1)` from a fixed seed — reproducible
/// across runs and platforms, which the integration tests rely on.
pub fn seeded_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    random_uniform(rows, cols, &mut rng)
}

/// A deterministic, human-checkable pattern: `a_ij = i + j/1000`.
///
/// Useful when a test failure needs to point at *which* block was
/// misrouted, since every element encodes its global coordinates.
pub fn deterministic(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| i as f64 + j as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_uniform_is_reproducible() {
        let a = seeded_uniform(8, 8, 123);
        let b = seeded_uniform(8, 8, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = seeded_uniform(8, 8, 1);
        let b = seeded_uniform(8, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_values_in_range() {
        let m = seeded_uniform(16, 16, 7);
        assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn deterministic_encodes_coordinates() {
        let m = deterministic(4, 4);
        assert_eq!(m.get(2, 3), 2.003);
        assert_eq!(m.get(0, 0), 0.0);
    }
}
