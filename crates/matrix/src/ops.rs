//! Operator sugar for [`Matrix`]: `+`, `-`, `*` (matrix product and
//! scalar scaling). Convenience for examples and tests; the distributed
//! algorithms use the explicit [`mod@crate::gemm`] entry points.

use crate::dense::Matrix;
use crate::gemm::{gemm, GemmKernel};
use std::ops::{Add, Mul, Neg, Sub};

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in +");
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in -");
        Matrix::from_fn(self.rows(), self.cols(), |i, j| {
            self.get(i, j) - rhs.get(i, j)
        })
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        let mut out = self.clone();
        out.scale(-1.0);
        out
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    /// Matrix product via the default (packed) kernel.
    fn mul(self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), rhs.cols());
        gemm(GemmKernel::default(), self, rhs, &mut out);
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(s);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::seeded_uniform;

    #[test]
    fn add_then_sub_roundtrips() {
        let a = seeded_uniform(4, 4, 1);
        let b = seeded_uniform(4, 4, 2);
        let sum = &a + &b;
        let back = &sum - &b;
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn product_against_identity() {
        let a = seeded_uniform(5, 5, 3);
        let id = Matrix::identity(5);
        assert!((&a * &id).approx_eq(&a, 1e-12));
        assert!((&id * &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn product_is_associative_within_tolerance() {
        let a = seeded_uniform(4, 4, 4);
        let b = seeded_uniform(4, 4, 5);
        let c = seeded_uniform(4, 4, 6);
        let left = &(&a * &b) * &c;
        let right = &a * &(&b * &c);
        assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn scalar_scaling_distributes() {
        let a = seeded_uniform(3, 3, 7);
        let b = seeded_uniform(3, 3, 8);
        let lhs = &(&a + &b) * 2.0;
        let rhs = &(&a * 2.0) + &(&b * 2.0);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn negation_cancels_addition() {
        let a = seeded_uniform(3, 3, 9);
        let zero = &a + &(-&a);
        assert!(zero.approx_eq(&Matrix::zeros(3, 3), 1e-12));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_mismatched_shapes() {
        let _ = &Matrix::zeros(2, 3) + &Matrix::zeros(3, 2);
    }
}
