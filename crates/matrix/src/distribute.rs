//! Two-dimensional data distributions over a processor grid.
//!
//! SUMMA and HSUMMA distribute the operand matrices over an `s × t`
//! grid of processors by *block-checkerboard* distribution: processor
//! `(i, j)` owns the contiguous `m/s × n/t` tile whose top-left corner is
//! `(i·m/s, j·n/t)` ([`BlockDist`]). The paper's future-work extension,
//! *block-cyclic* distribution, deals blocks of a fixed size round-robin
//! over the grid ([`BlockCyclicDist`]).
//!
//! Both are special cases of "each rank owns one rectangular sub-block of
//! the global": [`BlockRange`] is that primitive — a half-open rectangle
//! with extract/place against a global [`Matrix`] — and is what the
//! grid-free `Distribution` descriptors in the core crate are built from.
//!
//! Ranks are ordered row-major over the grid: `rank = i·t + j`.

use crate::dense::Matrix;

/// A half-open rectangular block `[row0, row1) × [col0, col1)` of some
/// global matrix: the unit of ownership in grid-free distributions.
///
/// Empty ranges (zero rows or columns) are legal and describe ranks that
/// own no part of the operand — e.g. idle ranks of a brick decomposition
/// whose processor count doesn't factor evenly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRange {
    /// First owned row.
    pub row0: usize,
    /// One past the last owned row.
    pub row1: usize,
    /// First owned column.
    pub col0: usize,
    /// One past the last owned column.
    pub col1: usize,
}

impl BlockRange {
    /// Creates a range; panics if either interval is inverted.
    pub fn new(row0: usize, row1: usize, col0: usize, col1: usize) -> Self {
        assert!(row0 <= row1, "inverted row range {row0}..{row1}");
        assert!(col0 <= col1, "inverted col range {col0}..{col1}");
        BlockRange {
            row0,
            row1,
            col0,
            col1,
        }
    }

    /// The empty range at the origin.
    pub fn empty() -> Self {
        BlockRange::new(0, 0, 0, 0)
    }

    /// Owned row count.
    pub fn rows(&self) -> usize {
        self.row1 - self.row0
    }

    /// Owned column count.
    pub fn cols(&self) -> usize {
        self.col1 - self.col0
    }

    /// Owned element count.
    pub fn elems(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Whether the range owns nothing.
    pub fn is_empty(&self) -> bool {
        self.elems() == 0
    }

    /// The intersection with `other`, or `None` if they are disjoint.
    pub fn intersect(&self, other: &BlockRange) -> Option<BlockRange> {
        let r0 = self.row0.max(other.row0);
        let r1 = self.row1.min(other.row1);
        let c0 = self.col0.max(other.col0);
        let c1 = self.col1.min(other.col1);
        (r0 < r1 && c0 < c1).then(|| BlockRange::new(r0, r1, c0, c1))
    }

    /// Extracts this block from the global matrix as a fresh local tile.
    ///
    /// # Panics
    /// Panics if the range reaches outside `global`.
    pub fn extract(&self, global: &Matrix) -> Matrix {
        assert!(
            self.row1 <= global.rows() && self.col1 <= global.cols(),
            "range {self:?} outside global {:?}",
            global.shape()
        );
        global.block(self.row0, self.col0, self.rows(), self.cols())
    }

    /// Places a local tile of this range's shape back into the global.
    ///
    /// # Panics
    /// Panics on a shape mismatch or if the range reaches outside `global`.
    pub fn place(&self, global: &mut Matrix, tile: &Matrix) {
        assert_eq!(
            tile.shape(),
            (self.rows(), self.cols()),
            "tile shape does not match range {self:?}"
        );
        if !self.is_empty() {
            global.set_block(self.row0, self.col0, tile);
        }
    }
}

/// An `s × t` arrangement of `p = s·t` processors, row-major rank order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridShape {
    /// Grid rows (`s` in the paper).
    pub rows: usize,
    /// Grid columns (`t` in the paper).
    pub cols: usize,
}

impl GridShape {
    /// Creates a grid; panics if either extent is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid extents must be positive");
        GridShape { rows, cols }
    }

    /// A square `√p × √p` grid.
    ///
    /// # Panics
    /// Panics if `p` is not a perfect square.
    pub fn square(p: usize) -> Self {
        let side = (p as f64).sqrt().round() as usize;
        assert_eq!(side * side, p, "{p} is not a perfect square");
        GridShape::new(side, side)
    }

    /// Total processor count `p = s·t`.
    #[inline]
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// Grid coordinates of `rank`.
    #[inline]
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at grid coordinates `(i, j)`.
    #[inline]
    pub fn rank(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols);
        i * self.cols + j
    }
}

/// Block-checkerboard distribution of an `m × n` matrix over a grid.
///
/// Requires the matrix extents to be divisible by the grid extents, the
/// same simplifying assumption the paper makes (`n` a multiple of `b`,
/// blocks evenly dividing the grid).
#[derive(Clone, Copy, Debug)]
pub struct BlockDist {
    grid: GridShape,
    mat_rows: usize,
    mat_cols: usize,
}

impl BlockDist {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics if `mat_rows % grid.rows != 0` or `mat_cols % grid.cols != 0`.
    pub fn new(grid: GridShape, mat_rows: usize, mat_cols: usize) -> Self {
        assert_eq!(
            mat_rows % grid.rows,
            0,
            "matrix rows {mat_rows} not divisible by grid rows {}",
            grid.rows
        );
        assert_eq!(
            mat_cols % grid.cols,
            0,
            "matrix cols {mat_cols} not divisible by grid cols {}",
            grid.cols
        );
        BlockDist {
            grid,
            mat_rows,
            mat_cols,
        }
    }

    /// The processor grid.
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// Local tile extents: `(m/s, n/t)`.
    pub fn tile_shape(&self) -> (usize, usize) {
        (
            self.mat_rows / self.grid.rows,
            self.mat_cols / self.grid.cols,
        )
    }

    /// Top-left global coordinate of `rank`'s tile.
    pub fn tile_origin(&self, rank: usize) -> (usize, usize) {
        let (i, j) = self.grid.coords(rank);
        let (th, tw) = self.tile_shape();
        (i * th, j * tw)
    }

    /// `rank`'s owned block as a [`BlockRange`].
    pub fn tile_range(&self, rank: usize) -> BlockRange {
        let (r0, c0) = self.tile_origin(rank);
        let (th, tw) = self.tile_shape();
        BlockRange::new(r0, r0 + th, c0, c0 + tw)
    }

    /// Extracts `rank`'s local tile from the global matrix.
    pub fn local_tile(&self, global: &Matrix, rank: usize) -> Matrix {
        assert_eq!(global.shape(), (self.mat_rows, self.mat_cols));
        self.tile_range(rank).extract(global)
    }

    /// Splits the global matrix into per-rank tiles, indexed by rank.
    pub fn scatter(&self, global: &Matrix) -> Vec<Matrix> {
        (0..self.grid.size())
            .map(|r| self.local_tile(global, r))
            .collect()
    }

    /// Reassembles the global matrix from per-rank tiles.
    ///
    /// # Panics
    /// Panics if the number or shapes of tiles don't match the distribution.
    pub fn gather(&self, tiles: &[Matrix]) -> Matrix {
        assert_eq!(tiles.len(), self.grid.size(), "wrong number of tiles");
        let (th, tw) = self.tile_shape();
        let mut global = Matrix::zeros(self.mat_rows, self.mat_cols);
        for (rank, tile) in tiles.iter().enumerate() {
            assert_eq!(tile.shape(), (th, tw), "tile {rank} has wrong shape");
            self.tile_range(rank).place(&mut global, tile);
        }
        global
    }

    /// Which grid *column* owns global matrix columns `[k·b, (k+1)·b)` —
    /// i.e. which processors hold the `k`-th pivot column panel of `A`.
    pub fn owner_grid_col(&self, k: usize, b: usize) -> usize {
        let (_, tw) = self.tile_shape();
        debug_assert_eq!(
            (k * b) / tw,
            (k * b + b - 1) / tw,
            "panel must not straddle a tile boundary"
        );
        (k * b) / tw
    }

    /// Which grid *row* owns global matrix rows `[k·b, (k+1)·b)` — i.e.
    /// which processors hold the `k`-th pivot row panel of `B`.
    pub fn owner_grid_row(&self, k: usize, b: usize) -> usize {
        let (th, _) = self.tile_shape();
        debug_assert_eq!((k * b) / th, (k * b + b - 1) / th);
        (k * b) / th
    }

    /// Column offset of panel `k` (width `b`) inside the owning tile.
    pub fn panel_col_offset(&self, k: usize, b: usize) -> usize {
        let (_, tw) = self.tile_shape();
        (k * b) % tw
    }

    /// Row offset of panel `k` (height `b`) inside the owning tile.
    pub fn panel_row_offset(&self, k: usize, b: usize) -> usize {
        let (th, _) = self.tile_shape();
        (k * b) % th
    }
}

/// Block-cyclic distribution with square dealing blocks of edge `nb`.
///
/// Block `(bi, bj)` of the global matrix goes to grid position
/// `(bi mod s, bj mod t)`; the local tile stores its blocks contiguously in
/// block-row-major order, which is the ScaLAPACK convention.
#[derive(Clone, Copy, Debug)]
pub struct BlockCyclicDist {
    grid: GridShape,
    mat_rows: usize,
    mat_cols: usize,
    nb: usize,
}

impl BlockCyclicDist {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics unless `nb` divides both matrix extents and the block grid is
    /// divisible by the processor grid (uniform local tiles keep the
    /// algorithms simple, matching the paper's assumptions).
    pub fn new(grid: GridShape, mat_rows: usize, mat_cols: usize, nb: usize) -> Self {
        assert!(nb > 0, "dealing block must be positive");
        assert_eq!(mat_rows % nb, 0, "rows not divisible by dealing block");
        assert_eq!(mat_cols % nb, 0, "cols not divisible by dealing block");
        let brows = mat_rows / nb;
        let bcols = mat_cols / nb;
        assert_eq!(
            brows % grid.rows,
            0,
            "block rows not divisible by grid rows"
        );
        assert_eq!(
            bcols % grid.cols,
            0,
            "block cols not divisible by grid cols"
        );
        BlockCyclicDist {
            grid,
            mat_rows,
            mat_cols,
            nb,
        }
    }

    /// The processor grid.
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// Dealing block edge.
    pub fn block_size(&self) -> usize {
        self.nb
    }

    /// Local tile extents (every rank holds the same amount).
    pub fn tile_shape(&self) -> (usize, usize) {
        (
            self.mat_rows / self.grid.rows,
            self.mat_cols / self.grid.cols,
        )
    }

    /// Owning rank of global dealing block `(bi, bj)`.
    pub fn block_owner(&self, bi: usize, bj: usize) -> usize {
        self.grid.rank(bi % self.grid.rows, bj % self.grid.cols)
    }

    /// Local block coordinates of global block `(bi, bj)` inside its owner.
    pub fn local_block(&self, bi: usize, bj: usize) -> (usize, usize) {
        (bi / self.grid.rows, bj / self.grid.cols)
    }

    /// Splits the global matrix into per-rank local tiles.
    pub fn scatter(&self, global: &Matrix) -> Vec<Matrix> {
        assert_eq!(global.shape(), (self.mat_rows, self.mat_cols));
        let (th, tw) = self.tile_shape();
        let mut tiles = vec![Matrix::zeros(th, tw); self.grid.size()];
        self.for_each_block(|bi, bj| {
            let owner = self.block_owner(bi, bj);
            let (li, lj) = self.local_block(bi, bj);
            let blk = global.block(bi * self.nb, bj * self.nb, self.nb, self.nb);
            tiles[owner].set_block(li * self.nb, lj * self.nb, &blk);
        });
        tiles
    }

    /// Reassembles the global matrix from per-rank local tiles.
    pub fn gather(&self, tiles: &[Matrix]) -> Matrix {
        assert_eq!(tiles.len(), self.grid.size(), "wrong number of tiles");
        let mut global = Matrix::zeros(self.mat_rows, self.mat_cols);
        self.for_each_block(|bi, bj| {
            let owner = self.block_owner(bi, bj);
            let (li, lj) = self.local_block(bi, bj);
            let blk = tiles[owner].block(li * self.nb, lj * self.nb, self.nb, self.nb);
            global.set_block(bi * self.nb, bj * self.nb, &blk);
        });
        global
    }

    fn for_each_block(&self, mut f: impl FnMut(usize, usize)) {
        for bi in 0..self.mat_rows / self.nb {
            for bj in 0..self.mat_cols / self.nb {
                f(bi, bj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{deterministic, seeded_uniform};
    use proptest::prelude::*;

    #[test]
    fn grid_coords_roundtrip() {
        let g = GridShape::new(3, 4);
        for rank in 0..g.size() {
            let (i, j) = g.coords(rank);
            assert_eq!(g.rank(i, j), rank);
        }
    }

    #[test]
    fn square_grid_from_perfect_square() {
        assert_eq!(GridShape::square(16), GridShape::new(4, 4));
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn square_grid_rejects_non_square() {
        let _ = GridShape::square(12);
    }

    #[test]
    fn block_scatter_gather_roundtrip() {
        let g = GridShape::new(2, 3);
        let dist = BlockDist::new(g, 4, 6);
        let m = deterministic(4, 6);
        let tiles = dist.scatter(&m);
        assert_eq!(tiles.len(), 6);
        assert_eq!(tiles[0].shape(), (2, 2));
        assert_eq!(dist.gather(&tiles), m);
    }

    #[test]
    fn tile_contents_match_origin() {
        let g = GridShape::new(2, 2);
        let dist = BlockDist::new(g, 4, 4);
        let m = deterministic(4, 4);
        // Rank 3 = grid (1,1) owns rows 2..4, cols 2..4.
        let tile = dist.local_tile(&m, 3);
        assert_eq!(tile.get(0, 0), m.get(2, 2));
        assert_eq!(tile.get(1, 1), m.get(3, 3));
    }

    #[test]
    fn owner_of_pivot_panels() {
        // 8x8 matrix on 2x2 grid: tiles are 4x4. With b = 2 there are 4
        // panels; panels 0,1 live in grid column 0, panels 2,3 in column 1.
        let dist = BlockDist::new(GridShape::new(2, 2), 8, 8);
        assert_eq!(dist.owner_grid_col(0, 2), 0);
        assert_eq!(dist.owner_grid_col(1, 2), 0);
        assert_eq!(dist.owner_grid_col(2, 2), 1);
        assert_eq!(dist.owner_grid_col(3, 2), 1);
        assert_eq!(dist.panel_col_offset(1, 2), 2);
        assert_eq!(dist.panel_col_offset(2, 2), 0);
        assert_eq!(dist.owner_grid_row(3, 2), 1);
        assert_eq!(dist.panel_row_offset(3, 2), 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn block_dist_requires_divisibility() {
        let _ = BlockDist::new(GridShape::new(3, 3), 8, 9);
    }

    #[test]
    fn cyclic_scatter_gather_roundtrip() {
        let g = GridShape::new(2, 2);
        let dist = BlockCyclicDist::new(g, 8, 8, 2);
        let m = seeded_uniform(8, 8, 11);
        let tiles = dist.scatter(&m);
        assert_eq!(dist.gather(&tiles), m);
    }

    #[test]
    fn cyclic_block_ownership_wraps() {
        let g = GridShape::new(2, 2);
        let dist = BlockCyclicDist::new(g, 8, 8, 2);
        // Blocks (0,0) and (2,2) both belong to rank 0; (1,1) to rank 3.
        assert_eq!(dist.block_owner(0, 0), 0);
        assert_eq!(dist.block_owner(2, 2), 0);
        assert_eq!(dist.block_owner(1, 1), 3);
        assert_eq!(dist.local_block(2, 2), (1, 1));
    }

    #[test]
    fn cyclic_differs_from_block_for_nontrivial_sizes() {
        let g = GridShape::new(2, 2);
        let m = deterministic(8, 8);
        let block = BlockDist::new(g, 8, 8).scatter(&m);
        let cyclic = BlockCyclicDist::new(g, 8, 8, 2).scatter(&m);
        assert_ne!(block[0], cyclic[0]);
    }

    proptest! {
        #[test]
        fn block_roundtrip_any_grid(
            s in 1usize..5, t in 1usize..5, th in 1usize..5, tw in 1usize..5, seed in 0u64..100
        ) {
            let g = GridShape::new(s, t);
            let dist = BlockDist::new(g, s * th, t * tw);
            let m = seeded_uniform(s * th, t * tw, seed);
            prop_assert_eq!(dist.gather(&dist.scatter(&m)), m);
        }

        #[test]
        fn cyclic_roundtrip_any_grid(
            s in 1usize..4, t in 1usize..4, bl in 1usize..4, reps in 1usize..4, seed in 0u64..100
        ) {
            let g = GridShape::new(s, t);
            let rows = s * reps * bl;
            let cols = t * reps * bl;
            let dist = BlockCyclicDist::new(g, rows, cols, bl);
            let m = seeded_uniform(rows, cols, seed);
            prop_assert_eq!(dist.gather(&dist.scatter(&m)), m);
        }
    }

    #[test]
    fn block_range_extract_place_roundtrip() {
        let m = seeded_uniform(7, 9, 3);
        let r = BlockRange::new(2, 5, 4, 9);
        assert_eq!((r.rows(), r.cols(), r.elems()), (3, 5, 15));
        let tile = r.extract(&m);
        assert_eq!(tile, m.block(2, 4, 3, 5));
        let mut out = Matrix::zeros(7, 9);
        r.place(&mut out, &tile);
        assert_eq!(out.block(2, 4, 3, 5), tile);
        assert_eq!(out.get(0, 0), 0.0);
    }

    #[test]
    fn block_range_intersection() {
        let a = BlockRange::new(0, 4, 0, 4);
        let b = BlockRange::new(2, 6, 3, 8);
        assert_eq!(a.intersect(&b), Some(BlockRange::new(2, 4, 3, 4)));
        let far = BlockRange::new(4, 6, 0, 4);
        assert_eq!(a.intersect(&far), None);
        assert!(BlockRange::empty().is_empty());
        assert_eq!(a.intersect(&BlockRange::empty()), None);
    }

    #[test]
    fn block_dist_tile_range_matches_origin_and_shape() {
        let dist = BlockDist::new(GridShape::new(2, 3), 10, 9);
        for rank in 0..6 {
            let r = dist.tile_range(rank);
            assert_eq!((r.row0, r.col0), dist.tile_origin(rank));
            assert_eq!((r.rows(), r.cols()), dist.tile_shape());
        }
    }
}
