//! Local matrix-multiply kernels: `C += A · B`.
//!
//! The distributed algorithms in `hsumma-core` treat the local multiply as a
//! black box, exactly as the paper treats ESSL/MKL `DGEMM`. Four kernels are
//! provided:
//!
//! | kernel | strategy | role |
//! |---|---|---|
//! | [`GemmKernel::Naive`] | textbook `i j k` triple loop | correctness oracle |
//! | [`GemmKernel::Blocked`] | cache-tiled `i k j` loop order | simple cache-aware baseline |
//! | [`GemmKernel::Parallel`] | `Blocked` with row stripes fanned out to threads | multi-core baseline |
//! | [`GemmKernel::Packed`] | three-level blocked (`MC/KC/NC`) BLIS-style driver over packed micro-panels and a register-blocked `MR×NR` microkernel, parallel over `MC` row blocks | default; the stand-in for a tuned vendor DGEMM |
//!
//! `Packed` follows the Goto/BLIS decomposition: `B` blocks are packed into
//! row-major micro-panels of [`NR`] columns (streamed from L1 by the
//! microkernel), `A` blocks into column-major micro-panels of [`MR`] rows
//! (resident in L2), and the microkernel keeps an `MR×NR` accumulator block
//! in registers while marching down the shared `KC` dimension. Packing
//! scratch lives in thread-local buffers, so a long-lived rank thread that
//! calls `gemm` once per SUMMA pivot step allocates on the first step only.
//! Cache-block sizes are runtime-selected (see [`PackedParams`]).
//!
//! All kernels *accumulate* (`C += A·B`), which is the operation SUMMA's
//! inner step needs (`c_ij = c_ij + a_ik · b_kj`).

use crate::dense::Matrix;
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::OnceLock;

/// Tile edge used by the `Blocked`/`Parallel` kernels. 64 `f64`s = 512
/// bytes per row segment, so a 64×64 tile (32 KiB) of each operand fits
/// comfortably in L1/L2.
const TILE: usize = 64;

/// Microkernel register-block height: rows of `C` updated per microkernel
/// call. With [`NR`]` = 16`, the 4×16 accumulator block is 8 AVX-512 (or
/// 16 AVX2) vectors — eight independent FMA chains, enough to hide FMA
/// latency — while each k-step issues only 4 scalar `A` broadcasts per
/// two `B` vector loads. Wider/taller blocks (8×16, 4×24, 6×16) were
/// measured slower here: LLVM spills the accumulator array once it
/// cannot keep every row in architectural registers.
pub const MR: usize = 4;

/// Microkernel register-block width: columns of `C` updated per call.
/// Sixteen doubles = two AVX-512 or four AVX2 vectors, the widest unit
/// LLVM autovectorizes the inner loop to without spilling.
pub const NR: usize = 16;

/// Which local multiply implementation to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GemmKernel {
    /// Reference triple loop (`i j k`); slow but obviously correct.
    Naive,
    /// Cache-tiled sequential kernel.
    Blocked,
    /// Cache-tiled kernel parallelized over row tiles.
    Parallel,
    /// Packed three-level cache-blocked kernel with a register-blocked
    /// microkernel — the fastest kernel and the workspace default.
    #[default]
    Packed,
}

/// Cache-blocking parameters of the packed kernel: `C` is computed in
/// `MC×NC` macro-tiles accumulated over `KC`-deep slices.
///
/// Defaults target a generic ~32 KiB L1d / ~1 MiB L2 core:
/// an `MC×KC` packed `A` block (64·256 doubles = 128 KiB) stays L2-resident
/// while one `KC×NR` packed `B` micro-panel (32 KiB) streams through L1;
/// the values were picked by a sweep on the development machine
/// (`KC ∈ [128, 512]`, `MC ∈ [64, 256]` — flat within ~10%, peak at
/// `64/256`). Retune via the environment without recompiling:
/// `HSUMMA_GEMM_MC`, `HSUMMA_GEMM_KC`, `HSUMMA_GEMM_NC` (values are
/// rounded up to the nearest micro-panel multiple).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedParams {
    /// Rows of `C` per macro-block (`A` block height); L2 budget.
    pub mc: usize,
    /// Shared dimension per slice (packed panel depth); L1/L2 budget.
    pub kc: usize,
    /// Columns of `C` per macro-block (`B` block width); L3 budget.
    pub nc: usize,
}

impl Default for PackedParams {
    fn default() -> Self {
        PackedParams {
            mc: 64,
            kc: 256,
            nc: 4096,
        }
    }
}

impl PackedParams {
    /// The process-wide parameters: defaults overridden by the
    /// `HSUMMA_GEMM_{MC,KC,NC}` environment variables, resolved once.
    pub fn get() -> &'static PackedParams {
        static PARAMS: OnceLock<PackedParams> = OnceLock::new();
        PARAMS.get_or_init(|| {
            let read = |name: &str, default: usize| -> usize {
                std::env::var(name)
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or(default)
            };
            let d = PackedParams::default();
            PackedParams {
                mc: read("HSUMMA_GEMM_MC", d.mc).next_multiple_of(MR),
                kc: read("HSUMMA_GEMM_KC", d.kc),
                nc: read("HSUMMA_GEMM_NC", d.nc).next_multiple_of(NR),
            }
        })
    }
}

/// `c += a · b` using the selected kernel.
///
/// ```
/// use hsumma_matrix::{gemm, GemmKernel, Matrix};
///
/// let a = Matrix::identity(3);
/// let b = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
/// let mut c = Matrix::zeros(3, 3);
/// gemm(GemmKernel::Packed, &a, &b, &mut c);
/// assert!(c.approx_eq(&b, 1e-12));
/// ```
///
/// # Panics
/// Panics if the shapes are not conformant: `a` is `m × k`, `b` is `k × n`,
/// `c` is `m × n`.
pub fn gemm(kernel: GemmKernel, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    gemm_scaled(kernel, 1.0, a, b, c);
}

/// `c += alpha · a · b` — the scaled accumulate (`alpha = -1` gives the
/// trailing-update subtraction block LU needs).
///
/// # Panics
/// Panics on non-conformant shapes (see [`gemm`]).
pub fn gemm_scaled(kernel: GemmKernel, alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(a.rows(), c.rows(), "C row count must match A");
    assert_eq!(b.cols(), c.cols(), "C column count must match B");
    match kernel {
        GemmKernel::Naive => gemm_naive(alpha, a, b, c),
        GemmKernel::Blocked => gemm_blocked(alpha, a, b, c),
        GemmKernel::Parallel => gemm_parallel(alpha, a, b, c),
        GemmKernel::Packed => gemm_packed(alpha, a, b, c),
    }
}

/// Number of floating-point operations a `m×k · k×n` multiply-accumulate
/// performs, counting one addition and one multiplication per update (the
/// paper's `γ` is the time for such a combined flop pair, §IV).
pub fn flop_pairs(m: usize, k: usize, n: usize) -> u64 {
    m as u64 * k as u64 * n as u64
}

fn gemm_naive(alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a.get(i, l) * b.get(l, j);
            }
            let cur = c.get(i, j);
            c.set(i, j, cur + alpha * acc);
        }
    }
}

/// Multiplies the row stripe `rows` of `a` into the matching stripe of `c`.
///
/// Inner loop order is `i k j`: for each `a[i][l]` we stream row `l` of `b`
/// against row `i` of `c`, which is unit-stride for both and lets LLVM
/// vectorize the update.
fn gemm_rows(alpha: f64, a: &Matrix, b: &Matrix, c_rows: &mut [f64], rows: std::ops::Range<usize>) {
    let k = a.cols();
    let n = b.cols();
    for (ci, i) in rows.enumerate() {
        let c_row = &mut c_rows[ci * n..(ci + 1) * n];
        for l0 in (0..k).step_by(TILE) {
            let l1 = (l0 + TILE).min(k);
            for l in l0..l1 {
                let aval = alpha * a.get(i, l);
                if aval == 0.0 {
                    continue;
                }
                let b_row = b.row(l);
                for (cj, bv) in c_row.iter_mut().zip(b_row) {
                    *cj += aval * bv;
                }
            }
        }
    }
}

fn gemm_blocked(alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let m = a.rows();
    let n = b.cols();
    gemm_rows(alpha, a, b, &mut c.as_mut_slice()[..m * n], 0..m);
}

fn gemm_parallel(alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    let threads = rayon::current_num_threads();
    // The fork/join is only worth paying when there is more than one row
    // stripe to hand out AND every worker gets a meaningful share of the
    // arithmetic. The volume test uses m·k·n (not m·n) so tall-skinny
    // multiplies with a heavy k dimension still parallelize.
    if threads <= 1 || m <= TILE || flop_pairs(m, k, n) < (threads * TILE * TILE * TILE) as u64 {
        return gemm_blocked(alpha, a, b, c);
    }
    c.as_mut_slice()
        .par_chunks_mut(TILE * n)
        .enumerate()
        .for_each(|(chunk, c_rows)| {
            let r0 = chunk * TILE;
            let r1 = (r0 + TILE).min(m);
            gemm_rows(alpha, a, b, c_rows, r0..r1);
        });
}

// --- Packed (BLIS-style) kernel ---------------------------------------------

thread_local! {
    /// Per-thread packing scratch for `A` (column micro-panels) and `B`
    /// (row micro-panels). Reused across `gemm` calls, so a rank thread
    /// running hundreds of SUMMA pivot steps allocates only on the first.
    static PACK_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Packs the `mc×kc` block of `a` at `(ic, pc)` into column-major
/// micro-panels of [`MR`] rows: panel `p` holds rows `ic+p·MR ..` laid out
/// `kc` columns deep with stride `MR`, zero-padded to a full `MR` rows so
/// the microkernel never branches on the row edge.
fn pack_a(a: &Matrix, ic: usize, pc: usize, mc: usize, kc: usize, buf: &mut Vec<f64>) {
    let panels = mc.div_ceil(MR);
    buf.clear();
    buf.resize(panels * MR * kc, 0.0);
    let lda = a.cols();
    let src = a.as_slice();
    for p in 0..panels {
        let i0 = p * MR;
        let rows = MR.min(mc - i0);
        let panel = &mut buf[p * MR * kc..(p + 1) * MR * kc];
        for i in 0..rows {
            let row = &src[(ic + i0 + i) * lda + pc..][..kc];
            for (l, &v) in row.iter().enumerate() {
                panel[l * MR + i] = v;
            }
        }
    }
}

/// Packs the `kc×nc` block of `b` at `(pc, jc)` into row-major
/// micro-panels of [`NR`] columns: panel `q` holds columns `jc+q·NR ..`
/// laid out `kc` rows deep with stride `NR`, zero-padded to full `NR`
/// columns.
fn pack_b(b: &Matrix, pc: usize, jc: usize, kc: usize, nc: usize, buf: &mut Vec<f64>) {
    let panels = nc.div_ceil(NR);
    buf.clear();
    buf.resize(panels * NR * kc, 0.0);
    let ldb = b.cols();
    let src = b.as_slice();
    for q in 0..panels {
        let j0 = q * NR;
        let cols = NR.min(nc - j0);
        let panel = &mut buf[q * NR * kc..(q + 1) * NR * kc];
        for l in 0..kc {
            let row = &src[(pc + l) * ldb + jc + j0..][..cols];
            panel[l * NR..l * NR + cols].copy_from_slice(row);
        }
    }
}

/// The register-blocked microkernel: returns the `MR×NR` product block of
/// one packed `A` micro-panel against one packed `B` micro-panel, `kc`
/// deep. The accumulator array lives in vector registers; the `j` loop is
/// the autovectorized dimension.
#[inline(always)]
fn microkernel(kc: usize, a_panel: &[f64], b_panel: &[f64]) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    for (av, bv) in a_panel
        .chunks_exact(MR)
        .zip(b_panel.chunks_exact(NR))
        .take(kc)
    {
        let bv: &[f64; NR] = bv.try_into().expect("exact chunk");
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] += ai * bv[j];
            }
        }
    }
    acc
}

/// Applies one packed `A` block against one packed `B` block, updating the
/// `mc×nc` region of `C` that starts at column `jc` inside `c_rows`
/// (`c_rows` is the row-major stripe of `C` holding the block's rows;
/// `ldc` is the full row stride). Handles ragged edges by clipping the
/// microkernel's accumulator at write-back.
#[allow(clippy::too_many_arguments)]
fn packed_block_update(
    alpha: f64,
    a_pack: &[f64],
    b_pack: &[f64],
    c_rows: &mut [f64],
    ldc: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
) {
    for (q, jr) in (0..nc).step_by(NR).enumerate() {
        let b_panel = &b_pack[q * NR * kc..(q + 1) * NR * kc];
        let nr_eff = NR.min(nc - jr);
        for (p, ir) in (0..mc).step_by(MR).enumerate() {
            let a_panel = &a_pack[p * MR * kc..(p + 1) * MR * kc];
            let mr_eff = MR.min(mc - ir);
            let acc = microkernel(kc, a_panel, b_panel);
            for (i, acc_row) in acc.iter().enumerate().take(mr_eff) {
                let c_row = &mut c_rows[(ir + i) * ldc + jc + jr..][..nr_eff];
                for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                    *cv += alpha * av;
                }
            }
        }
    }
}

fn gemm_packed(alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let params = *PackedParams::get();
    let threads = rayon::current_num_threads();
    // Fan out over MC row blocks only when more than one exists and the
    // arithmetic amortizes the scoped-thread dispatch.
    if threads > 1 && m > params.mc && flop_pairs(m, k, n) >= 4 * (TILE * TILE * TILE) as u64 {
        gemm_packed_parallel(alpha, a, b, c, &params, threads);
    } else {
        gemm_packed_st(alpha, a, b, c, &params);
    }
}

/// Single-threaded packed driver; packing scratch comes from the calling
/// thread's reusable buffers.
fn gemm_packed_st(alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix, params: &PackedParams) {
    let (m, k) = a.shape();
    let n = b.cols();
    PACK_SCRATCH.with(|scratch| {
        let (a_buf, b_buf) = &mut *scratch.borrow_mut();
        for jc in (0..n).step_by(params.nc) {
            let nc = params.nc.min(n - jc);
            for pc in (0..k).step_by(params.kc) {
                let kc = params.kc.min(k - pc);
                pack_b(b, pc, jc, kc, nc, b_buf);
                for ic in (0..m).step_by(params.mc) {
                    let mc = params.mc.min(m - ic);
                    pack_a(a, ic, pc, mc, kc, a_buf);
                    let c_rows = &mut c.as_mut_slice()[ic * n..(ic + mc) * n];
                    packed_block_update(alpha, a_buf, b_buf, c_rows, n, jc, mc, nc, kc);
                }
            }
        }
    });
}

/// Parallel packed driver: `B` blocks are packed once by the caller and
/// shared read-only; `MC` row blocks of `C` are dealt round-robin to
/// scoped worker threads, each with its own persistent `A`-packing buffer.
fn gemm_packed_parallel(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    params: &PackedParams,
    threads: usize,
) {
    let (m, k) = a.shape();
    let n = b.cols();
    let blocks = m.div_ceil(params.mc);
    let workers = threads.min(blocks);
    // One A-pack scratch per worker, allocated once per call (workers are
    // scoped threads, so the caller's thread-locals are not theirs).
    let mut a_bufs: Vec<Vec<f64>> = (0..workers).map(|_| Vec::new()).collect();
    PACK_SCRATCH.with(|scratch| {
        let (_, b_buf) = &mut *scratch.borrow_mut();
        for jc in (0..n).step_by(params.nc) {
            let nc = params.nc.min(n - jc);
            for pc in (0..k).step_by(params.kc) {
                let kc = params.kc.min(k - pc);
                pack_b(b, pc, jc, kc, nc, b_buf);
                let b_pack: &[f64] = b_buf;
                let mut assignments: Vec<Vec<(usize, &mut [f64])>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (idx, c_rows) in c.as_mut_slice().chunks_mut(params.mc * n).enumerate() {
                    assignments[idx % workers].push((idx, c_rows));
                }
                std::thread::scope(|s| {
                    for (queue, a_buf) in assignments.into_iter().zip(a_bufs.iter_mut()) {
                        s.spawn(move || {
                            for (idx, c_rows) in queue {
                                let ic = idx * params.mc;
                                let mc = params.mc.min(m - ic);
                                pack_a(a, ic, pc, mc, kc, a_buf);
                                packed_block_update(
                                    alpha, a_buf, b_pack, c_rows, n, jc, mc, nc, kc,
                                );
                            }
                        });
                    }
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::seeded_uniform;
    use proptest::prelude::*;

    const ALL_KERNELS: [GemmKernel; 4] = [
        GemmKernel::Naive,
        GemmKernel::Blocked,
        GemmKernel::Parallel,
        GemmKernel::Packed,
    ];

    fn reference_product(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        gemm_naive(1.0, a, b, &mut c);
        c
    }

    #[test]
    fn default_kernel_is_packed() {
        assert_eq!(GemmKernel::default(), GemmKernel::Packed);
    }

    #[test]
    fn identity_is_neutral_for_all_kernels() {
        let a = seeded_uniform(7, 7, 42);
        let id = Matrix::identity(7);
        for kernel in ALL_KERNELS {
            let mut c = Matrix::zeros(7, 7);
            gemm(kernel, &a, &id, &mut c);
            assert!(c.approx_eq(&a, 1e-12), "kernel {kernel:?} failed");
        }
    }

    #[test]
    fn gemm_accumulates_instead_of_overwriting() {
        for kernel in [GemmKernel::Blocked, GemmKernel::Packed] {
            let a = Matrix::identity(3);
            let b = Matrix::identity(3);
            let mut c = Matrix::from_fn(3, 3, |_, _| 1.0);
            gemm(kernel, &a, &b, &mut c);
            // C = ones + I
            assert_eq!(c.get(0, 0), 2.0, "{kernel:?}");
            assert_eq!(c.get(0, 1), 1.0, "{kernel:?}");
        }
    }

    #[test]
    fn rectangular_shapes_are_supported() {
        let a = seeded_uniform(5, 9, 1);
        let b = seeded_uniform(9, 3, 2);
        let want = reference_product(&a, &b);
        for kernel in [
            GemmKernel::Blocked,
            GemmKernel::Parallel,
            GemmKernel::Packed,
        ] {
            let mut c = Matrix::zeros(5, 3);
            gemm(kernel, &a, &b, &mut c);
            assert!(c.approx_eq(&want, 1e-10), "kernel {kernel:?} failed");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dimensions_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(GemmKernel::Naive, &a, &b, &mut c);
    }

    #[test]
    fn large_enough_to_cross_tile_boundaries() {
        let n = TILE + 17; // force partial tiles on every edge
        let a = seeded_uniform(n, n, 7);
        let b = seeded_uniform(n, n, 8);
        let want = reference_product(&a, &b);
        for kernel in [GemmKernel::Parallel, GemmKernel::Packed] {
            let mut c = Matrix::zeros(n, n);
            gemm(kernel, &a, &b, &mut c);
            assert!(c.approx_eq(&want, 1e-8), "{kernel:?}");
        }
    }

    #[test]
    fn packed_crosses_cache_block_boundaries() {
        // Exceed KC and MC so the pc/ic loops run more than once, with
        // ragged edges on every dimension.
        let params = *PackedParams::get();
        let m = params.mc + MR + 1;
        let k = params.kc + 3;
        let n = 2 * NR + 5;
        let a = seeded_uniform(m, k, 11);
        let b = seeded_uniform(k, n, 12);
        let want = reference_product(&a, &b);
        let mut c = Matrix::zeros(m, n);
        gemm(GemmKernel::Packed, &a, &b, &mut c);
        assert!(
            c.approx_eq(&want, 1e-8),
            "max diff {}",
            c.max_abs_diff(&want)
        );
    }

    #[test]
    fn gemm_scaled_negative_alpha_subtracts() {
        let a = seeded_uniform(4, 4, 9);
        let b = seeded_uniform(4, 4, 10);
        for kernel in ALL_KERNELS {
            let mut c = Matrix::zeros(4, 4);
            gemm(kernel, &a, &b, &mut c);
            gemm_scaled(kernel, -1.0, &a, &b, &mut c);
            assert!(c.approx_eq(&Matrix::zeros(4, 4), 1e-10), "{kernel:?}");
        }
    }

    #[test]
    fn flop_pairs_counts_mk_n() {
        assert_eq!(flop_pairs(2, 3, 4), 24);
        assert_eq!(flop_pairs(0, 3, 4), 0);
    }

    #[test]
    fn packed_params_env_is_sane() {
        let p = PackedParams::get();
        assert!(p.mc >= MR && p.mc.is_multiple_of(MR));
        assert!(p.nc >= NR && p.nc.is_multiple_of(NR));
        assert!(p.kc >= 1);
    }

    proptest! {
        #[test]
        fn blocked_matches_naive(
            m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
        ) {
            let a = seeded_uniform(m, k, seed);
            let b = seeded_uniform(k, n, seed.wrapping_add(1));
            let want = reference_product(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm(GemmKernel::Blocked, &a, &b, &mut c);
            prop_assert!(c.approx_eq(&want, 1e-10));
        }

        #[test]
        fn parallel_matches_naive(
            m in 1usize..32, k in 1usize..32, n in 1usize..32, seed in 0u64..1000
        ) {
            let a = seeded_uniform(m, k, seed);
            let b = seeded_uniform(k, n, seed.wrapping_add(1));
            let want = reference_product(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm(GemmKernel::Parallel, &a, &b, &mut c);
            prop_assert!(c.approx_eq(&want, 1e-10));
        }

        #[test]
        fn packed_matches_naive_rectangular(
            m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000
        ) {
            // Shapes deliberately not multiples of MR/NR: every ragged
            // edge path must agree with the oracle.
            let a = seeded_uniform(m, k, seed);
            let b = seeded_uniform(k, n, seed.wrapping_add(1));
            let want = reference_product(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm(GemmKernel::Packed, &a, &b, &mut c);
            prop_assert!(c.approx_eq(&want, 1e-10));
        }

        #[test]
        fn packed_unit_extent_edges(
            axis in 0usize..3, other in 1usize..20, seed in 0u64..500
        ) {
            // One of m/k/n pinned to 1 (vector × matrix, outer products,
            // dot-like shapes).
            let (m, k, n) = match axis {
                0 => (1, other, other + 1),
                1 => (other, 1, other + 2),
                _ => (other + 1, other, 1),
            };
            let a = seeded_uniform(m, k, seed);
            let b = seeded_uniform(k, n, seed.wrapping_add(1));
            let want = reference_product(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm(GemmKernel::Packed, &a, &b, &mut c);
            prop_assert!(c.approx_eq(&want, 1e-10));
        }

        #[test]
        fn packed_negative_alpha_accumulates(
            m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..500
        ) {
            // C starts random, then C += A·B followed by C += (−1)·A·B
            // must restore it exactly within tolerance.
            let a = seeded_uniform(m, k, seed);
            let b = seeded_uniform(k, n, seed.wrapping_add(1));
            let start = seeded_uniform(m, n, seed.wrapping_add(2));
            let mut c = start.clone();
            gemm_scaled(GemmKernel::Packed, 1.0, &a, &b, &mut c);
            gemm_scaled(GemmKernel::Packed, -1.0, &a, &b, &mut c);
            prop_assert!(c.approx_eq(&start, 1e-10));
        }

        #[test]
        fn gemm_is_linear_in_a(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..500
        ) {
            // (A1 + A2)·B == A1·B + A2·B
            let a1 = seeded_uniform(m, k, seed);
            let a2 = seeded_uniform(m, k, seed.wrapping_add(10));
            let b = seeded_uniform(k, n, seed.wrapping_add(20));
            let mut a_sum = a1.clone();
            a_sum.add_assign(&a2);

            let mut lhs = Matrix::zeros(m, n);
            gemm(GemmKernel::Packed, &a_sum, &b, &mut lhs);

            let mut rhs = Matrix::zeros(m, n);
            gemm(GemmKernel::Packed, &a1, &b, &mut rhs);
            gemm(GemmKernel::Packed, &a2, &b, &mut rhs);

            prop_assert!(lhs.approx_eq(&rhs, 1e-9));
        }
    }
}
