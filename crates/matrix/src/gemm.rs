//! Local matrix-multiply kernels: `C += A · B`.
//!
//! The distributed algorithms in `hsumma-core` treat the local multiply as a
//! black box, exactly as the paper treats ESSL/MKL `DGEMM`. Three kernels are
//! provided:
//!
//! * [`GemmKernel::Naive`] — textbook triple loop, the correctness oracle;
//! * [`GemmKernel::Blocked`] — cache-tiled `i k j` loop order;
//! * [`GemmKernel::Parallel`] — the blocked kernel with the row dimension
//!   split across a rayon thread pool (the stand-in for a tuned vendor BLAS).
//!
//! All kernels *accumulate* (`C += A·B`), which is the operation SUMMA's
//! inner step needs (`c_ij = c_ij + a_ik · b_kj`).

use crate::dense::Matrix;
use rayon::prelude::*;

/// Tile edge used by the blocked kernels. 64 `f64`s = 512 bytes per row
/// segment, so a 64×64 tile (32 KiB) of each operand fits comfortably in L1/L2.
const TILE: usize = 64;

/// Which local multiply implementation to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GemmKernel {
    /// Reference triple loop (`i j k`); slow but obviously correct.
    Naive,
    /// Cache-tiled sequential kernel.
    Blocked,
    /// Cache-tiled kernel parallelized over row tiles with rayon.
    #[default]
    Parallel,
}

/// `c += a · b` using the selected kernel.
///
/// ```
/// use hsumma_matrix::{gemm, GemmKernel, Matrix};
///
/// let a = Matrix::identity(3);
/// let b = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
/// let mut c = Matrix::zeros(3, 3);
/// gemm(GemmKernel::Blocked, &a, &b, &mut c);
/// assert!(c.approx_eq(&b, 1e-12));
/// ```
///
/// # Panics
/// Panics if the shapes are not conformant: `a` is `m × k`, `b` is `k × n`,
/// `c` is `m × n`.
pub fn gemm(kernel: GemmKernel, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    gemm_scaled(kernel, 1.0, a, b, c);
}

/// `c += alpha · a · b` — the scaled accumulate (`alpha = -1` gives the
/// trailing-update subtraction block LU needs).
///
/// # Panics
/// Panics on non-conformant shapes (see [`gemm`]).
pub fn gemm_scaled(kernel: GemmKernel, alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(a.rows(), c.rows(), "C row count must match A");
    assert_eq!(b.cols(), c.cols(), "C column count must match B");
    match kernel {
        GemmKernel::Naive => gemm_naive(alpha, a, b, c),
        GemmKernel::Blocked => gemm_blocked(alpha, a, b, c),
        GemmKernel::Parallel => gemm_parallel(alpha, a, b, c),
    }
}

/// Number of floating-point operations a `m×k · k×n` multiply-accumulate
/// performs, counting one addition and one multiplication per update (the
/// paper's `γ` is the time for such a combined flop pair, §IV).
pub fn flop_pairs(m: usize, k: usize, n: usize) -> u64 {
    m as u64 * k as u64 * n as u64
}

fn gemm_naive(alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a.get(i, l) * b.get(l, j);
            }
            let cur = c.get(i, j);
            c.set(i, j, cur + alpha * acc);
        }
    }
}

/// Multiplies the row stripe `rows` of `a` into the matching stripe of `c`.
///
/// Inner loop order is `i k j`: for each `a[i][l]` we stream row `l` of `b`
/// against row `i` of `c`, which is unit-stride for both and lets LLVM
/// vectorize the update.
fn gemm_rows(alpha: f64, a: &Matrix, b: &Matrix, c_rows: &mut [f64], rows: std::ops::Range<usize>) {
    let k = a.cols();
    let n = b.cols();
    for (ci, i) in rows.enumerate() {
        let c_row = &mut c_rows[ci * n..(ci + 1) * n];
        for l0 in (0..k).step_by(TILE) {
            let l1 = (l0 + TILE).min(k);
            for l in l0..l1 {
                let aval = alpha * a.get(i, l);
                if aval == 0.0 {
                    continue;
                }
                let b_row = b.row(l);
                for (cj, bv) in c_row.iter_mut().zip(b_row) {
                    *cj += aval * bv;
                }
            }
        }
    }
}

fn gemm_blocked(alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let m = a.rows();
    let n = b.cols();
    gemm_rows(alpha, a, b, &mut c.as_mut_slice()[..m * n], 0..m);
}

fn gemm_parallel(alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let m = a.rows();
    let n = b.cols();
    if m * n < TILE * TILE {
        // Too small to amortize the fork/join; stay sequential.
        return gemm_blocked(alpha, a, b, c);
    }
    c.as_mut_slice()
        .par_chunks_mut(TILE * n)
        .enumerate()
        .for_each(|(chunk, c_rows)| {
            let r0 = chunk * TILE;
            let r1 = (r0 + TILE).min(m);
            gemm_rows(alpha, a, b, c_rows, r0..r1);
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::seeded_uniform;
    use proptest::prelude::*;

    fn reference_product(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        gemm_naive(1.0, a, b, &mut c);
        c
    }

    #[test]
    fn identity_is_neutral_for_all_kernels() {
        let a = seeded_uniform(7, 7, 42);
        let id = Matrix::identity(7);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked, GemmKernel::Parallel] {
            let mut c = Matrix::zeros(7, 7);
            gemm(kernel, &a, &id, &mut c);
            assert!(c.approx_eq(&a, 1e-12), "kernel {kernel:?} failed");
        }
    }

    #[test]
    fn gemm_accumulates_instead_of_overwriting() {
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 1.0);
        gemm(GemmKernel::Blocked, &a, &b, &mut c);
        // C = ones + I
        assert_eq!(c.get(0, 0), 2.0);
        assert_eq!(c.get(0, 1), 1.0);
    }

    #[test]
    fn rectangular_shapes_are_supported() {
        let a = seeded_uniform(5, 9, 1);
        let b = seeded_uniform(9, 3, 2);
        let want = reference_product(&a, &b);
        for kernel in [GemmKernel::Blocked, GemmKernel::Parallel] {
            let mut c = Matrix::zeros(5, 3);
            gemm(kernel, &a, &b, &mut c);
            assert!(c.approx_eq(&want, 1e-10), "kernel {kernel:?} failed");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dimensions_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(GemmKernel::Naive, &a, &b, &mut c);
    }

    #[test]
    fn large_enough_to_cross_tile_boundaries() {
        let n = TILE + 17; // force partial tiles on every edge
        let a = seeded_uniform(n, n, 7);
        let b = seeded_uniform(n, n, 8);
        let want = reference_product(&a, &b);
        let mut c = Matrix::zeros(n, n);
        gemm(GemmKernel::Parallel, &a, &b, &mut c);
        assert!(c.approx_eq(&want, 1e-8));
    }

    #[test]
    fn gemm_scaled_negative_alpha_subtracts() {
        let a = seeded_uniform(4, 4, 9);
        let b = seeded_uniform(4, 4, 10);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked, GemmKernel::Parallel] {
            let mut c = Matrix::zeros(4, 4);
            gemm(kernel, &a, &b, &mut c);
            gemm_scaled(kernel, -1.0, &a, &b, &mut c);
            assert!(c.approx_eq(&Matrix::zeros(4, 4), 1e-10), "{kernel:?}");
        }
    }

    #[test]
    fn flop_pairs_counts_mk_n() {
        assert_eq!(flop_pairs(2, 3, 4), 24);
        assert_eq!(flop_pairs(0, 3, 4), 0);
    }

    proptest! {
        #[test]
        fn blocked_matches_naive(
            m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
        ) {
            let a = seeded_uniform(m, k, seed);
            let b = seeded_uniform(k, n, seed.wrapping_add(1));
            let want = reference_product(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm(GemmKernel::Blocked, &a, &b, &mut c);
            prop_assert!(c.approx_eq(&want, 1e-10));
        }

        #[test]
        fn parallel_matches_naive(
            m in 1usize..32, k in 1usize..32, n in 1usize..32, seed in 0u64..1000
        ) {
            let a = seeded_uniform(m, k, seed);
            let b = seeded_uniform(k, n, seed.wrapping_add(1));
            let want = reference_product(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm(GemmKernel::Parallel, &a, &b, &mut c);
            prop_assert!(c.approx_eq(&want, 1e-10));
        }

        #[test]
        fn gemm_is_linear_in_a(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..500
        ) {
            // (A1 + A2)·B == A1·B + A2·B
            let a1 = seeded_uniform(m, k, seed);
            let a2 = seeded_uniform(m, k, seed.wrapping_add(10));
            let b = seeded_uniform(k, n, seed.wrapping_add(20));
            let mut a_sum = a1.clone();
            a_sum.add_assign(&a2);

            let mut lhs = Matrix::zeros(m, n);
            gemm(GemmKernel::Blocked, &a_sum, &b, &mut lhs);

            let mut rhs = Matrix::zeros(m, n);
            gemm(GemmKernel::Blocked, &a1, &b, &mut rhs);
            gemm(GemmKernel::Blocked, &a2, &b, &mut rhs);

            prop_assert!(lhs.approx_eq(&rhs, 1e-9));
        }
    }
}
