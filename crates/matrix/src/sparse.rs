//! Compressed sparse row (CSR) matrices and serial sparse kernels.
//!
//! [`CsrMatrix`] is the local sparse format the distributed SpGEMM/SDDMM
//! schedules move around: construction from (possibly duplicated)
//! triplets, dense⇄sparse conversion, transpose, column-range panel
//! extraction, and the serial reference kernels ([`spgemm`], [`sddmm`])
//! the distributed results are validated against.
//!
//! # Wire format
//!
//! A CSR payload's wire size is [`csr_wire_bytes`]`(rows, nnz)`: a fixed
//! header, one 8-byte offset per row boundary, and 12 bytes per stored
//! entry (4-byte column index + 8-byte value). Two properties matter to
//! the rest of the stack:
//!
//! * for a fixed row count it is *strictly monotone in `nnz`* — equal
//!   shapes with different fill ship different byte counts, which is what
//!   exercises the Hockney model with non-uniform message sizes;
//! * it is *invertible*: a receiver that knows `rows` (panel shapes are
//!   globally known in the 2-D schedules) recovers `nnz` exactly from the
//!   byte count via [`csr_nnz_from_wire`]. The simulator's phantom sparse
//!   payloads rely on this to relay panels they only saw as byte counts.

use crate::dense::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fixed per-message header: rows, cols, nnz, flags (4 × u32).
pub const CSR_HEADER_BYTES: u64 = 16;
/// One `u64` row-pointer entry per row boundary (`rows + 1` of them).
pub const CSR_ROW_PTR_BYTES: u64 = 8;
/// One stored entry: `u32` column index + `f64` value.
pub const CSR_ENTRY_BYTES: u64 = 12;

/// Serialized size in bytes of a CSR payload with `rows` rows and `nnz`
/// stored entries. Strictly monotone in `nnz` for fixed `rows`.
pub fn csr_wire_bytes(rows: usize, nnz: usize) -> u64 {
    CSR_HEADER_BYTES + (rows as u64 + 1) * CSR_ROW_PTR_BYTES + nnz as u64 * CSR_ENTRY_BYTES
}

/// Inverts [`csr_wire_bytes`]: recovers `nnz` from a wire byte count and
/// the (globally known) row count.
///
/// # Panics
/// Panics if `bytes` is not a valid CSR wire size for `rows` rows.
pub fn csr_nnz_from_wire(rows: usize, bytes: u64) -> usize {
    let fixed = CSR_HEADER_BYTES + (rows as u64 + 1) * CSR_ROW_PTR_BYTES;
    assert!(
        bytes >= fixed && (bytes - fixed).is_multiple_of(CSR_ENTRY_BYTES),
        "{bytes} bytes is not a CSR wire size for {rows} rows"
    );
    ((bytes - fixed) / CSR_ENTRY_BYTES) as usize
}

/// A sparse `f64` matrix in compressed sparse row form.
///
/// Canonical invariants, maintained by every constructor:
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, non-decreasing;
/// * within each row, column indices are strictly increasing (sorted, no
///   duplicates);
/// * no explicitly stored zeros (entries that sum or multiply to exactly
///   `0.0` are dropped), so `nnz` is meaningful and dense⇄sparse
///   round-trips are identity.
///
/// ```
/// use hsumma_matrix::sparse::CsrMatrix;
///
/// let s = CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.5), (1, 0, -2.0), (0, 2, 0.5)]);
/// assert_eq!(s.nnz(), 2); // duplicates summed
/// assert_eq!(s.to_dense().get(0, 2), 2.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

/// A CSR payload's wire size depends on `nnz`, not just shape — the
/// reason byte accounting asks the payload instead of recomputing from
/// dimensions.
impl hsumma_trace::WirePayload for CsrMatrix {
    fn payload_bytes(&self) -> u64 {
        csr_wire_bytes(self.rows, self.nnz())
    }
}

impl CsrMatrix {
    /// An empty (all-zero) `rows × cols` sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(cols <= u32::MAX as usize, "column count exceeds u32 index");
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from raw parts; validates all the canonical invariants
    /// except strict column ordering (callers must pre-sort).
    fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        debug_assert_eq!(col_idx.len(), values.len());
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds from `(row, col, value)` triplets in any order. Duplicate
    /// coordinates are *summed*; entries that sum to exactly zero are
    /// dropped (canonical form).
    ///
    /// # Panics
    /// Panics on an out-of-range coordinate.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        assert!(cols <= u32::MAX as usize, "column count exceeds u32 index");
        let mut per_row: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
        for &(i, j, v) in triplets {
            assert!(i < rows && j < cols, "triplet ({i}, {j}) out of range");
            per_row[i].push((j as u32, v));
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for entries in &mut per_row {
            entries.sort_by_key(|&(j, _)| j);
            let mut k = 0;
            while k < entries.len() {
                let j = entries[k].0;
                let mut sum = 0.0;
                while k < entries.len() && entries[k].0 == j {
                    sum += entries[k].1;
                    k += 1;
                }
                if sum != 0.0 {
                    col_idx.push(j);
                    values.push(sum);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self::from_parts(rows, cols, row_ptr, col_idx, values)
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        assert!(cols <= u32::MAX as usize, "column count exceeds u32 index");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for j in 0..cols {
                let v = m.get(i, j);
                if v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self::from_parts(rows, cols, row_ptr, col_idx, values)
    }

    /// Materializes the dense form.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m.set(i, self.col_idx[k] as usize, self.values[k]);
            }
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }
    /// Row-boundary offsets (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }
    /// Column indices, row-major, sorted within each row.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }
    /// Stored values, parallel to [`CsrMatrix::col_idx`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
    /// Stored entries of row `i` as `(col_indices, values)` slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }
    /// Stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// The transpose, in canonical CSR form.
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.col_idx {
            counts[j as usize + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                let pos = next[j];
                next[j] += 1;
                // Walking rows in order keeps each transposed row sorted.
                col_idx[pos] = i as u32;
                values[pos] = self.values[k];
            }
        }
        Self::from_parts(self.cols, self.rows, row_ptr, col_idx, values)
    }

    /// A freshly allocated copy of the `h × w` block at `(r0, c0)` —
    /// the sparse analogue of `Matrix::block`, used to slice pivot
    /// panels out of local tiles.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of bounds"
        );
        let (c_lo, c_hi) = (c0 as u32, (c0 + w) as u32);
        let mut row_ptr = Vec::with_capacity(h + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in r0..r0 + h {
            let (cols_i, vals_i) = self.row(i);
            // Columns are sorted: binary-search the panel's range.
            let lo = cols_i.partition_point(|&j| j < c_lo);
            let hi = cols_i.partition_point(|&j| j < c_hi);
            for k in lo..hi {
                col_idx.push(cols_i[k] - c_lo);
                values.push(vals_i[k]);
            }
            row_ptr.push(col_idx.len());
        }
        Self::from_parts(h, w, row_ptr, col_idx, values)
    }

    /// Overwrites the block at `(r0, c0)` conceptually — used by tile
    /// gathering. Builds a *new* canonical matrix by merging `src` into
    /// the zero region (the target block must be structurally empty,
    /// which tile assembly guarantees).
    pub fn set_block_into_zero(&mut self, r0: usize, c0: usize, src: &Self) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "block out of bounds"
        );
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(self.nnz() + src.nnz());
        for i in 0..self.rows {
            let (cols_i, vals_i) = self.row(i);
            for (k, &j) in cols_i.iter().enumerate() {
                triplets.push((i, j as usize, vals_i[k]));
            }
        }
        for i in 0..src.rows {
            let (cols_i, vals_i) = src.row(i);
            for (k, &j) in cols_i.iter().enumerate() {
                triplets.push((r0 + i, c0 + j as usize, vals_i[k]));
            }
        }
        *self = Self::from_triplets(self.rows, self.cols, &triplets);
    }

    /// A matrix sharing `self`'s exact pattern with new `values`
    /// (parallel to [`CsrMatrix::values`]). Zeros in `values` are kept —
    /// the pattern is the contract (SDDMM's "samples stay sampled").
    ///
    /// # Panics
    /// Panics unless `values.len() == self.nnz()`.
    pub fn with_values(&self, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), self.nnz(), "values length must equal nnz");
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values,
        }
    }

    /// Largest absolute element-wise difference against another sparse
    /// matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        let a = self.to_dense();
        let b = other.to_dense();
        a.max_abs_diff(&b)
    }
}

/// Serial sparse × sparse product `C = A·B` (Gustavson's algorithm with
/// a dense workspace row) — the reference the distributed SpGEMM is
/// validated against, and the local kernel it runs per pivot step.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let mut acc = SpGemmAcc::new(a.rows, b.cols);
    acc.accumulate(a, b);
    acc.finalize()
}

/// An accumulating `C += A·B` workspace for sparse products: the 2-D
/// schedule calls [`SpGemmAcc::accumulate`] once per pivot step and
/// [`SpGemmAcc::finalize`]s after the last. Accumulation order is program
/// order, so distributed results are bit-identical to a serial replay of
/// the same panel sequence.
#[derive(Debug)]
pub struct SpGemmAcc {
    rows: usize,
    cols: usize,
    /// Dense accumulation rows (`rows × cols` values + occupancy marks);
    /// fine at tile scale, where `cols` is a local tile extent.
    vals: Vec<f64>,
    occupied: Vec<bool>,
}

impl SpGemmAcc {
    /// A zeroed `rows × cols` accumulator.
    pub fn new(rows: usize, cols: usize) -> Self {
        SpGemmAcc {
            rows,
            cols,
            vals: vec![0.0; rows * cols],
            occupied: vec![false; rows * cols],
        }
    }

    /// `C += A·B`.
    pub fn accumulate(&mut self, a: &CsrMatrix, b: &CsrMatrix) {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        assert_eq!((a.rows, b.cols), (self.rows, self.cols), "output mismatch");
        for i in 0..a.rows {
            let (a_cols, a_vals) = a.row(i);
            let out = i * self.cols;
            for (t, &k) in a_cols.iter().enumerate() {
                let av = a_vals[t];
                let (b_cols, b_vals) = b.row(k as usize);
                for (u, &j) in b_cols.iter().enumerate() {
                    let idx = out + j as usize;
                    self.vals[idx] += av * b_vals[u];
                    self.occupied[idx] = true;
                }
            }
        }
    }

    /// The accumulated product in canonical CSR form. Entries that
    /// cancel to exactly zero are dropped (canonical form, matching
    /// `from_dense`).
    pub fn finalize(self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let v = self.vals[i * self.cols + j];
                if self.occupied[i * self.cols + j] && v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_parts(self.rows, self.cols, row_ptr, col_idx, values)
    }
}

/// Multiply-add pairs of the sparse product `A·B`: `Σ_{(i,k)∈A}
/// nnz_row(B, k)`. Exact (pattern-driven), `O(nnz(A))`.
pub fn spgemm_pairs(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let mut pairs = 0u64;
    for &k in &a.col_idx {
        pairs += b.row_nnz(k as usize) as u64;
    }
    pairs
}

/// Serial SDDMM reference: `C_ij = S_ij · (A·B)_ij` over `pattern(S)`.
/// `A` is `rows(S) × d`, `B` is `d × cols(S)`.
pub fn sddmm(s: &CsrMatrix, a: &Matrix, b: &Matrix) -> CsrMatrix {
    assert_eq!(a.rows(), s.rows, "A row count must match S");
    assert_eq!(b.cols(), s.cols, "B column count must match S");
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let d = a.cols();
    let mut values = Vec::with_capacity(s.nnz());
    for i in 0..s.rows {
        let (cols_i, vals_i) = s.row(i);
        for (t, &j) in cols_i.iter().enumerate() {
            let mut dot = 0.0;
            for k in 0..d {
                dot += a.get(i, k) * b.get(k, j as usize);
            }
            values.push(vals_i[t] * dot);
        }
    }
    // The result keeps S's pattern verbatim (an SDDMM contract: samples
    // stay sampled even when a dot product is zero).
    CsrMatrix::from_parts(s.rows, s.cols, s.row_ptr.clone(), s.col_idx.clone(), values)
}

/// A reproducible uniform-random sparse matrix: each coordinate is
/// stored with probability `density`, values uniform in `[-1, 1)`.
pub fn seeded_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for _ in 0..rows {
        for j in 0..cols {
            if rng.gen_range(0.0..1.0) < density {
                col_idx.push(j as u32);
                values.push(rng.gen_range(-1.0f64..1.0));
            }
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts(rows, cols, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, GemmKernel};
    use crate::generate::seeded_uniform;
    use hsumma_trace::WirePayload;

    fn dense_product(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        gemm(GemmKernel::Naive, a, b, &mut c);
        c
    }

    #[test]
    fn wire_bytes_invert_and_distinguish_nnz() {
        for rows in [1usize, 4, 33] {
            for nnz in [0usize, 1, 17, 256] {
                assert_eq!(csr_nnz_from_wire(rows, csr_wire_bytes(rows, nnz)), nnz);
            }
        }
        // Equal shape, different nnz ⇒ different wire bytes.
        assert_ne!(csr_wire_bytes(8, 10), csr_wire_bytes(8, 11));
    }

    #[test]
    fn triplets_sum_duplicates_and_drop_zeros() {
        let s = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 1, 2.0),
                (0, 1, 3.0),
                (2, 2, 1.0),
                (2, 2, -1.0),
                (1, 0, 4.0),
            ],
        );
        assert_eq!(s.nnz(), 2); // (0,1)=5.0 and (1,0)=4.0; (2,2) cancelled
        assert_eq!(s.to_dense().get(0, 1), 5.0);
        assert_eq!(s.row_nnz(2), 0);
    }

    #[test]
    fn dense_roundtrip_is_identity() {
        let mut m = seeded_uniform(6, 5, 9);
        // Punch some explicit zeros.
        m.set(0, 0, 0.0);
        m.set(3, 4, 0.0);
        let s = CsrMatrix::from_dense(&m);
        assert_eq!(s.to_dense(), m);
        assert_eq!(CsrMatrix::from_dense(&s.to_dense()), s);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let s = seeded_sparse(7, 4, 0.4, 11);
        let t = s.transpose();
        assert_eq!(t.shape(), (4, 7));
        for i in 0..7 {
            for j in 0..4 {
                assert_eq!(s.to_dense().get(i, j), t.to_dense().get(j, i));
            }
        }
        // Canonical: transpose twice is identity.
        assert_eq!(t.transpose(), s);
    }

    #[test]
    fn block_matches_dense_block() {
        let s = seeded_sparse(8, 8, 0.3, 5);
        let blk = s.block(2, 3, 4, 5);
        assert_eq!(blk.to_dense(), s.to_dense().block(2, 3, 4, 5));
    }

    #[test]
    fn spgemm_matches_dense_reference() {
        for (da, db, seed) in [(0.2, 0.3, 1), (0.0, 0.5, 2), (1.0, 1.0, 3)] {
            let a = seeded_sparse(6, 8, da, seed);
            let b = seeded_sparse(8, 5, db, seed + 100);
            let c = spgemm(&a, &b);
            let want = dense_product(&a.to_dense(), &b.to_dense());
            assert!(
                c.to_dense().approx_eq(&want, 1e-12),
                "density ({da}, {db}) diverged"
            );
        }
    }

    #[test]
    fn spgemm_pairs_counts_exact_flops() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 1.0), (1, 1, 1.0)]);
        let b = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 1.0), (2, 1, 1.0)]);
        // Row 0 of A hits B rows 0 (2 entries) and 2 (1 entry); row 1
        // hits B row 1 (0 entries).
        assert_eq!(spgemm_pairs(&a, &b), 3);
    }

    #[test]
    fn sddmm_matches_dense_reference() {
        let s = seeded_sparse(6, 7, 0.35, 21);
        let a = seeded_uniform(6, 4, 22);
        let b = seeded_uniform(4, 7, 23);
        let c = sddmm(&s, &a, &b);
        assert_eq!(c.row_ptr(), s.row_ptr());
        assert_eq!(c.col_idx(), s.col_idx());
        let ab = dense_product(&a, &b);
        for i in 0..6 {
            let (cols_i, vals_i) = c.row(i);
            for (t, &j) in cols_i.iter().enumerate() {
                let want = s.to_dense().get(i, j as usize) * ab.get(i, j as usize);
                assert!((vals_i[t] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn payload_bytes_depend_on_nnz() {
        let sparse = seeded_sparse(16, 16, 0.1, 1);
        let denser = seeded_sparse(16, 16, 0.5, 1);
        assert_eq!(sparse.shape(), denser.shape());
        assert!(denser.nnz() > sparse.nnz());
        assert!(denser.payload_bytes() > sparse.payload_bytes());
        assert_eq!(sparse.payload_bytes(), csr_wire_bytes(16, sparse.nnz()));
    }

    #[test]
    fn set_block_into_zero_assembles_tiles() {
        let full = seeded_sparse(6, 6, 0.4, 31);
        let mut assembled = CsrMatrix::zeros(6, 6);
        for (r0, c0) in [(0, 0), (0, 3), (3, 0), (3, 3)] {
            assembled.set_block_into_zero(r0, c0, &full.block(r0, c0, 3, 3));
        }
        assert_eq!(assembled, full);
    }

    use proptest::prelude::*;

    proptest! {
        // Triplets → CSR → dense → CSR is the identity on canonical
        // form: duplicates sum, exact-zero sums drop, and both
        // constructors agree on what remains. Integer-valued triplets
        // make cancellation (sum == 0.0) actually reachable.
        #[test]
        fn triplets_csr_dense_csr_roundtrip(
            rows in 1usize..8, cols in 1usize..8,
            triplets in prop::collection::vec(
                (0usize..64, 0usize..64, -3i8..=3), 0..40
            )
        ) {
            let t: Vec<(usize, usize, f64)> = triplets
                .iter()
                .map(|&(i, j, v)| (i % rows, j % cols, v as f64))
                .collect();
            let m = CsrMatrix::from_triplets(rows, cols, &t);
            prop_assert_eq!(CsrMatrix::from_dense(&m.to_dense()), m);
        }

        #[test]
        fn transpose_is_an_involution(
            rows in 1usize..12, cols in 1usize..12,
            density in 0.0f64..1.0, seed in 0u64..100
        ) {
            let m = seeded_sparse(rows, cols, density, seed);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        // The wire format stays invertible for every (rows, nnz): the
        // simulator's PhantomSparse reconstruction depends on it.
        #[test]
        fn wire_bytes_invert_to_nnz(rows in 1usize..4096, nnz in 0usize..100_000) {
            prop_assert_eq!(
                csr_nnz_from_wire(rows, csr_wire_bytes(rows, nnz)),
                nnz
            );
        }

        // Any block partition reassembles exactly — the contract
        // scatter_csr/gather_csr build on.
        #[test]
        fn block_partition_reassembles(
            s in 1usize..4, t in 1usize..4, th in 1usize..4, tw in 1usize..4,
            density in 0.0f64..1.0, seed in 0u64..100
        ) {
            let (rows, cols) = (s * th, t * tw);
            let full = seeded_sparse(rows, cols, density, seed);
            let mut assembled = CsrMatrix::zeros(rows, cols);
            for bi in 0..s {
                for bj in 0..t {
                    let tile = full.block(bi * th, bj * tw, th, tw);
                    assembled.set_block_into_zero(bi * th, bj * tw, &tile);
                }
            }
            prop_assert_eq!(assembled, full);
        }

        #[test]
        fn spgemm_agrees_with_dense_gemm(
            m in 1usize..8, l in 1usize..8, n in 1usize..8,
            da in 0.0f64..1.0, db in 0.0f64..1.0, seed in 0u64..50
        ) {
            let a = seeded_sparse(m, l, da, seed);
            let b = seeded_sparse(l, n, db, seed + 1);
            let mut want = Matrix::zeros(m, n);
            gemm(GemmKernel::Naive, &a.to_dense(), &b.to_dense(), &mut want);
            prop_assert!(
                spgemm(&a, &b).max_abs_diff(&CsrMatrix::from_dense(&want)) < 1e-12
            );
        }
    }
}
