//! Row-major dense `f64` matrix.
//!
//! [`Matrix`] is deliberately small: the distributed algorithms need
//! construction, indexing, panel (block) extraction/insertion and a couple
//! of norms for verification. Arithmetic beyond that lives in
//! [`mod@crate::gemm`].

use std::fmt;

/// A dense row-major matrix of `f64`.
///
/// Invariant: `data.len() == rows * cols`. Element `(i, j)` lives at
/// `data[i * cols + j]`.
///
/// ```
/// use hsumma_matrix::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m.get(1, 2), 12.0);
/// assert_eq!(m.block(0, 1, 2, 2).as_slice(), &[1.0, 2.0, 11.0, 12.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// A dense tile's wire size is a pure function of shape.
impl hsumma_trace::WirePayload for Matrix {
    fn payload_bytes(&self) -> u64 {
        (self.rows * self.cols * 8) as u64
    }
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a function of the (row, column) index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies the `h × w` block whose top-left corner is `(r0, c0)` into a
    /// new matrix.
    ///
    /// This is the *panel extraction* primitive: SUMMA's pivot column of
    /// width `b` is `block(0, k*b, local_rows, b)` of the local tile of `A`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Matrix {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of bounds"
        );
        let mut out = Vec::with_capacity(h * w);
        for i in 0..h {
            let src = (r0 + i) * self.cols + c0;
            out.extend_from_slice(&self.data[src..src + w]);
        }
        Matrix {
            rows: h,
            cols: w,
            data: out,
        }
    }

    /// Copies the block with top-left corner `(r0, c0)` and the shape of
    /// `dst` into `dst` — the allocation-free counterpart of
    /// [`Self::block`], for panel scratch that is reused across steps.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn block_into(&self, r0: usize, c0: usize, dst: &mut Matrix) {
        assert!(
            r0 + dst.rows <= self.rows && c0 + dst.cols <= self.cols,
            "block out of bounds"
        );
        for i in 0..dst.rows {
            let src = (r0 + i) * self.cols + c0;
            let d = i * dst.cols;
            dst.data[d..d + dst.cols].copy_from_slice(&self.data[src..src + dst.cols]);
        }
    }

    /// Overwrites the block with top-left corner `(r0, c0)` with `src`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Matrix) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "block out of bounds"
        );
        for i in 0..src.rows {
            let dst = (r0 + i) * self.cols + c0;
            self.data[dst..dst + src.cols].copy_from_slice(src.row(i));
        }
    }

    /// `self += other`, element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self *= s`, element-wise.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        // Clamp the printed size: debug output for huge matrices is useless.
        let max = 8;
        for i in 0..self.rows.min(max) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max) {
                write!(f, "{:10.4} ", self.get(i, j))?;
            }
            if self.cols > max {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > max {
            writeln!(f, "  ⋮")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(m.get(1, 2), 5.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn identity_multiplicative_unit_elements() {
        let id = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn block_extracts_panel() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = m.block(1, 2, 2, 2);
        assert_eq!(b.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
    }

    #[test]
    fn block_into_matches_block_and_overwrites_scratch() {
        let m = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64);
        let mut scratch = Matrix::from_fn(2, 3, |_, _| -1.0);
        m.block_into(1, 2, &mut scratch);
        assert_eq!(scratch, m.block(1, 2, 2, 3));
        // Reuse: a second extraction fully replaces the first.
        m.block_into(3, 4, &mut scratch);
        assert_eq!(scratch, m.block(3, 4, 2, 3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_into_out_of_bounds_panics() {
        let m = Matrix::zeros(3, 3);
        let mut scratch = Matrix::zeros(2, 2);
        m.block_into(2, 2, &mut scratch);
    }

    #[test]
    fn set_block_roundtrips_with_block() {
        let src = Matrix::from_fn(6, 6, |i, j| (i + j) as f64);
        let panel = src.block(2, 3, 3, 2);
        let mut dst = Matrix::zeros(6, 6);
        dst.set_block(2, 3, &panel);
        assert_eq!(dst.block(2, 3, 3, 2), panel);
        // Everything outside the block stays zero.
        assert_eq!(dst.get(0, 0), 0.0);
        assert_eq!(dst.get(5, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_out_of_bounds_panics() {
        let m = Matrix::zeros(3, 3);
        let _ = m.block(2, 2, 2, 2);
    }

    #[test]
    fn add_assign_adds_elementwise() {
        let mut a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::identity(2);
        a.add_assign(&b);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 1), 3.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn frobenius_norm_of_unit_vectors() {
        let id = Matrix::identity(9);
        assert!((id.frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_single_perturbation() {
        let a = Matrix::zeros(3, 3);
        let mut b = Matrix::zeros(3, 3);
        b.set(2, 1, -0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(!a.approx_eq(&b, 0.4));
        assert!(a.approx_eq(&b, 0.5));
    }

    #[test]
    fn scale_multiplies_all_elements() {
        let mut m = Matrix::from_fn(2, 2, |_, _| 2.0);
        m.scale(1.5);
        assert!(m.as_slice().iter().all(|&x| x == 3.0));
    }

    #[test]
    fn row_views_are_contiguous() {
        let mut m = Matrix::from_fn(3, 4, |i, j| (10 * i + j) as f64);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
        m.row_mut(2)[0] = -1.0;
        assert_eq!(m.get(2, 0), -1.0);
    }
}
