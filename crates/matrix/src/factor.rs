//! Local factorization kernels: unpivoted LU and the triangular solves
//! that the distributed block-LU (`hsumma-core::lu`) builds on.
//!
//! Pivoting is deliberately omitted: the distributed extension follows
//! the paper's *communication* structure (panel broadcasts), and pivot
//! search would add a column-communicator reduction orthogonal to that
//! story. Tests therefore use diagonally dominant matrices, for which
//! unpivoted LU is numerically safe.

// Dense numerical kernels read better with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::dense::Matrix;
use crate::generate::seeded_uniform;

/// Factors `a` in place into `L\U` (unit lower / upper, packed): after the
/// call, `a[i][j]` holds `L[i][j]` for `i > j` and `U[i][j]` for `i ≤ j`.
///
/// # Panics
/// Panics if `a` is not square or a zero pivot is hit (use diagonally
/// dominant inputs).
pub fn lu_nopiv_inplace(a: &mut Matrix) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "LU needs a square matrix");
    for k in 0..n {
        let pivot = a.get(k, k);
        assert!(
            pivot.abs() > f64::EPSILON,
            "zero pivot at {k}: unpivoted LU needs a nonsingular leading minor"
        );
        for i in k + 1..n {
            let lik = a.get(i, k) / pivot;
            a.set(i, k, lik);
            for j in k + 1..n {
                let v = a.get(i, j) - lik * a.get(k, j);
                a.set(i, j, v);
            }
        }
    }
}

/// Extracts the unit-lower factor from a packed `L\U`.
pub fn unpack_lower_unit(lu: &Matrix) -> Matrix {
    Matrix::from_fn(lu.rows(), lu.cols(), |i, j| {
        use std::cmp::Ordering::*;
        match i.cmp(&j) {
            Greater => lu.get(i, j),
            Equal => 1.0,
            Less => 0.0,
        }
    })
}

/// Extracts the upper factor from a packed `L\U`.
pub fn unpack_upper(lu: &Matrix) -> Matrix {
    Matrix::from_fn(lu.rows(), lu.cols(), |i, j| {
        if i <= j {
            lu.get(i, j)
        } else {
            0.0
        }
    })
}

/// Solves `L · X = B` in place (`b` becomes `X`), with `l` unit lower
/// triangular (diagonal implied 1, entries above ignored). This computes
/// the LU row panel `U_kj = L_kk⁻¹ A_kj`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn trsm_left_lower_unit(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert_eq!(n, l.cols(), "L must be square");
    assert_eq!(b.rows(), n, "B row count must match L");
    for i in 1..n {
        for k in 0..i {
            let lik = l.get(i, k);
            if lik == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                let v = b.get(i, j) - lik * b.get(k, j);
                b.set(i, j, v);
            }
        }
    }
}

/// Solves `X · U = B` in place (`b` becomes `X`), with `u` upper
/// triangular (entries below the diagonal ignored). This computes the LU
/// column panel `L_ik = A_ik U_kk⁻¹`.
///
/// # Panics
/// Panics on shape mismatch or zero diagonal in `u`.
pub fn trsm_right_upper(u: &Matrix, b: &mut Matrix) {
    let n = u.rows();
    assert_eq!(n, u.cols(), "U must be square");
    assert_eq!(b.cols(), n, "B column count must match U");
    for j in 0..n {
        let ujj = u.get(j, j);
        assert!(ujj.abs() > f64::EPSILON, "zero diagonal in U at {j}");
        for i in 0..b.rows() {
            let mut v = b.get(i, j);
            for k in 0..j {
                v -= b.get(i, k) * u.get(k, j);
            }
            b.set(i, j, v / ujj);
        }
    }
}

/// Thin Householder QR: factors `a` (`m × n`, `m ≥ n`) into an
/// orthonormal `Q` (`m × n`) and upper-triangular `R` (`n × n`) with
/// `Q·R = a`.
///
/// # Panics
/// Panics if `m < n`.
pub fn qr_thin(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    assert!(m >= n, "thin QR needs m >= n (got {m} x {n})");
    let mut r = a.clone();
    // Householder vectors, one per column, stored densely (v[k][k..m]).
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // Build the reflector annihilating r[k+1.., k].
        let mut v = vec![0.0; m];
        let mut norm2 = 0.0;
        for i in k..m {
            let x = r.get(i, k);
            v[i] = x;
            norm2 += x * x;
        }
        let norm = norm2.sqrt();
        if norm > 0.0 {
            let alpha = if v[k] >= 0.0 { -norm } else { norm };
            v[k] -= alpha;
            let vnorm2: f64 = v[k..].iter().map(|x| x * x).sum();
            if vnorm2 > f64::EPSILON {
                // Apply I − 2vvᵀ/(vᵀv) to the trailing columns of R.
                for j in k..n {
                    let dot: f64 = (k..m).map(|i| v[i] * r.get(i, j)).sum();
                    let scale = 2.0 * dot / vnorm2;
                    for i in k..m {
                        let val = r.get(i, j) - scale * v[i];
                        r.set(i, j, val);
                    }
                }
            }
        }
        vs.push(v);
    }
    // Q thin = (H_0 · … · H_{n−1}) · [I_n; 0]: apply reflectors in reverse
    // to the padded identity.
    let mut q = Matrix::from_fn(m, n, |i, j| if i == j { 1.0 } else { 0.0 });
    for k in (0..n).rev() {
        let v = &vs[k];
        let vnorm2: f64 = v[k..].iter().map(|x| x * x).sum();
        if vnorm2 <= f64::EPSILON {
            continue;
        }
        for j in 0..n {
            let dot: f64 = (k..m).map(|i| v[i] * q.get(i, j)).sum();
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                let val = q.get(i, j) - scale * v[i];
                q.set(i, j, val);
            }
        }
    }
    // Zero R's strict lower triangle (numerical dust from the updates).
    let mut r_out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_out.set(i, j, r.get(i, j));
        }
    }
    // Sign convention: non-negative diagonal of R (flip the matching Q
    // column), so QR of the identity is the identity.
    for k in 0..n {
        if r_out.get(k, k) < 0.0 {
            for j in k..n {
                let v = -r_out.get(k, j);
                r_out.set(k, j, v);
            }
            for i in 0..m {
                let v = -q.get(i, k);
                q.set(i, k, v);
            }
        }
    }
    (q, r_out)
}

/// A random diagonally dominant matrix: uniform entries with `n` added to
/// the diagonal, so every leading minor is safely nonsingular.
pub fn seeded_diag_dominant(n: usize, seed: u64) -> Matrix {
    let mut m = seeded_uniform(n, n, seed);
    for i in 0..n {
        let v = m.get(i, i) + n as f64;
        m.set(i, i, v);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, GemmKernel};
    use proptest::prelude::*;

    fn reconstruct(lu: &Matrix) -> Matrix {
        let l = unpack_lower_unit(lu);
        let u = unpack_upper(lu);
        let mut a = Matrix::zeros(lu.rows(), lu.cols());
        gemm(GemmKernel::Blocked, &l, &u, &mut a);
        a
    }

    #[test]
    fn lu_of_identity_is_identity() {
        let mut a = Matrix::identity(5);
        lu_nopiv_inplace(&mut a);
        assert!(unpack_lower_unit(&a).approx_eq(&Matrix::identity(5), 1e-12));
        assert!(unpack_upper(&a).approx_eq(&Matrix::identity(5), 1e-12));
    }

    #[test]
    fn lu_reconstructs_diag_dominant_matrix() {
        let a = seeded_diag_dominant(12, 7);
        let mut lu = a.clone();
        lu_nopiv_inplace(&mut lu);
        assert!(reconstruct(&lu).approx_eq(&a, 1e-9), "L·U must equal A");
    }

    #[test]
    #[should_panic(expected = "zero pivot")]
    fn lu_rejects_singular_leading_minor() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(2, 2, 1.0);
        lu_nopiv_inplace(&mut a);
    }

    #[test]
    fn trsm_left_solves_unit_lower_system() {
        let a = seeded_diag_dominant(6, 1);
        let mut lu = a.clone();
        lu_nopiv_inplace(&mut lu);
        let l = unpack_lower_unit(&lu);
        let x_true = seeded_uniform(6, 4, 2);
        let mut b = Matrix::zeros(6, 4);
        gemm(GemmKernel::Blocked, &l, &x_true, &mut b);
        trsm_left_lower_unit(&l, &mut b);
        assert!(b.approx_eq(&x_true, 1e-9));
    }

    #[test]
    fn trsm_right_solves_upper_system() {
        let a = seeded_diag_dominant(6, 3);
        let mut lu = a.clone();
        lu_nopiv_inplace(&mut lu);
        let u = unpack_upper(&lu);
        let x_true = seeded_uniform(4, 6, 4);
        let mut b = Matrix::zeros(4, 6);
        gemm(GemmKernel::Blocked, &x_true, &u, &mut b);
        trsm_right_upper(&u, &mut b);
        assert!(b.approx_eq(&x_true, 1e-9));
    }

    #[test]
    fn diag_dominant_matrices_are_dominant() {
        let m = seeded_diag_dominant(10, 5);
        for i in 0..10 {
            let off: f64 = (0..10).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
            assert!(m.get(i, i).abs() > off, "row {i} not dominant");
        }
    }

    #[test]
    fn qr_of_identity_is_identity() {
        let (q, r) = qr_thin(&Matrix::identity(5));
        assert!(q.approx_eq(&Matrix::identity(5), 1e-12));
        assert!(r.approx_eq(&Matrix::identity(5), 1e-12));
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = seeded_uniform(12, 5, 31);
        let (q, r) = qr_thin(&a);
        let mut qr = Matrix::zeros(12, 5);
        gemm(GemmKernel::Blocked, &q, &r, &mut qr);
        assert!(
            qr.approx_eq(&a, 1e-9),
            "QR must equal A: {}",
            qr.max_abs_diff(&a)
        );
    }

    #[test]
    fn qr_q_has_orthonormal_columns() {
        let a = seeded_uniform(10, 4, 32);
        let (q, _) = qr_thin(&a);
        let mut qtq = Matrix::zeros(4, 4);
        gemm(GemmKernel::Blocked, &q.transpose(), &q, &mut qtq);
        assert!(qtq.approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let a = seeded_uniform(8, 8, 33);
        let (_, r) = qr_thin(&a);
        for i in 1..8 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0, "R[{i}][{j}] below diagonal");
            }
        }
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn qr_rejects_wide_matrices() {
        let _ = qr_thin(&Matrix::zeros(3, 5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn qr_roundtrips_random_tall_matrices(
            extra in 0usize..8, n in 1usize..8, seed in 0u64..300
        ) {
            let m = n + extra;
            let a = seeded_uniform(m, n, seed);
            let (q, r) = qr_thin(&a);
            let mut qr = Matrix::zeros(m, n);
            gemm(GemmKernel::Blocked, &q, &r, &mut qr);
            prop_assert!(qr.approx_eq(&a, 1e-8));
            let mut qtq = Matrix::zeros(n, n);
            gemm(GemmKernel::Blocked, &q.transpose(), &q, &mut qtq);
            prop_assert!(qtq.approx_eq(&Matrix::identity(n), 1e-8));
        }

        #[test]
        fn lu_roundtrips_random_dominant_matrices(n in 1usize..16, seed in 0u64..500) {
            let a = seeded_diag_dominant(n, seed);
            let mut lu = a.clone();
            lu_nopiv_inplace(&mut lu);
            prop_assert!(reconstruct(&lu).approx_eq(&a, 1e-8));
        }

        #[test]
        fn trsms_invert_their_multiplications(n in 1usize..10, m in 1usize..8, seed in 0u64..500) {
            let base = seeded_diag_dominant(n, seed);
            let mut lu = base.clone();
            lu_nopiv_inplace(&mut lu);
            let l = unpack_lower_unit(&lu);
            let u = unpack_upper(&lu);

            let x = seeded_uniform(n, m, seed.wrapping_add(9));
            let mut bl = Matrix::zeros(n, m);
            gemm(GemmKernel::Blocked, &l, &x, &mut bl);
            trsm_left_lower_unit(&l, &mut bl);
            prop_assert!(bl.approx_eq(&x, 1e-8));

            let y = seeded_uniform(m, n, seed.wrapping_add(10));
            let mut br = Matrix::zeros(m, n);
            gemm(GemmKernel::Blocked, &y, &u, &mut br);
            trsm_right_upper(&u, &mut br);
            prop_assert!(br.approx_eq(&y, 1e-8));
        }
    }
}
