//! Dense matrices, 2-D block distributions and local GEMM kernels.
//!
//! This crate is the numerical substrate of the HSUMMA reproduction. It
//! provides:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with block (panel)
//!   extraction and accumulation, the unit of data the distributed
//!   algorithms move around;
//! * [`mod@gemm`] — local matrix-multiply kernels (`C += A·B`): a naive
//!   reference, cache-blocked and thread-parallel baselines, and the
//!   default BLIS-style packed kernel (`MC/KC/NC` cache blocking over a
//!   register-blocked `MR×NR` microkernel) that stands in for the vendor
//!   DGEMM (ESSL / MKL) used in the paper;
//! * [`distribute`] — the two-dimensional block-checkerboard distribution
//!   used by SUMMA/HSUMMA, plus a block-cyclic distribution (the paper's
//!   future-work extension), with scatter/gather between a global matrix
//!   and per-rank local tiles;
//! * [`mod@sparse`] — [`sparse::CsrMatrix`] with serial SpGEMM/SDDMM
//!   reference kernels and the invertible CSR wire format the
//!   distributed sparse subsystem (`hsumma-sparse`) prices messages
//!   with (see `docs/sparse.md`).
//!
//! The crate has no knowledge of processes or networks; it is pure local
//! computation and layout.

pub mod dense;
pub mod distribute;
pub mod factor;
pub mod gemm;
pub mod generate;
pub mod ops;
pub mod sparse;
pub mod view;

pub use dense::Matrix;
pub use distribute::{BlockCyclicDist, BlockDist, BlockRange, GridShape};
pub use gemm::{gemm, gemm_scaled, GemmKernel, PackedParams};
pub use generate::{deterministic, random_uniform, seeded_uniform};
pub use sparse::{
    csr_nnz_from_wire, csr_wire_bytes, sddmm, seeded_sparse, spgemm, spgemm_pairs, CsrMatrix,
    SpGemmAcc,
};
pub use view::{gemm_view, MatrixView};
