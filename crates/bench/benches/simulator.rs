//! Throughput of the discrete-event simulator itself: how fast the
//! schedule replay runs at BlueGene/P-like rank counts. This is what
//! bounds the turnaround of the fig8/fig9 sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hsumma_core::simdrive::{sim_hsumma_sync, sim_summa_sync};
use hsumma_matrix::GridShape;
use hsumma_netsim::{Platform, SimBcast};

fn bench_sim(c: &mut Criterion) {
    let platform = Platform::bluegene_p_effective();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for side in [16usize, 32, 64] {
        let grid = GridShape::new(side, side);
        let n = side * 64;
        let b = 32;
        // One A-message + one B-message per rank per step, roughly.
        group.throughput(Throughput::Elements((grid.size() * n / b * 2) as u64));
        group.bench_with_input(
            BenchmarkId::new("summa_flat", grid.size()),
            &side,
            |bench, _| {
                bench.iter(|| sim_summa_sync(&platform, grid, n, b, SimBcast::Flat));
            },
        );
        let groups = GridShape::new(side / 4, side / 4);
        group.bench_with_input(
            BenchmarkId::new("hsumma_flat", grid.size()),
            &side,
            |bench, _| {
                bench.iter(|| {
                    sim_hsumma_sync(
                        &platform,
                        grid,
                        groups,
                        n,
                        b,
                        b,
                        SimBcast::Flat,
                        SimBcast::Flat,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
