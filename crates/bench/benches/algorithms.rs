//! Real (threaded) end-to-end comparison of the four distributed
//! multiplication algorithms, plus an HSUMMA group-count ablation — the
//! laptop-scale analogue of the paper's measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsumma_core::{cannon, fox, hsumma, summa, HierGrid, HsummaConfig, SummaConfig};
use hsumma_matrix::{seeded_uniform, BlockDist, GemmKernel, GridShape};
use hsumma_runtime::Runtime;

const N: usize = 256;

fn scattered(grid: GridShape) -> (Vec<hsumma_matrix::Matrix>, Vec<hsumma_matrix::Matrix>) {
    let a = seeded_uniform(N, N, 1);
    let b = seeded_uniform(N, N, 2);
    let dist = BlockDist::new(grid, N, N);
    (dist.scatter(&a), dist.scatter(&b))
}

fn bench_algorithms(c: &mut Criterion) {
    let grid = GridShape::new(4, 4);
    let (at, bt) = scattered(grid);
    let mut group = c.benchmark_group("distributed_matmul_4x4_n256");
    group.sample_size(10);

    group.bench_function("cannon", |bench| {
        bench.iter(|| {
            Runtime::run(grid.size(), |comm| {
                cannon(
                    comm,
                    grid,
                    N,
                    &at[comm.rank()].clone(),
                    &bt[comm.rank()].clone(),
                    GemmKernel::Blocked,
                )
            })
        });
    });
    group.bench_function("fox", |bench| {
        bench.iter(|| {
            Runtime::run(grid.size(), |comm| {
                fox(
                    comm,
                    grid,
                    N,
                    &at[comm.rank()].clone(),
                    &bt[comm.rank()].clone(),
                    GemmKernel::Blocked,
                )
            })
        });
    });
    let scfg = SummaConfig {
        block: 16,
        kernel: GemmKernel::Blocked,
        ..Default::default()
    };
    group.bench_function("summa_b16", |bench| {
        bench.iter(|| {
            Runtime::run(grid.size(), |comm| {
                summa(
                    comm,
                    grid,
                    N,
                    &at[comm.rank()].clone(),
                    &bt[comm.rank()].clone(),
                    &scfg,
                )
            })
        });
    });
    let hcfg = HsummaConfig {
        kernel: GemmKernel::Blocked,
        ..HsummaConfig::uniform(GridShape::new(2, 2), 16)
    };
    group.bench_function("hsumma_g4_b16", |bench| {
        bench.iter(|| {
            Runtime::run(grid.size(), |comm| {
                hsumma(
                    comm,
                    grid,
                    N,
                    &at[comm.rank()].clone(),
                    &bt[comm.rank()].clone(),
                    &hcfg,
                )
            })
        });
    });
    group.finish();
}

fn bench_hsumma_group_sweep(c: &mut Criterion) {
    let grid = GridShape::new(4, 4);
    let (at, bt) = scattered(grid);
    let mut group = c.benchmark_group("hsumma_group_ablation_4x4");
    group.sample_size(10);
    for (g, groups) in HierGrid::valid_group_counts(grid) {
        let cfg = HsummaConfig {
            kernel: GemmKernel::Blocked,
            ..HsummaConfig::uniform(groups, 16)
        };
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |bench, _| {
            bench.iter(|| {
                Runtime::run(grid.size(), |comm| {
                    hsumma(
                        comm,
                        grid,
                        N,
                        &at[comm.rank()].clone(),
                        &bt[comm.rank()].clone(),
                        &cfg,
                    )
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_hsumma_group_sweep);
criterion_main!(benches);
