//! Broadcast algorithms in the real threaded runtime (§II-B of the
//! paper): which schedule wins at which message size. Ablation for the
//! broadcast choices in SUMMA/HSUMMA configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hsumma_runtime::{collectives, BcastAlgorithm, Runtime};

fn bench_bcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcast_p8");
    group.sample_size(20);
    for &elems in &[1_024usize, 262_144] {
        group.throughput(Throughput::Bytes((elems * 8) as u64));
        for (name, algo) in [
            ("flat", BcastAlgorithm::Flat),
            ("binomial", BcastAlgorithm::Binomial),
            ("binary", BcastAlgorithm::Binary),
            ("ring", BcastAlgorithm::Ring),
            ("pipelined8", BcastAlgorithm::Pipelined { segments: 8 }),
            ("vdgeijn", BcastAlgorithm::ScatterAllgather),
        ] {
            group.bench_with_input(BenchmarkId::new(name, elems), &elems, |bench, &elems| {
                bench.iter(|| {
                    Runtime::run(8, |comm| {
                        let mut buf = if comm.rank() == 0 {
                            vec![1.0f64; elems]
                        } else {
                            vec![0.0f64; elems]
                        };
                        collectives::bcast_f64(comm, algo, 0, &mut buf);
                        buf[elems - 1]
                    })
                });
            });
        }
    }
    group.finish();
}

fn bench_barrier_and_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_p8");
    group.sample_size(20);
    group.bench_function("barrier", |bench| {
        bench.iter(|| {
            Runtime::run(8, |comm| {
                collectives::barrier(comm);
            })
        });
    });
    group.bench_function("allreduce_sum", |bench| {
        bench.iter(|| {
            Runtime::run(8, |comm| {
                collectives::allreduce(comm, comm.rank() as u64, |a, b| a + b)
            })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bcast, bench_barrier_and_reduce);
criterion_main!(benches);
