//! Broadcast algorithms in the real threaded runtime (§II-B of the
//! paper): which schedule wins at which message size. Ablation for the
//! broadcast choices in SUMMA/HSUMMA configurations, plus the clean-path
//! guard for the fallible-communication refactor: a broadcast under an
//! armed deadline (and an empty fault plan) must cost what the unbounded
//! one costs (`BENCH_faults.json`, via `--bin fault_overhead`, records
//! the same comparison as a number).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hsumma_runtime::{collectives, BcastAlgorithm, FaultPlan, JobOptions, Runtime};
use hsumma_trace::Tracer;
use std::sync::Arc;
use std::time::Duration;

fn bench_bcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcast_p8");
    group.sample_size(20);
    for &elems in &[1_024usize, 262_144] {
        group.throughput(Throughput::Bytes((elems * 8) as u64));
        for (name, algo) in [
            ("flat", BcastAlgorithm::Flat),
            ("binomial", BcastAlgorithm::Binomial),
            ("binary", BcastAlgorithm::Binary),
            ("ring", BcastAlgorithm::Ring),
            ("pipelined8", BcastAlgorithm::Pipelined { segments: 8 }),
            ("vdgeijn", BcastAlgorithm::ScatterAllgather),
        ] {
            group.bench_with_input(BenchmarkId::new(name, elems), &elems, |bench, &elems| {
                bench.iter(|| {
                    Runtime::run(8, |comm| {
                        let mut buf = if comm.rank() == 0 {
                            vec![1.0f64; elems]
                        } else {
                            vec![0.0f64; elems]
                        };
                        collectives::bcast_f64(comm, algo, 0, &mut buf).unwrap();
                        buf[elems - 1]
                    })
                });
            });
        }
    }
    group.finish();
}

fn bench_barrier_and_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_p8");
    group.sample_size(20);
    group.bench_function("barrier", |bench| {
        bench.iter(|| {
            Runtime::run(8, |comm| {
                collectives::barrier(comm).unwrap();
            })
        });
    });
    group.bench_function("allreduce_sum", |bench| {
        bench.iter(|| {
            Runtime::run(8, |comm| {
                collectives::allreduce(comm, comm.rank() as u64, |a, b| a + b)
            })
        });
    });
    group.finish();
}

/// The pay-as-you-go claim, measured: the same binomial broadcast with
/// no failure policy, with an armed 30 s deadline, and with a deadline
/// plus an (empty) fault-injection cursor at the send path. Every
/// blocking wait checks the policy, so any busy-wait or per-message
/// regression shows up here as a gap between the three bars.
fn bench_deadline_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcast_deadline_p8");
    group.sample_size(20);
    let elems = 262_144usize;
    group.throughput(Throughput::Bytes((elems * 8) as u64));
    let cases = [
        ("unbounded", JobOptions::default()),
        (
            "deadline",
            JobOptions::default().with_deadline(Duration::from_secs(30)),
        ),
        (
            "deadline_faultplan",
            JobOptions::default()
                .with_deadline(Duration::from_secs(30))
                .with_faults(Arc::new(FaultPlan::new())),
        ),
    ];
    for (name, opts) in cases {
        group.bench_with_input(BenchmarkId::new(name, elems), &opts, |bench, opts| {
            bench.iter(|| {
                Runtime::try_run_opts(8, &Tracer::disabled(), opts, |comm| {
                    let mut buf = if comm.rank() == 0 {
                        vec![1.0f64; elems]
                    } else {
                        vec![0.0f64; elems]
                    };
                    collectives::bcast_f64(comm, BcastAlgorithm::Binomial, 0, &mut buf).unwrap();
                    buf[elems - 1]
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bcast,
    bench_barrier_and_reduce,
    bench_deadline_overhead
);
criterion_main!(benches);
