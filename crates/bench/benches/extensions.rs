//! Criterion benches for the extension kernels: distributed block LU
//! (flat vs hierarchical), the 2.5D algorithm, and the zero-copy view
//! GEMM vs panel copies.

use criterion::{criterion_group, criterion_main, Criterion};
use hsumma_core::lu::{block_lu, LuConfig};
use hsumma_core::summa::SummaConfig;
use hsumma_core::twodotfive::{coords_3d, twodotfive, TwoDotFiveConfig};
use hsumma_matrix::factor::seeded_diag_dominant;
use hsumma_matrix::{gemm, gemm_view, seeded_uniform, BlockDist, GemmKernel, GridShape, Matrix};
use hsumma_runtime::Runtime;

fn bench_lu(c: &mut Criterion) {
    let grid = GridShape::new(4, 4);
    let n = 256;
    let a = seeded_diag_dominant(n, 1);
    let tiles = BlockDist::new(grid, n, n).scatter(&a);
    let mut group = c.benchmark_group("block_lu_4x4_n256");
    group.sample_size(10);
    for (name, groups) in [("flat", None), ("hier_2x2", Some(GridShape::new(2, 2)))] {
        let cfg = LuConfig {
            block: 16,
            kernel: GemmKernel::Blocked,
            groups,
            ..Default::default()
        };
        group.bench_function(name, |bench| {
            bench.iter(|| {
                Runtime::run(grid.size(), |comm| {
                    block_lu(comm, grid, n, &tiles[comm.rank()].clone(), &cfg).unwrap()
                })
            });
        });
    }
    group.finish();
}

fn bench_twodotfive(c: &mut Criterion) {
    let q = 2;
    let n = 256;
    let grid = GridShape::new(q, q);
    let a = seeded_uniform(n, n, 2);
    let b = seeded_uniform(n, n, 3);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&b);
    let mut group = c.benchmark_group("twodotfive_q2_n256");
    group.sample_size(10);
    for c_factor in [1usize, 2, 4] {
        let cfg = TwoDotFiveConfig {
            q,
            c: c_factor,
            summa: SummaConfig {
                block: 16,
                kernel: GemmKernel::Blocked,
                ..Default::default()
            },
        };
        group.bench_function(format!("c{c_factor}"), |bench| {
            bench.iter(|| {
                Runtime::run(q * q * c_factor, |comm| {
                    let (layer, i, j) = coords_3d(comm.rank(), q);
                    let (ai, bi) = if layer == 0 {
                        (at[grid.rank(i, j)].clone(), bt[grid.rank(i, j)].clone())
                    } else {
                        let (th, tw) = dist.tile_shape();
                        (Matrix::zeros(th, tw), Matrix::zeros(th, tw))
                    };
                    twodotfive(comm, n, &ai, &bi, &cfg).unwrap()
                })
            });
        });
    }
    group.finish();
}

fn bench_view_vs_copy(c: &mut Criterion) {
    // Multiply an embedded 192x192 block: via copied panels vs views.
    let parent_a = seeded_uniform(256, 256, 4);
    let parent_b = seeded_uniform(256, 256, 5);
    let mut group = c.benchmark_group("submatrix_gemm_192");
    group.bench_function("copy_then_gemm", |bench| {
        bench.iter(|| {
            let a = parent_a.block(32, 32, 192, 192);
            let b = parent_b.block(32, 32, 192, 192);
            let mut c = Matrix::zeros(192, 192);
            gemm(GemmKernel::Blocked, &a, &b, &mut c);
            c
        });
    });
    group.bench_function("gemm_view", |bench| {
        bench.iter(|| {
            let a = parent_a.block_view(32, 32, 192, 192);
            let b = parent_b.block_view(32, 32, 192, 192);
            let mut c = Matrix::zeros(192, 192);
            gemm_view(&a, &b, &mut c);
            c
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lu, bench_twodotfive, bench_view_vs_copy);
criterion_main!(benches);
