//! Local GEMM kernel comparison — the substrate that stands in for
//! ESSL/MKL DGEMM. Ablation for the kernel choice in `hsumma-matrix`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hsumma_matrix::{gemm, seeded_uniform, GemmKernel, Matrix};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [64usize, 128, 256] {
        let a = seeded_uniform(n, n, 1);
        let b = seeded_uniform(n, n, 2);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        for (name, kernel) in [
            ("naive", GemmKernel::Naive),
            ("blocked", GemmKernel::Blocked),
            ("parallel", GemmKernel::Parallel),
        ] {
            // The naive kernel is the correctness oracle; cap its size so
            // the suite stays fast.
            if kernel == GemmKernel::Naive && n > 128 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut c = Matrix::zeros(n, n);
                    gemm(kernel, &a, &b, &mut c);
                    c
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
