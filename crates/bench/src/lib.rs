//! Shared harness for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` (see
//! `DESIGN.md` for the index); this library holds what they share:
//! platform profiles, grid factorization, and plain-text table/series
//! rendering so the binaries' stdout can be diffed against
//! `EXPERIMENTS.md`.

use hsumma_matrix::GridShape;
use hsumma_model::ModelParams;
use hsumma_netsim::{Platform, SimBcast};

/// How the simulator prices communication for a platform.
///
/// * [`Profile::Ideal`] — the paper's §IV assumptions: its quoted
///   `(α, β)`, contention-free links, van de Geijn long-message broadcast
///   (what MPICH/BG-MPI select at these panel sizes). This is the profile
///   the *analytic model* describes; it reproduces the paper's predicted
///   shapes but not its measured magnitudes.
/// * [`Profile::Measured`] — effective parameters *fitted to the paper's
///   own measured SUMMA times* (never to HSUMMA, which therefore stays a
///   prediction), priced with a serialized (flat) broadcast: on both test
///   platforms, MB-size broadcasts over wide communicators were limited
///   by root injection bandwidth and shared links, making the effective
///   cost per process nearly linear in the communicator width — the
///   congestion effect P. Balaji et al. describe (cited in §V-B as the
///   source of the "zigzags"). Both profiles use blocking-collective
///   (per-step synchronized) semantics, matching how the paper measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Paper parameters, contention-free, van de Geijn broadcast.
    Ideal,
    /// Measured-effective parameters, serialized broadcast.
    Measured,
}

/// Which physical platform a figure simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Machine {
    /// Grid5000 Graphene cluster (Figs. 5–7).
    Grid5000,
    /// Shaheen BlueGene/P (Figs. 8–9, headline).
    BlueGeneP,
}

impl Profile {
    /// The broadcast schedule the profile prices with.
    pub fn bcast(&self) -> SimBcast {
        match self {
            Profile::Ideal => SimBcast::ScatterAllgather,
            Profile::Measured => SimBcast::Flat,
        }
    }

    /// The platform parameters for a machine under this profile.
    pub fn platform(&self, machine: Machine) -> Platform {
        match (self, machine) {
            (Profile::Ideal, Machine::Grid5000) => Platform::grid5000(),
            (Profile::Ideal, Machine::BlueGeneP) => Platform::bluegene_p(),
            (Profile::Measured, Machine::Grid5000) => Platform::grid5000_effective(),
            (Profile::Measured, Machine::BlueGeneP) => Platform::bluegene_p_effective(),
        }
    }

    /// Human-readable label used in report headers.
    pub fn label(&self) -> &'static str {
        match self {
            Profile::Ideal => "ideal (paper parameters, van de Geijn bcast)",
            Profile::Measured => "measured-effective (fitted to SUMMA, serialized bcast)",
        }
    }
}

/// A full figure-style sweep: SUMMA plus HSUMMA at every power-of-two
/// group count, under blocking-collective semantics.
pub struct FigureSweep {
    /// SUMMA's simulated timings.
    pub summa: hsumma_netsim::SimReport,
    /// HSUMMA timings per group count.
    pub points: Vec<hsumma_core::tuning::GroupPoint>,
}

/// Runs the standard figure sweep for `p` cores, `n × n` operands and
/// block `b = B` under `profile` on `machine`.
pub fn run_sweep(profile: Profile, machine: Machine, n: usize, p: usize, b: usize) -> FigureSweep {
    let platform = profile.platform(machine);
    let grid = grid_for(p);
    let bcast = profile.bcast();
    let summa = hsumma_core::simdrive::sim_summa_sync(&platform, grid, n, b, bcast);
    let points = hsumma_core::tuning::sweep_groups_with(
        &platform,
        grid,
        n,
        b,
        b,
        bcast,
        bcast,
        &hsumma_core::tuning::power_of_two_gs(p),
        true,
    );
    FigureSweep { summa, points }
}

/// The most-square `s × t` grid for `p` processors with `s ≤ t` (the
/// arrangement used for non-square core counts like 128 or 2048).
pub fn grid_for(p: usize) -> GridShape {
    let mut s = (p as f64).sqrt() as usize;
    while s > 1 && !p.is_multiple_of(s) {
        s -= 1;
    }
    GridShape::new(s.max(1), p / s.max(1))
}

/// Converts a simulator platform into analytic-model parameters.
pub fn model_params(platform: &Platform) -> ModelParams {
    ModelParams {
        alpha: platform.net.alpha,
        beta: platform.net.beta,
        gamma: platform.gamma,
    }
}

/// Renders rows as an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

/// Formats seconds with 4 significant digits.
pub fn secs(t: f64) -> String {
    format!("{t:.4}")
}

/// Rewrites one named top-level section of a JSON artifact file,
/// preserving every other section verbatim.
///
/// `BENCH_serve.json` is shared by two binaries (`serve_throughput`
/// writes `"throughput"`, `sched_bench` writes `"sched"`), each of which
/// must be re-runnable without clobbering the other's results. `body`
/// must be a complete JSON value (normally a `{...}` object). Files
/// whose top level is not an object of sections — e.g. the flat
/// single-object artifacts older revisions wrote — are replaced
/// wholesale, upgrading them to the sectioned layout.
pub fn write_bench_section(path: &str, section: &str, body: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut sections: Vec<(String, String)> = parse_sections(&existing).unwrap_or_default();
    match sections.iter_mut().find(|(name, _)| name == section) {
        Some((_, value)) => *value = body.to_string(),
        None => sections.push((section.to_string(), body.to_string())),
    }
    let mut out = String::from("{\n");
    for (i, (name, value)) in sections.iter().enumerate() {
        let sep = if i + 1 < sections.len() { "," } else { "" };
        out.push_str(&format!("\"{name}\": {value}{sep}\n"));
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Splits `{"a": <value>, "b": <value>}` into its top-level
/// `(name, value)` pairs, values verbatim. Returns `None` when the text
/// is not a two-level section object (then the caller starts fresh).
fn parse_sections(text: &str) -> Option<Vec<(String, String)>> {
    let inner = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut sections = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let name_end = rest.find('"')?;
        let name = &rest[..name_end];
        rest = rest[name_end + 1..].trim_start().strip_prefix(':')?;
        rest = rest.trim_start();
        // The value runs to the top-level comma: track nesting and
        // strings so embedded commas/braces don't end it early.
        let (mut depth, mut in_str, mut escape) = (0i32, false, false);
        let mut end = rest.len();
        for (i, c) in rest.char_indices() {
            if in_str {
                match c {
                    _ if escape => escape = false,
                    '\\' => escape = true,
                    '"' => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                ',' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        if depth > 0 || in_str {
            return None;
        }
        sections.push((name.to_string(), rest[..end].trim().to_string()));
        rest = rest[end..]
            .trim_start()
            .trim_start_matches(',')
            .trim_start();
    }
    // A flat artifact ({"p": 16, ...}) parses as scalar "sections";
    // treat anything with a non-object, non-array value as not sectioned.
    if sections
        .iter()
        .all(|(_, v)| v.starts_with('{') || v.starts_with('['))
    {
        Some(sections)
    } else {
        None
    }
}

/// Formats a ratio like `2.08x`.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_for_powers_of_two() {
        assert_eq!(grid_for(16), GridShape::new(4, 4));
        assert_eq!(grid_for(128), GridShape::new(8, 16));
        assert_eq!(grid_for(2048), GridShape::new(32, 64));
        assert_eq!(grid_for(16384), GridShape::new(128, 128));
    }

    #[test]
    fn grid_for_handles_odd_counts() {
        let g = grid_for(12);
        assert_eq!(g.size(), 12);
        assert!(g.rows <= g.cols);
        assert_eq!(grid_for(1), GridShape::new(1, 1));
        assert_eq!(grid_for(7), GridShape::new(1, 7));
    }

    #[test]
    fn bench_sections_update_without_clobbering_each_other() {
        let path = std::env::temp_dir().join(format!("bench_sections_{}.json", std::process::id()));
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        // Fresh file: the first writer creates the sectioned layout.
        write_bench_section(path, "throughput", "{\n  \"jobs_per_s\": 100.0\n}").unwrap();
        // A second section lands beside it.
        write_bench_section(path, "sched", "{\n  \"p99_ms\": [1, 2]\n}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"throughput\"") && text.contains("\"sched\""));
        // Rewriting one section preserves the other verbatim.
        write_bench_section(path, "throughput", "{\n  \"jobs_per_s\": 250.0\n}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("250.0") && !text.contains("100.0"));
        assert!(text.contains("\"p99_ms\": [1, 2]"));
        // A legacy flat artifact is upgraded wholesale, not merged.
        std::fs::write(path, "{\n  \"p\": 16,\n  \"plan\": \"cannon\"\n}").unwrap();
        write_bench_section(path, "sched", "{\"misses\": 0}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"sched\"") && !text.contains("cannon"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["G", "time"],
            &[
                vec!["1".into(), "10.5".into()],
                vec!["128".into(), "3.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('G') && lines[0].contains("time"));
        assert!(lines[3].contains("128"));
    }

    #[test]
    fn model_params_copy_platform_fields() {
        let p = Platform::bluegene_p();
        let m = model_params(&p);
        assert_eq!(m.alpha, p.net.alpha);
        assert_eq!(m.beta, p.net.beta);
        assert_eq!(m.gamma, p.gamma);
    }

    #[test]
    fn profiles_map_to_distinct_platforms_and_bcasts() {
        for machine in [Machine::Grid5000, Machine::BlueGeneP] {
            let ideal = Profile::Ideal.platform(machine);
            let measured = Profile::Measured.platform(machine);
            assert_ne!(ideal.net.beta, measured.net.beta, "{machine:?}");
        }
        assert_ne!(Profile::Ideal.bcast(), Profile::Measured.bcast());
        assert!(Profile::Measured.label().contains("fitted"));
    }

    #[test]
    fn run_sweep_produces_summa_matching_g1_endpoint() {
        let sweep = run_sweep(Profile::Measured, Machine::Grid5000, 128, 16, 8);
        let g1 = sweep.points.first().expect("G=1 present");
        assert_eq!(g1.g, 1);
        let rel =
            (g1.report.comm_time - sweep.summa.comm_time).abs() / sweep.summa.comm_time.max(1e-12);
        assert!(rel < 1e-9, "G=1 must equal SUMMA");
        // Powers of two up to p, each with a valid factorization.
        assert!(sweep.points.iter().all(|pt| pt.g.is_power_of_two()));
        assert_eq!(sweep.points.last().map(|pt| pt.g), Some(16));
    }
}
