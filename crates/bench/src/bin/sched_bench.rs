//! Scheduler benchmark: EDF + gang scheduling vs the FIFO whole-pool
//! baseline on an open-loop arrival trace.
//!
//! The trace mixes a few *big* deadline-carrying jobs (sized to want the
//! whole pool) into a stream of *small* jobs whose strong-scaling range
//! stops well short of it. Arrivals are open-loop — jobs are submitted
//! at their scheduled instants regardless of completions, the regime a
//! serving system actually faces — and both legs replay the identical
//! trace:
//!
//! * **fifo**: [`SchedPolicy::Fifo`] + [`Admission::Open`] — strict
//!   submission order, every job on the whole pool (the pre-scheduler
//!   service);
//! * **edf**: [`SchedPolicy::EdfGang`] + [`Admission::Feasible`] — the
//!   deadline class jumps the queue, small jobs gang onto carved
//!   sub-pools sized by the planner's strong-scaling curve.
//!
//! Reported per leg: p50/p99 end-to-end latency (completion − arrival,
//! queue time included), throughput over the leg's makespan, and
//! deadline misses (a deadline job that failed *or* finished later than
//! arrival + deadline). The edf leg also demonstrates feasibility
//! admission: a job with an absurd deadline must be rejected at submit
//! with the predicted-vs-deadline margin.
//!
//! Results go to stdout and into the `"sched"` section of
//! `BENCH_serve.json` (the `"throughput"` section belongs to
//! `serve_throughput`). `--smoke` shrinks the pool and trace for CI.

use hsumma_bench::{render_table, write_bench_section};
use hsumma_matrix::{seeded_uniform, GridShape, Matrix};
use hsumma_serve::{Admission, GemmServer, JobSpec, SchedPolicy, ServerConfig, SubmitError};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One arrival in the open-loop trace.
struct TraceJob {
    /// Submission instant, relative to the leg's start.
    at: Duration,
    n: usize,
    deadline: Option<Duration>,
    seed: u64,
}

struct Workload {
    grid: GridShape,
    big_n: usize,
    small_n: usize,
    bigs: usize,
    smalls: usize,
    /// Gap between big-job arrivals; smalls fill the space between.
    big_every: Duration,
    deadline: Duration,
}

/// SplitMix64 — deterministic jitter for the arrival schedule.
fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The mixed trace: bigs on a fixed cadence, smalls jittered uniformly
/// over the same span, interleaved in arrival order.
fn build_trace(w: &Workload) -> Vec<TraceJob> {
    let span = w.big_every.as_micros() as u64 * w.bigs as u64;
    let mut rng = 0x5eed_5eedu64;
    let mut jobs = Vec::new();
    for i in 0..w.bigs {
        jobs.push(TraceJob {
            at: w.big_every * i as u32,
            n: w.big_n,
            deadline: Some(w.deadline),
            seed: 2 * i as u64,
        });
    }
    for i in 0..w.smalls {
        let at = Duration::from_micros(splitmix(&mut rng) % span);
        jobs.push(TraceJob {
            at,
            n: w.small_n,
            deadline: None,
            seed: 1000 + 2 * i as u64,
        });
    }
    jobs.sort_by_key(|j| j.at);
    jobs
}

struct LegResult {
    label: &'static str,
    p50: Duration,
    p99: Duration,
    jobs_per_s: f64,
    completed: usize,
    misses: usize,
    rejected: usize,
    gangs: u64,
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Replays the trace open-loop against one server configuration.
fn run_leg(
    label: &'static str,
    w: &Workload,
    trace: &[TraceJob],
    sched: SchedPolicy,
    admission: Admission,
    operands: &[(usize, Matrix, Matrix)],
) -> LegResult {
    let server = GemmServer::new(ServerConfig {
        queue_capacity: trace.len(),
        sched,
        admission,
        ..ServerConfig::new(w.grid)
    })
    .expect("spawn rank pool");

    let start = Instant::now();
    let mut rejected = 0usize;
    let mut results: Vec<(Duration, bool, bool, Instant)> = Vec::new();
    std::thread::scope(|scope| {
        let mut waiters = Vec::new();
        for job in trace {
            if let Some(wait) = job.at.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            let (_, a, b) = operands
                .iter()
                .find(|(s, _, _)| *s == job.seed as usize)
                .expect("operands prebuilt for every trace seed");
            let mut spec = JobSpec::square(job.n);
            if let Some(d) = job.deadline {
                spec = spec.with_deadline(d);
            }
            let arrival = Instant::now();
            match server.submit(spec, a.clone(), b.clone()) {
                Ok(handle) => {
                    let deadline = job.deadline;
                    waiters.push(scope.spawn(move || {
                        let ok = handle.wait().is_ok();
                        let latency = arrival.elapsed();
                        let missed = deadline.is_some_and(|d| !ok || latency > d);
                        (latency, ok, missed, Instant::now())
                    }));
                }
                Err(e) => {
                    rejected += 1;
                    eprintln!("[{label}] rejected: {e}");
                }
            }
        }
        results.extend(
            waiters
                .into_iter()
                .map(|h| h.join().expect("waiter thread")),
        );
    });
    let stats = server.stats();
    drop(server);

    let mut latencies: Vec<Duration> = results
        .iter()
        .filter(|(_, ok, _, _)| *ok)
        .map(|(l, _, _, _)| *l)
        .collect();
    latencies.sort();
    let completed = latencies.len();
    let misses = results.iter().filter(|(_, _, m, _)| *m).count();
    let makespan = results
        .iter()
        .map(|(_, _, _, done)| done.duration_since(start))
        .max()
        .unwrap_or_default();
    LegResult {
        label,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        jobs_per_s: completed as f64 / makespan.as_secs_f64(),
        completed,
        misses,
        rejected,
        gangs: stats.gangs,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let w = if smoke {
        Workload {
            grid: GridShape::new(2, 4),
            big_n: 512,
            small_n: 64,
            bigs: 2,
            smalls: 12,
            big_every: Duration::from_millis(150),
            deadline: Duration::from_secs(2),
        }
    } else {
        // Arrivals outpace the FIFO whole-pool service rate (the queue
        // grows over the trace), so the makespan — and jobs/s — is set
        // by scheduling efficiency, not by the arrival clock.
        Workload {
            grid: GridShape::new(8, 8),
            big_n: 512,
            small_n: 256,
            bigs: 6,
            smalls: 120,
            big_every: Duration::from_millis(150),
            deadline: Duration::from_secs(2),
        }
    };
    let p = w.grid.size();
    println!(
        "Scheduler bench: open-loop trace of {} big (n={}, deadline {:?}) + {} small (n={}) \
         jobs on p={} ({}x{} grid){}\n",
        w.bigs,
        w.big_n,
        w.deadline,
        w.smalls,
        w.small_n,
        p,
        w.grid.rows,
        w.grid.cols,
        if smoke { " [smoke]" } else { "" }
    );

    let trace = build_trace(&w);
    // Operands prebuilt outside both legs so neither pays generation.
    let operands: Vec<(usize, Matrix, Matrix)> = trace
        .iter()
        .map(|j| {
            (
                j.seed as usize,
                seeded_uniform(j.n, j.n, j.seed),
                seeded_uniform(j.n, j.n, j.seed + 1),
            )
        })
        .collect();

    let fifo = run_leg(
        "fifo",
        &w,
        &trace,
        SchedPolicy::Fifo,
        Admission::Open,
        &operands,
    );
    let edf = run_leg(
        "edf",
        &w,
        &trace,
        SchedPolicy::EdfGang,
        Admission::Feasible,
        &operands,
    );

    // Feasibility-admission demonstration: an absurd deadline on a big
    // job must bounce at submit with the margin, not enter the queue.
    let demo = GemmServer::new(ServerConfig::new(w.grid)).expect("spawn rank pool");
    let a = seeded_uniform(w.big_n, w.big_n, 7001);
    let b = seeded_uniform(w.big_n, w.big_n, 7002);
    let absurd = Duration::from_micros(1);
    let (inf_predicted, inf_deadline) =
        match demo.submit(JobSpec::square(w.big_n).with_deadline(absurd), a, b) {
            Err(SubmitError::Infeasible {
                predicted,
                deadline,
            }) => {
                println!(
                    "feasibility admission: n={} with {:?} deadline rejected at submit \
                 (predicted {:?})\n",
                    w.big_n, deadline, predicted
                );
                (predicted, deadline)
            }
            other => panic!("absurd deadline must be Infeasible, got {other:?}"),
        };
    drop(demo);

    let row = |r: &LegResult| {
        vec![
            r.label.into(),
            format!("{:.1}", r.p50.as_secs_f64() * 1e3),
            format!("{:.1}", r.p99.as_secs_f64() * 1e3),
            format!("{:.2}", r.jobs_per_s),
            r.completed.to_string(),
            r.misses.to_string(),
            r.rejected.to_string(),
            r.gangs.to_string(),
        ]
    };
    println!(
        "{}",
        render_table(
            &["leg", "p50 (ms)", "p99 (ms)", "jobs/s", "done", "misses", "rejected", "gangs"],
            &[row(&fifo), row(&edf)]
        )
    );
    let p99_better = edf.p99 < fifo.p99;
    let rate_better = edf.jobs_per_s > fifo.jobs_per_s;
    let misses_le = edf.misses <= fifo.misses;
    println!(
        "edf p99 better: {p99_better}   edf jobs/s better: {rate_better}   \
         edf misses ≤ fifo: {misses_le}"
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"p\": {p},\n  \"grid\": \"{}x{}\",\n  \"smoke\": {smoke},\n  \
         \"big_n\": {},\n  \"small_n\": {},\n  \"bigs\": {},\n  \"smalls\": {},\n  \
         \"deadline_s\": {:.3},\n",
        w.grid.rows,
        w.grid.cols,
        w.big_n,
        w.small_n,
        w.bigs,
        w.smalls,
        w.deadline.as_secs_f64()
    );
    for r in [&fifo, &edf] {
        let _ = write!(
            json,
            "  \"{0}_p50_ms\": {1:.3},\n  \"{0}_p99_ms\": {2:.3},\n  \
             \"{0}_jobs_per_s\": {3:.3},\n  \"{0}_completed\": {4},\n  \
             \"{0}_deadline_misses\": {5},\n  \"{0}_rejected\": {6},\n  \
             \"{0}_gangs\": {7},\n",
            r.label,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.jobs_per_s,
            r.completed,
            r.misses,
            r.rejected,
            r.gangs
        );
    }
    let _ = write!(
        json,
        "  \"infeasible_demo_predicted_s\": {:.6},\n  \
         \"infeasible_demo_deadline_s\": {:.6},\n  \
         \"infeasible_rejected_at_submit\": true,\n  \
         \"edf_p99_better\": {p99_better},\n  \"edf_jobs_per_s_better\": {rate_better},\n  \
         \"edf_misses_le_fifo\": {misses_le}\n}}",
        inf_predicted.as_secs_f64(),
        inf_deadline.as_secs_f64()
    );
    write_bench_section("BENCH_serve.json", "sched", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json (sched section)");
}
