//! Related-work comparison (§I context): where HSUMMA sits among
//! Cannon, Fox, the 3-D algorithm and the 2.5D algorithm — on both the
//! communication axis and the *memory* axis the paper argues on
//! ("the 2.5D algorithm can not be scalable on the future exascale
//! systems" because it needs `c` extra matrix replicas, §I).
//!
//! Analytic comparison at exascale parameters plus a simulated
//! comparison of the executable baselines at BG/P parameters.

use hsumma_bench::{render_table, Profile};
use hsumma_core::simdrive::{sim_cannon, sim_fox, sim_summa_sync};
use hsumma_core::tuning::{best_by_comm, power_of_two_gs, sweep_groups_with};
use hsumma_matrix::GridShape;
use hsumma_model::related::{
    cannon_cost, threed_cost, threed_memory_blowup, twodotfive_cost, twodotfive_memory_blowup,
};
use hsumma_model::{hsumma_cost, summa_cost, BcastModel, ModelParams};
use hsumma_netsim::SimBcast;

fn main() {
    // ---- analytic, exascale --------------------------------------------
    let params = ModelParams::exascale();
    let p = (1u64 << 20) as f64;
    let n = (1u64 << 22) as f64;
    let b = 256.0;

    println!("Related work at exascale parameters (analytic): p = 2^20, n = 2^22\n");
    let summa = summa_cost(&params, BcastModel::VanDeGeijn, n, p, b);
    let hsumma = hsumma_cost(
        &params,
        BcastModel::VanDeGeijn,
        BcastModel::VanDeGeijn,
        n,
        p,
        p.sqrt(),
        b,
        b,
    );
    let cannon = cannon_cost(&params, n, p);
    let threed = threed_cost(&params, n, p);
    let c = 16.0;
    let twofive = twodotfive_cost(&params, n, p, c);

    let rows = vec![
        vec![
            "SUMMA (vdG)".into(),
            format!("{:.3}", summa.comm()),
            "1x".into(),
        ],
        vec![
            format!("HSUMMA (G=√p)"),
            format!("{:.3}", hsumma.comm()),
            "1x".into(),
        ],
        vec![
            "Cannon".into(),
            format!("{:.3}", cannon.comm()),
            "1x".into(),
        ],
        vec![
            "3D".into(),
            format!("{:.3}", threed.comm()),
            format!("{:.0}x", threed_memory_blowup(p)),
        ],
        vec![
            format!("2.5D (c={c})"),
            format!("{:.3}", twofive.comm()),
            format!("{:.0}x", twodotfive_memory_blowup(c)),
        ],
    ];
    println!(
        "{}",
        render_table(&["algorithm", "comm (s)", "memory vs 2-D"], &rows)
    );
    println!("reading: 3D/2.5D buy communication with memory replicas the paper");
    println!("argues exascale nodes will not have; HSUMMA improves at 1x memory.\n");

    // ---- simulated baselines at BG/P scale ------------------------------
    let platform = Profile::Measured.platform(hsumma_bench::Machine::BlueGeneP);
    let q = 64usize; // 4096 cores, square for Cannon/Fox
    let n_sim = 16384usize;
    let b_sim = 256usize;
    let grid = GridShape::new(q, q);

    println!(
        "Simulated baselines on {} ({} cores), n = {n_sim} (measured-effective profile):\n",
        platform.name,
        q * q
    );
    let cannon_r = sim_cannon(&platform, q, n_sim, true);
    let fox_r = sim_fox(&platform, q, n_sim, SimBcast::Flat, true);
    let summa_r = sim_summa_sync(&platform, grid, n_sim, b_sim, SimBcast::Flat);
    let sweep = sweep_groups_with(
        &platform,
        grid,
        n_sim,
        b_sim,
        b_sim,
        SimBcast::Flat,
        SimBcast::Flat,
        &power_of_two_gs(q * q),
        true,
    );
    let hsumma_r = best_by_comm(&sweep);

    let rows = vec![
        vec![
            "Cannon".into(),
            format!("{:.3}", cannon_r.comm_time),
            format!("{:.3}", cannon_r.total_time),
        ],
        vec![
            "Fox".into(),
            format!("{:.3}", fox_r.comm_time),
            format!("{:.3}", fox_r.total_time),
        ],
        vec![
            "SUMMA".into(),
            format!("{:.3}", summa_r.comm_time),
            format!("{:.3}", summa_r.total_time),
        ],
        vec![
            format!("HSUMMA (G={})", hsumma_r.g),
            format!("{:.3}", hsumma_r.report.comm_time),
            format!("{:.3}", hsumma_r.report.total_time),
        ],
    ];
    println!(
        "{}",
        render_table(&["algorithm", "comm (s)", "total (s)"], &rows)
    );
    println!("Cannon/Fox shift whole tiles between neighbours (no wide broadcasts)");
    println!("but require square grids and one-tile-per-step granularity; HSUMMA");
    println!("keeps SUMMA's generality while closing the broadcast gap.");
}
