//! Table I: SUMMA vs HSUMMA cost terms under the binomial-tree broadcast.
//!
//! Evaluates the symbolic rows of Table I at the paper's two experimental
//! configurations. Key property of the binomial row: the latency and
//! bandwidth *multipliers* split as `log₂(p/G) + log₂(G) = log₂(p)`, so
//! under a purely logarithmic broadcast HSUMMA's two-level split is
//! cost-neutral — all of HSUMMA's advantage must come from broadcast
//! algorithms whose cost grows super-logarithmically (Table II).

use hsumma_bench::render_table;
use hsumma_model::{hsumma_cost, summa_cost, BcastModel, ModelParams};

fn emit(config: &str, params: &ModelParams, n: f64, p: f64, b: f64) {
    println!("-- {config}: n = {n}, p = {p}, b = B = {b} --");
    let g = p.sqrt();
    let summa = summa_cost(params, BcastModel::Binomial, n, p, b);
    let hsumma = hsumma_cost(
        params,
        BcastModel::Binomial,
        BcastModel::Binomial,
        n,
        p,
        g,
        b,
        b,
    );

    let rows = vec![
        vec![
            "SUMMA".to_string(),
            format!("{:.4e}", summa.compute),
            format!("{:.4e}", summa.latency),
            format!("{:.4e}", summa.bandwidth),
            format!("{:.4e}", summa.comm()),
        ],
        vec![
            format!("HSUMMA (G=√p={g})"),
            format!("{:.4e}", hsumma.compute),
            format!("{:.4e}", hsumma.latency),
            format!("{:.4e}", hsumma.bandwidth),
            format!("{:.4e}", hsumma.comm()),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "algorithm",
                "compute (s)",
                "latency (s)",
                "bandwidth (s)",
                "comm (s)"
            ],
            &rows
        )
    );

    // Table I's structural identity: multipliers add up to SUMMA's.
    let split = (p / g).log2() + g.log2();
    println!(
        "multiplier identity: log2(p/G) + log2(G) = {split} = log2(p) = {} -> \
         binomial HSUMMA comm == SUMMA comm (ratio {:.6})\n",
        p.log2(),
        hsumma.comm() / summa.comm()
    );
}

fn main() {
    println!("Table I — comparison with binomial tree broadcast (evaluated)\n");
    emit(
        "Grid5000 configuration",
        &ModelParams::grid5000(),
        8192.0,
        128.0,
        64.0,
    );
    emit(
        "BlueGene/P configuration",
        &ModelParams::bluegene_p(),
        65536.0,
        16384.0,
        256.0,
    );
}
