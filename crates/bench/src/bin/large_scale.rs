//! `large_scale` — the refactor's scale dividend: the algorithms that
//! previously ran only on the threaded runtime (2.5D, overlapped SUMMA,
//! block LU) now execute *unchanged* over simulated clocks at BlueGene/P
//! scale, because they are generic over the [`Communicator`] substrate.
//!
//! Each row below is the real schedule — every send, broadcast, reduce
//! and barrier the threaded run would perform — replayed with phantom
//! payloads on `p = 4096` simulated ranks (64 × 64 grid / 32 × 32 × 4
//! for 2.5D), priced with the paper's BlueGene/P `(α, β, γ)`.
//!
//! Since PR 10 a second table runs the same generic schedules at
//! `p = 2¹⁶` — past the thread-per-rank simulator's VM-map ceiling —
//! on the record-and-replay engine (`docs/simulation.md`): record each
//! rank's op program once, execute all of them on one thread.
//!
//! Output is appended (manually) to `EXPERIMENTS.md` § "Large-scale
//! substrate demo".
//!
//! [`Communicator`]: hsumma_core::Communicator

use hsumma_bench::{render_table, secs};
use hsumma_core::simdrive::{
    record_twodotfive, replay_on, sim_lu, sim_overlap, sim_summa, sim_summa_sync, sim_twodotfive,
};
use hsumma_core::{sim_hsumma_engine, sim_summa_engine, SimEngine, SummaConfig, TwoDotFiveConfig};
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_netsim::{Platform, SimBcast, SimNet, SimReport};
use hsumma_runtime::BcastAlgorithm;

const P: usize = 4096;
const N: usize = 8192;
const B: usize = 128;

fn row(name: &str, cfg: &str, r: &SimReport) -> Vec<String> {
    vec![
        name.to_string(),
        cfg.to_string(),
        secs(r.comm_time),
        secs(r.total_time),
        format!("{}", r.msgs),
        format!("{:.2}", r.bytes as f64 / 1e9),
    ]
}

fn main() {
    let platform = Platform::bluegene_p();
    let grid = GridShape::new(64, 64);
    println!("== generic schedules on simulated BlueGene/P: p = {P}, n = {N}, b = {B} ==\n");

    let mut rows = Vec::new();

    // Baselines: free-running and per-step-synchronized SUMMA.
    let summa = sim_summa(&platform, grid, N, B, SimBcast::Binomial);
    rows.push(row("summa", "64x64, free-run", &summa));
    let summa_sync = sim_summa_sync(&platform, grid, N, B, SimBcast::Binomial);
    rows.push(row("summa", "64x64, step-sync", &summa_sync));

    // Overlapped SUMMA: one-step lookahead hides panel transfers.
    let over = sim_overlap(&platform, grid, N, B, BcastAlgorithm::Binomial);
    rows.push(row("overlap", "64x64, lookahead 1", &over));

    // 2.5D with c = 1 (degenerate, SUMMA-shaped) and c = 4 replicas.
    let c1 = TwoDotFiveConfig {
        q: 64,
        c: 1,
        summa: SummaConfig {
            block: B,
            bcast: BcastAlgorithm::Binomial,
            kernel: GemmKernel::Blocked,
        },
    };
    let r1 = sim_twodotfive(&platform, N, &c1);
    rows.push(row("2.5d", "q=64, c=1", &r1));
    let c4 = TwoDotFiveConfig {
        q: 32,
        c: 4,
        summa: SummaConfig {
            block: B,
            bcast: BcastAlgorithm::Binomial,
            kernel: GemmKernel::Blocked,
        },
    };
    let r4 = sim_twodotfive(&platform, N, &c4);
    rows.push(row("2.5d", "q=32, c=4", &r4));

    // Block LU under serialized (root-injection-bound) panel broadcasts,
    // the regime the measured profiles exhibit: one-level vs 8x8 groups.
    let lu_flat = sim_lu(&platform, grid, N, B, SimBcast::Flat, None, true);
    rows.push(row("lu", "64x64, one level", &lu_flat));
    let lu_hier = sim_lu(
        &platform,
        grid,
        N,
        B,
        SimBcast::Flat,
        Some(GridShape::new(8, 8)),
        true,
    );
    rows.push(row("lu", "64x64, 8x8 groups", &lu_hier));

    println!(
        "{}",
        render_table(
            &["algorithm", "config", "comm s", "total s", "msgs", "GB"],
            &rows
        )
    );

    // The same schedules, four doublings past the thread ceiling, on
    // the record-and-replay engine. No threads: each row records every
    // rank's op program sequentially and replays all 65536 of them on
    // a single-threaded event loop.
    let rp = 1 << 16;
    let rgrid = GridShape::new(256, 256);
    let (rn, rb) = (16384, 64);
    println!("\n== same schedules, p = {rp} (replay engine) ==\n");
    let mut rrows = Vec::new();
    let rsumma = sim_summa_engine(
        SimEngine::Replay,
        &platform,
        rgrid,
        rn,
        rb,
        SimBcast::Binomial,
    );
    rrows.push(row("summa", "256x256, free-run", &rsumma));
    let rhsumma = sim_hsumma_engine(
        SimEngine::Replay,
        &platform,
        rgrid,
        GridShape::new(16, 16),
        rn,
        rb,
        rb,
        SimBcast::Binomial,
        SimBcast::Binomial,
    );
    rrows.push(row("hsumma", "G=256 (sqrt p)", &rhsumma));
    let rc4 = TwoDotFiveConfig {
        q: 128,
        c: 4,
        summa: SummaConfig {
            block: B,
            bcast: BcastAlgorithm::Binomial,
            kernel: GemmKernel::Blocked,
        },
    };
    let r25 = {
        let mut net = SimNet::new(rc4.q * rc4.q * rc4.c, platform.net);
        replay_on(&mut net, platform.gamma, &record_twodotfive(rn, &rc4))
    };
    rrows.push(row("2.5d", "q=128, c=4", &r25));
    println!(
        "{}",
        render_table(
            &["algorithm", "config", "comm s", "total s", "msgs", "GB"],
            &rrows
        )
    );

    println!(
        "overlap hides {:.1}% of synchronized SUMMA's makespan",
        (1.0 - over.total_time / summa_sync.total_time) * 100.0
    );
    println!(
        "2.5d c=4 cuts communication {:.2}x vs c=1 (memory cost: 4x replicas)",
        r1.comm_time / r4.comm_time
    );
    println!(
        "hierarchical LU panel broadcasts cut serialized comm {:.2}x",
        lu_flat.comm_time / lu_hier.comm_time
    );
}
