//! The paper's headline numbers (abstract / §VI): HSUMMA achieves
//! 2.08× less communication time than SUMMA on 2048 BlueGene/P cores and
//! 5.89× on 16384 cores; overall execution 1.2× and 2.36× less.
//!
//! Regenerates the two core counts under both simulator profiles and
//! prints paper-vs-simulated side by side.

use hsumma_bench::{render_table, run_sweep, secs, Machine, Profile};
use hsumma_core::tuning::best_by_comm;

struct PaperRow {
    p: usize,
    comm_gain: f64,
    total_gain: f64,
}

fn main() {
    let (n, b) = (65536usize, 256usize);
    let paper = [
        PaperRow {
            p: 2048,
            comm_gain: 2.08,
            total_gain: 1.2,
        },
        PaperRow {
            p: 16384,
            comm_gain: 5.89,
            total_gain: 2.36,
        },
    ];

    println!("Headline comparison — BlueGene/P, n = {n}, b = B = {b}\n");
    let mut rows = Vec::new();
    for profile in [Profile::Ideal, Profile::Measured] {
        for pr in &paper {
            let sweep = run_sweep(profile, Machine::BlueGeneP, n, pr.p, b);
            let best = best_by_comm(&sweep.points);
            rows.push(vec![
                match profile {
                    Profile::Ideal => "ideal",
                    Profile::Measured => "measured",
                }
                .to_string(),
                pr.p.to_string(),
                best.g.to_string(),
                format!("{:.2}x", sweep.summa.comm_time / best.report.comm_time),
                format!("{:.2}x", pr.comm_gain),
                format!("{:.2}x", sweep.summa.total_time / best.report.total_time),
                format!("{:.2}x", pr.total_gain),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "profile",
                "p",
                "best G",
                "comm gain (sim)",
                "comm gain (paper)",
                "total gain (sim)",
                "total gain (paper)",
            ],
            &rows
        )
    );

    // Absolute times at 16384 under the measured profile, next to the
    // paper's measurements.
    let sweep = run_sweep(Profile::Measured, Machine::BlueGeneP, n, 16384, b);
    let best = best_by_comm(&sweep.points);
    println!("\nabsolute times at p = 16384 (measured profile vs paper):");
    println!(
        "{}",
        render_table(
            &["quantity", "simulated (s)", "paper (s)"],
            &[
                vec![
                    "SUMMA total".into(),
                    secs(sweep.summa.total_time),
                    "50.2".into()
                ],
                vec![
                    "SUMMA comm".into(),
                    secs(sweep.summa.comm_time),
                    "36.46".into()
                ],
                vec![
                    "HSUMMA total".into(),
                    secs(best.report.total_time),
                    "21.26".into()
                ],
                vec![
                    "HSUMMA comm".into(),
                    secs(best.report.comm_time),
                    "6.19".into()
                ],
            ]
        )
    );
    println!("note: the measured profile is fitted to the SUMMA row only;");
    println!("the HSUMMA rows are predictions of the simulator.");
}
