//! Figure 7: scalability on Grid5000.
//!
//! Communication time of SUMMA and best-G HSUMMA against the number of
//! processes `p ∈ {16, 32, 64, 128}`, `b = B = 512`, `n = 8192`. Paper
//! result: equal on small platforms, HSUMMA pulling ahead as `p` grows.

use hsumma_bench::{grid_for, render_table, run_sweep, secs, Machine, Profile};
use hsumma_core::tuning::best_by_comm;

fn main() {
    let (n, b) = (8192usize, 512usize);
    println!("Figure 7 — SUMMA vs HSUMMA scalability on Grid5000 (simulated)");
    println!("b = B = {b}, n = {n}\n");

    for profile in [Profile::Ideal, Profile::Measured] {
        println!("== profile: {} ==", profile.label());
        let mut rows = Vec::new();
        for p in [16usize, 32, 64, 128] {
            let grid = grid_for(p);
            let sweep = run_sweep(profile, Machine::Grid5000, n, p, b);
            let best = best_by_comm(&sweep.points);
            rows.push(vec![
                p.to_string(),
                format!("{}x{}", grid.rows, grid.cols),
                secs(sweep.summa.comm_time),
                secs(best.report.comm_time),
                best.g.to_string(),
                format!("{:.2}x", sweep.summa.comm_time / best.report.comm_time),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "p",
                    "grid",
                    "SUMMA comm (s)",
                    "HSUMMA comm (s)",
                    "best G",
                    "gain"
                ],
                &rows
            )
        );
        println!();
    }
    println!("paper (measured): curves overlap at p=16..64 and separate at p=128;");
    println!("the trend 'HSUMMA more scalable' should be visible as growing gain.");
}
