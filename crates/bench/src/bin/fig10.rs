//! Figure 10: SUMMA and HSUMMA at `p = 2²⁰` — the paper's exascale
//! prediction, now backed by an *executed* schedule, not just the
//! closed form.
//!
//! Three layers, reported together:
//!
//! * **analytic sweep** — the paper's own theoretical figure:
//!   `p = 2²⁰, n = 2²², b = 256`, exascale roadmap parameters (500 ns
//!   latency, 100 GB/s links, 1 EFLOP/s aggregate), van de Geijn
//!   broadcast. Paper shape: SUMMA constant; HSUMMA U-shaped with its
//!   minimum at interior `G`, several times below SUMMA.
//! * **HSUMMA replay G-sweeps** — executed on the record-and-replay
//!   engine (bit-identical to the threaded simulator, but threadless:
//!   these rank counts would exhaust `vm.max_map_count` thread-per-rank).
//!   Binomial at `p = 2¹⁶` replays every `G` to *identical* comm time —
//!   the Table I cost-neutrality identity, executed; van de Geijn at
//!   `p = 2¹⁴` shows the paper's U-curve with its interior minimum.
//! * **COSMA replay ladder to `p = 2²⁰`** — the brick schedule recorded
//!   once per point and replayed on the event loop at 2¹⁶, 2¹⁸ and the
//!   paper's full 2²⁰ ranks, with the measured wire bytes held against
//!   [`cosma_volume`]'s closed form (exact on dividing shapes, < 2%
//!   on awkward ones).
//!
//! Results go to stdout and the `"scale"` section of `BENCH_scale.json`;
//! a small traced replay also writes `replay_trace.json` (Chrome
//! `about:tracing` format). `--smoke` runs the `p = 2¹⁶` ladder rung
//! only, under a wall-clock budget — the CI guard proving the replay
//! engine stays a laptop-budget tool at six-figure rank counts.
//!
//! ```sh
//! cargo run --release -p hsumma-bench --bin fig10 [-- --smoke]
//! ```

use hsumma_bench::{render_table, secs, write_bench_section};
use hsumma_core::simdrive::{record_cosma, record_summa, replay_on};
use hsumma_core::tuning::sweep_groups_engine;
use hsumma_core::{CosmaConfig, SimEngine};
use hsumma_matrix::GridShape;
use hsumma_model::predict::{best_point, power_of_two_gs, sweep_groups};
use hsumma_model::{cosma_volume, BcastModel, BrickShape, ModelParams};
use hsumma_netsim::{Platform, SimBcast, SimNet};
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock budget for the smoke rung: recording and replaying a
/// `p = 2¹⁶` COSMA schedule must stay well inside a CI step.
const SMOKE_BUDGET_SECS: f64 = 120.0;

/// One rung of the replay ladder.
struct ScaleRow {
    label: &'static str,
    p: usize,
    n: usize,
    shape: BrickShape,
    ops: usize,
    sim_bytes: u64,
    model_bytes: f64,
    rel_err: f64,
    makespan_s: f64,
    wall_s: f64,
}

/// Records the COSMA schedule for a cubic `n³` problem on `p` ranks and
/// replays it on the event-loop engine, timing the whole round trip.
fn replay_cosma(platform: &Platform, label: &'static str, p: usize, n: usize) -> ScaleRow {
    let wall = Instant::now();
    let cfg = CosmaConfig::for_problem(p, n, n, n);
    let d = cfg.decomp;
    let shape = BrickShape {
        a: d.a,
        b: d.b,
        c: d.c,
    };
    let prog = record_cosma(p, n, n, n, &cfg);
    let ops = prog.total_ops();
    let mut net = SimNet::new(p, platform.net);
    let report = replay_on(&mut net, platform.gamma, &prog);
    let wall_s = wall.elapsed().as_secs_f64();
    let model_bytes = cosma_volume(shape, n as f64, n as f64, n as f64);
    let rel_err = (report.bytes as f64 - model_bytes).abs() / model_bytes.max(1.0);
    ScaleRow {
        label,
        p,
        n,
        shape,
        ops,
        sim_bytes: report.bytes,
        model_bytes,
        rel_err,
        makespan_s: report.total_time,
        wall_s,
    }
}

/// The paper's analytic exascale sweep (the original Figure 10).
fn analytic_sweep() {
    let params = ModelParams::exascale();
    let p = (1u64 << 20) as f64;
    let n = (1u64 << 22) as f64;
    let b = 256.0;

    let sweep = sweep_groups(
        &params,
        BcastModel::VanDeGeijn,
        n,
        p,
        b,
        &power_of_two_gs(p),
    );

    println!("Figure 10 — exascale prediction (analytic model)");
    println!("p = 2^20, n = 2^22, b = B = {b}, van de Geijn broadcast");
    println!("alpha = 500 ns, beta = 1e-11 s/B (100 GB/s), 1 EFLOP/s aggregate\n");

    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|pt| {
            vec![
                format!("2^{}", pt.g.log2() as u32),
                secs(pt.hsumma.comm()),
                secs(pt.hsumma.total()),
                secs(pt.summa.comm()),
                secs(pt.summa.total()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "G",
                "HSUMMA comm (s)",
                "HSUMMA total (s)",
                "SUMMA comm (s)",
                "SUMMA total (s)"
            ],
            &rows
        )
    );

    let best = best_point(&sweep);
    println!(
        "predicted optimum: G = {} (√p = {}), comm {} s vs SUMMA {} s ({:.2}x less)",
        best.g,
        p.sqrt(),
        secs(best.hsumma.comm()),
        secs(best.summa.comm()),
        best.summa.comm() / best.hsumma.comm()
    );
    println!("paper shape: U-curve over G with interior minimum; endpoints equal SUMMA.\n");
}

/// A small traced SUMMA replay whose step spans go to Chrome's
/// `about:tracing` format — the artifact CI uploads as proof the replay
/// engine feeds the same tracer hooks as the threaded one.
fn write_chrome_trace() {
    let platform = Platform::bluegene_p();
    let (grid, n, b) = (GridShape::new(16, 16), 512, 32);
    let prog = record_summa(grid, n, b, SimBcast::Binomial, false);
    let mut net = SimNet::new(grid.size(), platform.net);
    net.enable_trace();
    let _ = replay_on(&mut net, platform.gamma, &prog);
    let json = net.trace_to_chrome_json().expect("trace was enabled");
    std::fs::write("replay_trace.json", json).expect("write replay_trace.json");
    println!(
        "wrote replay_trace.json (p = {} traced replay)",
        grid.size()
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if !smoke {
        analytic_sweep();
    }

    let platform = Platform::bluegene_p();

    // The replay ladder. Every rung is one recording pass plus one
    // event-loop replay — no threads, so `vm.max_map_count` never moves.
    let rows: Vec<ScaleRow> = if smoke {
        vec![replay_cosma(&platform, "2^16", 1 << 16, 1 << 18)]
    } else {
        vec![
            replay_cosma(&platform, "2^16", 1 << 16, 1 << 18),
            // Extents a power-of-two brick grid cannot divide: ragged
            // fragments everywhere, the closed form only approximates.
            replay_cosma(&platform, "2^16-awkward", 1 << 16, (1 << 18) + 3),
            replay_cosma(&platform, "2^18", 1 << 18, 1 << 19),
            // The paper's full rank count.
            replay_cosma(&platform, "2^20", 1 << 20, 1 << 20),
        ]
    };

    println!("== COSMA replay ladder on simulated BlueGene/P ==\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{}", r.p),
                format!("{}", r.n),
                format!("{}x{}x{}", r.shape.a, r.shape.b, r.shape.c),
                format!("{}", r.ops),
                format!("{:.2}", r.sim_bytes as f64 / 1e12),
                format!("{:.2}%", r.rel_err * 100.0),
                secs(r.makespan_s),
                format!("{:.1}", r.wall_s),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["point", "p", "n", "bricks", "ops", "sim TB", "vol err", "model s", "wall s"],
            &table
        )
    );

    // HSUMMA G-sweeps *executed* on the replay engine, past the thread
    // ceiling. Two claims, one per broadcast family:
    //
    // * binomial at p = 2¹⁶ — the Table I identity
    //   log₂(p/G) + log₂(G) = log₂ p makes the hierarchy exactly
    //   cost-neutral, so every G must replay to the same comm time;
    // * van de Geijn at p = 2¹⁴ — the bandwidth term scales with group
    //   width, so the paper's U-curve appears with its minimum at an
    //   interior G. (The vdG allgather is a ring — O(p) recorded ops
    //   per broadcast — which is why this sweep runs a grid size down:
    //   at 2¹⁶ the recording alone would be hundreds of GB.)
    let hsumma_sweeps = if smoke {
        Vec::new()
    } else {
        let sweeps = [
            (
                "binomial",
                GridShape::new(256, 256),
                16384usize,
                64usize,
                SimBcast::Binomial,
                vec![1usize, 16, 256, 4096, 65536],
            ),
            (
                "van de Geijn",
                GridShape::new(128, 128),
                8192,
                64,
                SimBcast::ScatterAllgather,
                vec![1, 16, 128, 2048, 16384],
            ),
        ];
        let mut out = Vec::new();
        for (name, grid, n, b, bcast, gs) in sweeps {
            let sweep = sweep_groups_engine(
                SimEngine::Replay,
                &platform,
                grid,
                n,
                b,
                b,
                bcast,
                bcast,
                &gs,
            );
            println!(
                "== HSUMMA replay G-sweep, p = {}, n = {n}, b = {b}, {name} ==\n",
                grid.size()
            );
            let rows: Vec<Vec<String>> = sweep
                .iter()
                .map(|pt| {
                    vec![
                        format!("{}", pt.g),
                        format!("{}x{}", pt.groups.rows, pt.groups.cols),
                        secs(pt.report.comm_time),
                        secs(pt.report.total_time),
                    ]
                })
                .collect();
            println!(
                "{}",
                render_table(&["G", "groups", "comm (s)", "total (s)"], &rows)
            );
            let best = sweep
                .iter()
                .min_by(|a, b| a.report.comm_time.total_cmp(&b.report.comm_time))
                .expect("sweep is non-empty");
            let flat = sweep
                .iter()
                .all(|pt| pt.report.comm_time == sweep[0].report.comm_time);
            if flat {
                println!(
                    "all G replay to identical comm time {} s — the executed Table I identity\n",
                    secs(best.report.comm_time)
                );
            } else {
                println!(
                    "replayed optimum: G = {} (√p = {}), comm {} s vs G=1 {} s\n",
                    best.g,
                    (grid.size() as f64).sqrt() as usize,
                    secs(best.report.comm_time),
                    secs(sweep[0].report.comm_time)
                );
            }
            out.push((name, grid.size(), n, sweep));
        }
        out
    };

    write_chrome_trace();

    // The CI guard: the smoke rung must stay inside its budget.
    let budget_row = &rows[0];
    let within_budget = budget_row.wall_s <= SMOKE_BUDGET_SECS;
    println!(
        "p = 2^16 record+replay wall time: {:.1} s (budget {} s): {}",
        budget_row.wall_s,
        SMOKE_BUDGET_SECS,
        if within_budget { "ok" } else { "OVER BUDGET" }
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"smoke\": {smoke},\n  \"platform\": \"bluegene_p\",\n  \"cosma_replay\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"p\": {}, \"n\": {}, \"bricks\": \"{}x{}x{}\", \
             \"ops\": {}, \"sim_bytes\": {}, \"model_bytes\": {:.0}, \
             \"volume_rel_err\": {:.6}, \"model_makespan_s\": {:.6}, \"wall_s\": {:.3}}}{}",
            r.label,
            r.p,
            r.n,
            r.shape.a,
            r.shape.b,
            r.shape.c,
            r.ops,
            r.sim_bytes,
            r.model_bytes,
            r.rel_err,
            r.makespan_s,
            r.wall_s,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = write!(json, "  ],\n  \"hsumma_replay_sweeps\": [");
    for (i, (name, p, n, sweep)) in hsumma_sweeps.iter().enumerate() {
        let _ = write!(
            json,
            "\n    {{\"bcast\": \"{name}\", \"p\": {p}, \"n\": {n}, \"points\": ["
        );
        for (j, pt) in sweep.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"g\": {}, \"comm_s\": {:.6}, \"total_s\": {:.6}}}{}",
                pt.g,
                pt.report.comm_time,
                pt.report.total_time,
                if j + 1 < sweep.len() { ", " } else { "" }
            );
        }
        let _ = write!(
            json,
            "]}}{}",
            if i + 1 < hsumma_sweeps.len() {
                ","
            } else {
                "\n  "
            }
        );
    }
    let _ = write!(json, "]");
    let _ = write!(
        json,
        ",\n  \"smoke_budget_s\": {SMOKE_BUDGET_SECS},\n  \
         \"smoke_within_budget\": {within_budget}\n}}"
    );
    write_bench_section("BENCH_scale.json", "scale", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json (\"scale\" section)");

    if smoke && !within_budget {
        eprintln!(
            "replay smoke exceeded its wall-clock budget: {:.1} s > {} s",
            budget_row.wall_s, SMOKE_BUDGET_SECS
        );
        std::process::exit(1);
    }
}
