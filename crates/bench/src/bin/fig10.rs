//! Figure 10: prediction of SUMMA and HSUMMA on an exascale platform.
//!
//! Analytic-model sweep (the figure in the paper is itself theoretical):
//! `p = 2²⁰ processors, n = 2²², b = 256`, exascale roadmap parameters
//! (500 ns latency, 100 GB/s links, 1 EFLOP/s aggregate), van de Geijn
//! broadcast. Paper shape: SUMMA constant; HSUMMA U-shaped with its
//! minimum at interior `G`, several times below SUMMA.

use hsumma_bench::{render_table, secs};
use hsumma_model::predict::{best_point, power_of_two_gs, sweep_groups};
use hsumma_model::{BcastModel, ModelParams};

fn main() {
    let params = ModelParams::exascale();
    let p = (1u64 << 20) as f64;
    let n = (1u64 << 22) as f64;
    let b = 256.0;

    let sweep = sweep_groups(
        &params,
        BcastModel::VanDeGeijn,
        n,
        p,
        b,
        &power_of_two_gs(p),
    );

    println!("Figure 10 — exascale prediction (analytic model)");
    println!("p = 2^20, n = 2^22, b = B = {b}, van de Geijn broadcast");
    println!("alpha = 500 ns, beta = 1e-11 s/B (100 GB/s), 1 EFLOP/s aggregate\n");

    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|pt| {
            vec![
                format!("2^{}", pt.g.log2() as u32),
                secs(pt.hsumma.comm()),
                secs(pt.hsumma.total()),
                secs(pt.summa.comm()),
                secs(pt.summa.total()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "G",
                "HSUMMA comm (s)",
                "HSUMMA total (s)",
                "SUMMA comm (s)",
                "SUMMA total (s)"
            ],
            &rows
        )
    );

    let best = best_point(&sweep);
    println!(
        "predicted optimum: G = {} (√p = {}), comm {} s vs SUMMA {} s ({:.2}x less)",
        best.g,
        p.sqrt(),
        secs(best.hsumma.comm()),
        secs(best.summa.comm()),
        best.summa.comm() / best.hsumma.comm()
    );
    println!("paper shape: U-curve over G with interior minimum; endpoints equal SUMMA.");
}
