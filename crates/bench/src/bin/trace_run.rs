//! `trace_run` — trace any algorithm on the real runtime, the simulator,
//! or both, at a chosen `(p, n, b, B, G)`.
//!
//! ```text
//! trace_run --algo hsumma --mode both --p 16 --n 128 --b 8 --B 16 --G 4 \
//!           --machine grid5000 --out trace
//! ```
//!
//! * `--mode real` runs the algorithm on rank threads with real data and
//!   wall clocks; `--mode sim` replays its communication schedule on the
//!   discrete-event simulator with virtual clocks; `--mode both` runs
//!   both and **verifies that the two substrates emit identical per-rank
//!   `(src, dst, bytes)` message multisets**, exiting nonzero on any
//!   mismatch (this is what CI runs).
//! * Each traced run writes a Chrome-trace JSON (`<out>-real.json` /
//!   `<out>-sim.json`, openable at `chrome://tracing` or
//!   <https://ui.perfetto.dev>) and prints the critical path and the
//!   per-pivot-step communication/computation breakdown.
//!
//! Broadcasts are pinned to binomial trees on both substrates so their
//! schedules are comparable message-for-message.

use hsumma_bench::grid_for;
use hsumma_core::grid::HierGrid;
use hsumma_core::lu::{block_lu, sim_block_lu_on, LuConfig};
use hsumma_core::simdrive::{sim_cannon_on, sim_fox_on, sim_hsumma_on, sim_summa_on};
use hsumma_core::{
    cannon, cosma, fox, hier_bcast, hsumma, hsumma_overlap, summa, summa_cyclic, summa_overlap,
    summa_rect, tsqr, twodotfive, CosmaConfig, HsummaConfig, MatMulDims, PhantomMat, SummaConfig,
    TwoDotFiveConfig,
};
use hsumma_matrix::factor::seeded_diag_dominant;
use hsumma_matrix::sparse::{seeded_sparse, CsrMatrix};
use hsumma_matrix::{seeded_uniform, BlockCyclicDist, BlockDist, GemmKernel, GridShape, Matrix};
use hsumma_netsim::spmd::SimWorld;
use hsumma_netsim::{Platform, SimBcast, SimNet};
use hsumma_runtime::{BcastAlgorithm, Runtime};
use hsumma_sparse::{scatter_csr, sddmm_2d, spgemm_2d, PhantomSparse, SparseConfig};
use hsumma_trace::{render_breakdown, Trace, Tracer};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

/// Every algorithm the tracer knows how to drive on both substrates.
pub const ALGOS: &[&str] = &[
    "summa",
    "hsumma",
    "cannon",
    "fox",
    "lu",
    "cyclic",
    "overlap",
    "hsumma-overlap",
    "rect",
    "twodotfive",
    "cosma",
    "tsqr",
    "hierbcast",
    "spgemm",
    "sddmm",
];

/// Fill used for the sparse operands of `--algo spgemm|sddmm`, chosen
/// well inside the regime where the nnz-aware scoreboard keeps the CSR
/// schedule (so the trace exercises genuinely nnz-dependent wire bytes).
const SPARSE_DENSITY: f64 = 0.2;

const USAGE: &str = "usage:
  trace_run [--algo summa|hsumma|cannon|fox|lu|cyclic|overlap|
                    hsumma-overlap|rect|twodotfive|cosma|tsqr|
                    hierbcast|spgemm|sddmm]
            [--mode real|sim|both]
            [--p 16] [--n 128] [--b 8] [--B 16] [--G 4]
            [--machine grid5000|bluegene] [--out trace]
trace an algorithm run; `both` verifies real and simulated runs emit
identical per-rank (src, dst, bytes) message multisets
(for twodotfive, --G is the replication depth c and p must equal q*q*c;
for hierbcast, --G is the leader-group count of the two-level tree;
cosma runs the searched (a, b, c) brick schedule — p need not be square;
spgemm/sddmm move CSR payloads at 20% fill, pivot block --b)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_flags(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{key}`"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

struct Config {
    algo: String,
    /// Total rank count (equals `grid.size()` except for 2.5D, where the
    /// grid is one `q x q` layer of `ranks = q*q*c`).
    ranks: usize,
    grid: GridShape,
    groups: GridShape,
    /// Replication depth / leader-group count (the `--G` flag).
    g: usize,
    n: usize,
    inner_b: usize,
    outer_b: usize,
    platform: Platform,
}

fn run(opts: &HashMap<String, String>) -> Result<(), String> {
    let algo = get(opts, "algo", "hsumma".to_string())?;
    let mode = get(opts, "mode", "both".to_string())?;
    let p: usize = get(opts, "p", 16)?;
    let n: usize = get(opts, "n", 128)?;
    let inner_b: usize = get(opts, "b", 8)?;
    let outer_b: usize = get(opts, "B", inner_b * 2)?;
    let g: usize = get(opts, "G", 4)?;
    let machine = get(opts, "machine", "grid5000".to_string())?;
    let out = get(opts, "out", "trace".to_string())?;

    let grid = match algo.as_str() {
        // Cannon and Fox need a square grid.
        "cannon" | "fox" => {
            let q = (p as f64).sqrt() as usize;
            if q * q != p {
                return Err(format!("--algo {algo} needs a square p, got {p}"));
            }
            GridShape::new(q, q)
        }
        // 2.5D lays p = q*q*c ranks out as c layers of a q x q grid.
        "twodotfive" => {
            if !p.is_multiple_of(g) {
                return Err(format!(
                    "--algo twodotfive needs c = G ({g}) to divide p ({p})"
                ));
            }
            let q = ((p / g) as f64).sqrt() as usize;
            if q * q * g != p {
                return Err(format!(
                    "--algo twodotfive needs p = q*q*c; p={p}, c={g} leaves no square q"
                ));
            }
            GridShape::new(q, q)
        }
        _ => grid_for(p),
    };
    // Only the hierarchical multiplies interpret G as a group grid; the
    // others use it as a scalar (2.5D depth, broadcast-tree fanout) or
    // not at all.
    let groups = match HierGrid::factor_groups(grid, g) {
        Some(gs) => gs,
        None if matches!(algo.as_str(), "hsumma" | "hsumma-overlap" | "lu") => {
            return Err(format!(
                "G={g} has no valid factorization on a {}x{} grid",
                grid.rows, grid.cols
            ))
        }
        None => GridShape::new(1, 1),
    };
    let platform = match machine.as_str() {
        "grid5000" => Platform::grid5000(),
        "bluegene" => Platform::bluegene_p(),
        other => return Err(format!("unknown machine `{other}`")),
    };
    let cfg = Config {
        algo,
        ranks: p,
        grid,
        groups,
        g,
        n,
        inner_b,
        outer_b,
        platform,
    };

    let real = match mode.as_str() {
        "real" | "both" => Some(run_real(&cfg)?),
        "sim" => None,
        other => return Err(format!("unknown mode `{other}`")),
    };
    let sim = match mode.as_str() {
        "sim" | "both" => Some(run_sim(&cfg)?),
        _ => None,
    };

    if let Some(trace) = &real {
        report(&cfg, trace, "real", &format!("{out}-real.json"))?;
    }
    if let Some(trace) = &sim {
        report(&cfg, trace, "sim", &format!("{out}-sim.json"))?;
    }
    if let (Some(real), Some(sim)) = (&real, &sim) {
        compare_multisets(real, sim)?;
        println!(
            "real and simulated runs emit identical per-rank (src, dst, bytes) \
             message multisets"
        );
    }
    Ok(())
}

/// Executes the algorithm on rank threads with real data, returning its
/// trace (wall-clock timestamps).
fn run_real(cfg: &Config) -> Result<Trace, String> {
    let (grid, n) = (cfg.grid, cfg.n);
    let tracer = Tracer::new(cfg.ranks);
    let a = seeded_uniform(n, n, 100);
    let b = seeded_uniform(n, n, 200);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&b);
    match cfg.algo.as_str() {
        "summa" => {
            let scfg = SummaConfig {
                block: cfg.inner_b,
                bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let (at, bt) = (at[comm.rank()].clone(), bt[comm.rank()].clone());
                summa(comm, grid, n, &at, &bt, &scfg).unwrap()
            });
        }
        "hsumma" => {
            let hcfg = HsummaConfig {
                groups: cfg.groups,
                outer_block: cfg.outer_b,
                inner_block: cfg.inner_b,
                outer_bcast: BcastAlgorithm::Binomial,
                inner_bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let (at, bt) = (at[comm.rank()].clone(), bt[comm.rank()].clone());
                hsumma(comm, grid, n, &at, &bt, &hcfg).unwrap()
            });
        }
        "cannon" => {
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let (at, bt) = (at[comm.rank()].clone(), bt[comm.rank()].clone());
                cannon(comm, grid, n, &at, &bt, GemmKernel::Packed).unwrap()
            });
        }
        "fox" => {
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let (at, bt) = (at[comm.rank()].clone(), bt[comm.rank()].clone());
                fox(comm, grid, n, &at, &bt, GemmKernel::Packed).unwrap()
            });
        }
        "lu" => {
            let lcfg = LuConfig {
                block: cfg.inner_b,
                bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
                groups: Some(cfg.groups),
            };
            let lt = BlockDist::new(grid, n, n).scatter(&seeded_diag_dominant(n, 42));
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                block_lu(comm, grid, n, &lt[comm.rank()].clone(), &lcfg).unwrap()
            });
        }
        "cyclic" => {
            let scfg = SummaConfig {
                block: cfg.inner_b,
                bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            let cdist = BlockCyclicDist::new(grid, n, n, cfg.inner_b);
            let at = cdist.scatter(&a);
            let bt = cdist.scatter(&b);
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let (at, bt) = (at[comm.rank()].clone(), bt[comm.rank()].clone());
                summa_cyclic(comm, grid, n, &at, &bt, &scfg).unwrap()
            });
        }
        "overlap" => {
            let scfg = SummaConfig {
                block: cfg.inner_b,
                bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let (at, bt) = (at[comm.rank()].clone(), bt[comm.rank()].clone());
                summa_overlap(comm, grid, n, &at, &bt, &scfg).unwrap()
            });
        }
        "hsumma-overlap" => {
            let hcfg = HsummaConfig {
                groups: cfg.groups,
                outer_block: cfg.outer_b,
                inner_block: cfg.inner_b,
                outer_bcast: BcastAlgorithm::Binomial,
                inner_bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let (at, bt) = (at[comm.rank()].clone(), bt[comm.rank()].clone());
                hsumma_overlap(comm, grid, n, &at, &bt, &hcfg).unwrap()
            });
        }
        "rect" => {
            let dims = rect_dims(n);
            let scfg = SummaConfig {
                block: cfg.inner_b,
                bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            let ra = seeded_uniform(dims.m, dims.l, 100);
            let rb = seeded_uniform(dims.l, dims.n, 200);
            let at = BlockDist::new(grid, dims.m, dims.l).scatter(&ra);
            let bt = BlockDist::new(grid, dims.l, dims.n).scatter(&rb);
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let (at, bt) = (at[comm.rank()].clone(), bt[comm.rank()].clone());
                summa_rect(comm, grid, dims, &at, &bt, &scfg).unwrap()
            });
        }
        "twodotfive" => {
            let tcfg = TwoDotFiveConfig {
                q: grid.rows,
                c: cfg.g,
                summa: SummaConfig {
                    block: cfg.inner_b,
                    bcast: BcastAlgorithm::Binomial,
                    kernel: GemmKernel::Packed,
                },
            };
            let ts = n / grid.rows;
            Runtime::run_traced(cfg.ranks, &tracer, |comm| {
                // Only layer 0 holds real tiles; other layers pass zeros.
                let layer_rank = comm.rank() % grid.size();
                let (at, bt) = if comm.rank() < grid.size() {
                    (at[layer_rank].clone(), bt[layer_rank].clone())
                } else {
                    (Matrix::zeros(ts, ts), Matrix::zeros(ts, ts))
                };
                twodotfive(comm, n, &at, &bt, &tcfg).unwrap()
            });
        }
        "cosma" => {
            let ccfg = cosma_cfg(cfg);
            let d = ccfg.decomp;
            let at = d.a_distribution(n, n, cfg.ranks).scatter(&a);
            let bt = d.b_distribution(n, n, cfg.ranks).scatter(&b);
            Runtime::run_traced(cfg.ranks, &tracer, |comm| {
                let r = comm.rank();
                cosma(comm, n, n, n, &at[r], &bt[r], &ccfg).unwrap();
            });
        }
        "tsqr" => {
            // Tall-skinny: each rank contributes an n x b block.
            let blocks: Vec<Matrix> = (0..cfg.ranks)
                .map(|r| seeded_uniform(n, cfg.inner_b, 300 + r as u64))
                .collect();
            Runtime::run_traced(cfg.ranks, &tracer, |comm| {
                tsqr(comm, &blocks[comm.rank()]).unwrap()
            });
        }
        "hierbcast" => {
            let levels = [cfg.g, cfg.ranks / cfg.g];
            check_hierbcast_levels(cfg)?;
            Runtime::run_traced(cfg.ranks, &tracer, |comm| {
                let mut m = if comm.rank() == 0 {
                    a.clone()
                } else {
                    Matrix::zeros(n, n)
                };
                hier_bcast(comm, BcastAlgorithm::Binomial, 0, &mut m, &levels).unwrap();
            });
        }
        "spgemm" => {
            let scfg = sparse_cfg(cfg);
            let (sa, sb) = sparse_operands(cfg);
            let sat: Vec<Arc<CsrMatrix>> =
                scatter_csr(grid, &sa).into_iter().map(Arc::new).collect();
            let sbt: Vec<Arc<CsrMatrix>> =
                scatter_csr(grid, &sb).into_iter().map(Arc::new).collect();
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let r = comm.rank();
                spgemm_2d(comm, grid, n, &sat[r], &sbt[r], &scfg).unwrap();
            });
        }
        "sddmm" => {
            let scfg = sparse_cfg(cfg);
            let s = seeded_sparse(n, n, SPARSE_DENSITY, 300);
            let st: Vec<Arc<CsrMatrix>> = scatter_csr(grid, &s).into_iter().map(Arc::new).collect();
            // The dense factors reuse the block-scattered A and B tiles.
            Runtime::run_traced(grid.size(), &tracer, |comm| {
                let r = comm.rank();
                sddmm_2d(comm, grid, n, &st[r], &at[r], &bt[r], &scfg).unwrap();
            });
        }
        other => return Err(format!("unknown algorithm `{other}`")),
    }
    Ok(tracer.collect())
}

/// The brick schedule both substrates trace for `--algo cosma`: a
/// searched `(a, b, c)` decomposition of the square `n³` cube, with the
/// replication pipelined over `--b`-wide `k`-slices.
fn cosma_cfg(cfg: &Config) -> CosmaConfig {
    let base = CosmaConfig::for_problem(cfg.ranks, cfg.n, cfg.n, cfg.n);
    let k_brick = cfg.n.div_ceil(base.decomp.c);
    CosmaConfig {
        steps: (k_brick / cfg.inner_b.max(1)).max(1),
        ..base
    }
}

/// Sparse schedule config shared by the spgemm/sddmm arms: the pivot
/// block is the same `--b` the dense algorithms use.
fn sparse_cfg(cfg: &Config) -> SparseConfig {
    SparseConfig {
        block: cfg.inner_b,
        ..SparseConfig::default()
    }
}

/// The seeded CSR operands both substrates trace for `--algo spgemm`.
fn sparse_operands(cfg: &Config) -> (CsrMatrix, CsrMatrix) {
    (
        seeded_sparse(cfg.n, cfg.n, SPARSE_DENSITY, 100),
        seeded_sparse(cfg.n, cfg.n, SPARSE_DENSITY, 200),
    )
}

/// The rectangular shape `rect` traces: `C (n x n) = A (n x 2n) · B (2n x n)`.
fn rect_dims(n: usize) -> MatMulDims {
    MatMulDims { m: n, l: 2 * n, n }
}

fn check_hierbcast_levels(cfg: &Config) -> Result<(), String> {
    if cfg.g == 0 || !cfg.ranks.is_multiple_of(cfg.g) {
        return Err(format!(
            "--algo hierbcast needs G ({}) to divide p ({})",
            cfg.g, cfg.ranks
        ));
    }
    Ok(())
}

/// Replays the algorithm's communication schedule on the simulator,
/// returning its trace (virtual timestamps).
fn run_sim(cfg: &Config) -> Result<Trace, String> {
    let (grid, n) = (cfg.grid, cfg.n);
    let tracer = Tracer::new(cfg.ranks);
    let mut net = SimNet::new(cfg.ranks, cfg.platform.net);
    net.attach_tracer(&tracer);
    let gamma = cfg.platform.gamma;
    match cfg.algo.as_str() {
        "summa" => {
            sim_summa_on(
                &mut net,
                gamma,
                grid,
                n,
                cfg.inner_b,
                SimBcast::Binomial,
                false,
            );
        }
        "hsumma" => {
            sim_hsumma_on(
                &mut net,
                gamma,
                grid,
                cfg.groups,
                n,
                cfg.outer_b,
                cfg.inner_b,
                SimBcast::Binomial,
                SimBcast::Binomial,
                false,
            );
        }
        "cannon" => {
            sim_cannon_on(&mut net, gamma, grid.rows, n, false);
        }
        "fox" => {
            sim_fox_on(&mut net, gamma, grid.rows, n, SimBcast::Binomial, false);
        }
        "lu" => {
            sim_block_lu_on(
                &mut net,
                gamma,
                grid,
                n,
                cfg.inner_b,
                SimBcast::Binomial,
                Some(cfg.groups),
                false,
            );
        }
        // The remaining algorithms have no bespoke replay driver: the
        // *generic* schedule itself runs over simulated clocks with
        // phantom payloads — the same code path the real run takes.
        "cyclic" => {
            let scfg = SummaConfig {
                block: cfg.inner_b,
                bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            let (th, tw) = BlockCyclicDist::new(grid, n, n, cfg.inner_b).tile_shape();
            SimWorld::run(net, gamma, false, move |comm| {
                let t = PhantomMat { rows: th, cols: tw };
                summa_cyclic(comm, grid, n, &t, &t, &scfg).unwrap();
            });
        }
        "overlap" => {
            let scfg = SummaConfig {
                block: cfg.inner_b,
                bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            let (th, tw) = (n / grid.rows, n / grid.cols);
            SimWorld::run(net, gamma, false, move |comm| {
                let a = PhantomMat { rows: th, cols: tw };
                let b = PhantomMat { rows: th, cols: tw };
                summa_overlap(comm, grid, n, &a, &b, &scfg).unwrap();
            });
        }
        "hsumma-overlap" => {
            let hcfg = HsummaConfig {
                groups: cfg.groups,
                outer_block: cfg.outer_b,
                inner_block: cfg.inner_b,
                outer_bcast: BcastAlgorithm::Binomial,
                inner_bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            let (th, tw) = (n / grid.rows, n / grid.cols);
            SimWorld::run(net, gamma, false, move |comm| {
                let t = PhantomMat { rows: th, cols: tw };
                hsumma_overlap(comm, grid, n, &t, &t, &hcfg).unwrap();
            });
        }
        "rect" => {
            let dims = rect_dims(n);
            let scfg = SummaConfig {
                block: cfg.inner_b,
                bcast: BcastAlgorithm::Binomial,
                kernel: GemmKernel::Packed,
            };
            SimWorld::run(net, gamma, false, move |comm| {
                let a = PhantomMat {
                    rows: dims.m / grid.rows,
                    cols: dims.l / grid.cols,
                };
                let b = PhantomMat {
                    rows: dims.l / grid.rows,
                    cols: dims.n / grid.cols,
                };
                summa_rect(comm, grid, dims, &a, &b, &scfg).unwrap();
            });
        }
        "twodotfive" => {
            let tcfg = TwoDotFiveConfig {
                q: grid.rows,
                c: cfg.g,
                summa: SummaConfig {
                    block: cfg.inner_b,
                    bcast: BcastAlgorithm::Binomial,
                    kernel: GemmKernel::Packed,
                },
            };
            let ts = n / grid.rows;
            SimWorld::run(net, gamma, false, move |comm| {
                let t = PhantomMat { rows: ts, cols: ts };
                twodotfive(comm, n, &t, &t, &tcfg).unwrap();
            });
        }
        "cosma" => {
            let ccfg = cosma_cfg(cfg);
            let d = ccfg.decomp;
            let pm = PhantomMat { rows: n, cols: n };
            let at = d.a_distribution(n, n, cfg.ranks).scatter(&pm);
            let bt = d.b_distribution(n, n, cfg.ranks).scatter(&pm);
            SimWorld::run(net, gamma, false, move |comm| {
                let r = comm.rank();
                cosma(comm, n, n, n, &at[r], &bt[r], &ccfg).unwrap();
            });
        }
        "tsqr" => {
            let b = cfg.inner_b;
            SimWorld::run(net, gamma, false, move |comm| {
                let block = PhantomMat { rows: n, cols: b };
                tsqr(comm, &block).unwrap();
            });
        }
        "hierbcast" => {
            check_hierbcast_levels(cfg)?;
            let levels = [cfg.g, cfg.ranks / cfg.g];
            SimWorld::run(net, gamma, false, move |comm| {
                let mut m = PhantomMat { rows: n, cols: n };
                hier_bcast(comm, BcastAlgorithm::Binomial, 0, &mut m, &levels).unwrap();
            });
        }
        // The sparse schedules also run generically: the simulator holds
        // only the nonzero *patterns* (`PhantomSparse`), yet must price
        // every panel at its exact CSR wire size.
        "spgemm" => {
            let scfg = sparse_cfg(cfg);
            let (sa, sb) = sparse_operands(cfg);
            let sat: Vec<PhantomSparse> = scatter_csr(grid, &sa)
                .iter()
                .map(PhantomSparse::from_csr)
                .collect();
            let sbt: Vec<PhantomSparse> = scatter_csr(grid, &sb)
                .iter()
                .map(PhantomSparse::from_csr)
                .collect();
            SimWorld::run(net, gamma, false, move |comm| {
                let r = comm.rank();
                spgemm_2d(comm, grid, n, &sat[r], &sbt[r], &scfg).unwrap();
            });
        }
        "sddmm" => {
            let scfg = sparse_cfg(cfg);
            let s = seeded_sparse(n, n, SPARSE_DENSITY, 300);
            let st: Vec<PhantomSparse> = scatter_csr(grid, &s)
                .iter()
                .map(PhantomSparse::from_csr)
                .collect();
            let (th, tw) = (n / grid.rows, n / grid.cols);
            SimWorld::run(net, gamma, false, move |comm| {
                let r = comm.rank();
                let tile = PhantomMat { rows: th, cols: tw };
                sddmm_2d(comm, grid, n, &st[r], &tile, &tile, &scfg).unwrap();
            });
        }
        other => return Err(format!("unknown algorithm `{other}`")),
    }
    Ok(tracer.collect())
}

/// Writes the Chrome-trace JSON and prints the analyses for one run.
fn report(cfg: &Config, trace: &Trace, label: &str, path: &str) -> Result<(), String> {
    let json = trace.to_chrome_json();
    hsumma_trace::validate_json(&json).map_err(|e| format!("{label} trace JSON invalid: {e}"))?;
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;

    println!(
        "== {} {} on {}x{} grid, n={}, b={}, B={}, G={} ==",
        label,
        cfg.algo,
        cfg.grid.rows,
        cfg.grid.cols,
        cfg.n,
        cfg.inner_b,
        cfg.outer_b,
        cfg.groups.size()
    );
    println!(
        "{} events ({} dropped), {} payload messages -> {path}",
        trace.events.len(),
        trace.dropped,
        trace.payload_send_multiset().len()
    );

    let cp = trace.critical_path();
    println!("{}", cp.render());
    // The overlap acceptance signal: a pipelined run at compute-bound
    // sizes must push every broadcast edge off the *steady-state*
    // critical path (cold-start pipeline-fill edges are unavoidable for
    // any schedule — there is no compute to hide the first panel behind).
    if matches!(cfg.algo.as_str(), "overlap" | "hsumma-overlap") {
        let stalls = cp.steady_state_edges();
        let fill = cp.message_edges.len() - stalls.len();
        if cp.is_compute_bound() {
            println!(
                "steady-state broadcast edges on critical path: 0 \
                 ({fill} pipeline-fill) — compute-bound"
            );
        } else {
            println!(
                "steady-state broadcast edges on critical path: {} \
                 ({fill} pipeline-fill) — communication-bound",
                stalls.len()
            );
        }
    }
    // α/β attribution only makes sense against the simulator's cost
    // model; wall-clock traces get their edge count and bytes instead.
    if label == "sim" {
        let cost = cp.attribute(cfg.platform.net.alpha, cfg.platform.net.beta);
        println!(
            "critical-path attribution: alpha {:.6} s over {} edges, beta {:.6} s over {} B, \
             compute {:.6} s",
            cost.alpha_seconds, cost.edges, cost.beta_seconds, cost.bytes, cost.compute_seconds
        );
    }
    println!("{}", render_breakdown(&trace.step_breakdown()));
    Ok(())
}

/// Fails unless both traces carry the same per-rank payload multisets.
fn compare_multisets(real: &Trace, sim: &Trace) -> Result<(), String> {
    let r = real.per_rank_send_multisets();
    let s = sim.per_rank_send_multisets();
    if r.len() != s.len() {
        return Err(format!(
            "rank count differs: real {} vs sim {}",
            r.len(),
            s.len()
        ));
    }
    for (rank, (rm, sm)) in r.iter().zip(&s).enumerate() {
        if rm != sm {
            return Err(format!(
                "rank {rank}: real sent {} payload messages, sim {}; first divergence: {:?}",
                rm.len(),
                sm.len(),
                rm.iter().zip(sm).find(|(a, b)| a != b)
            ));
        }
    }
    Ok(())
}
