//! Extension: communication-avoiding TSQR (§VI — the QR half of "apply
//! the same approach to other numerical linear algebra kernels").
//!
//! Prices the TSQR tree schedule against the naive gather-and-factor
//! alternative for tall-skinny panels at BlueGene/P scale — the same
//! "shrink the communicator" principle HSUMMA applies to broadcasts,
//! applied to the QR reduction.

use hsumma_bench::{render_table, Machine, Profile};
use hsumma_core::tsqr::sim_tsqr;

fn main() {
    let platform = Profile::Measured.platform(Machine::BlueGeneP);
    println!(
        "Extension — TSQR vs gather-and-factor on {} (simulated)\n",
        platform.name
    );

    for (rows, n) in [(4096usize, 32usize), (16384, 64)] {
        println!("local blocks {rows} x {n}:");
        let mut table = Vec::new();
        for p in [16usize, 64, 256, 1024] {
            let (tree, gather) = sim_tsqr(&platform, p, rows, n);
            table.push(vec![
                p.to_string(),
                format!("{:.4}", tree),
                format!("{:.4}", gather),
                format!("{:.1}x", gather / tree),
            ]);
        }
        println!(
            "{}",
            render_table(&["p", "TSQR (s)", "gather+QR (s)", "speedup"], &table)
        );
        println!();
    }
    println!("reading: the tree exchanges log2(p) tiny R factors instead of");
    println!("shipping the whole tall matrix — the advantage grows linearly in p.");
}
