//! Local-GEMM kernel shootout: Naive vs Blocked vs Parallel vs Packed.
//!
//! Times every [`GemmKernel`] on square `C += A·B` problems at
//! `n ∈ {128, 256, 512, 1024}` and reports GFLOP/s (2·n³ flops per
//! multiply). Results go to stdout as a table and to `BENCH_gemm.json`
//! in the current directory as a machine-readable record; the JSON also
//! carries the headline ratio the repo tracks — Packed over Blocked at
//! `n = 512`, which must stay ≥ 3× (see `DESIGN.md`, "Local kernel
//! hierarchy").
//!
//! Timing discipline: one untimed warm-up per (kernel, size), then the
//! minimum of `REPS` timed runs — minimum, not mean, because on a shared
//! box the noise is one-sided (interruptions only ever slow a run down).
//! `Naive` is skipped above `n = 512` to keep the shootout quick; `null`
//! marks the skip in the JSON.

use hsumma_bench::render_table;
use hsumma_matrix::{gemm, seeded_uniform, GemmKernel, Matrix};
use std::fmt::Write as _;
use std::time::Instant;

/// Timed repetitions per (kernel, size); best-of is reported.
const REPS: usize = 5;

/// Problem edge lengths exercised by the shootout.
const SIZES: [usize; 4] = [128, 256, 512, 1024];

/// Past this edge length the naive kernel is skipped (it would dominate
/// the shootout's wall time without adding information).
const NAIVE_CUTOFF: usize = 512;

const KERNELS: [(&str, GemmKernel); 4] = [
    ("naive", GemmKernel::Naive),
    ("blocked", GemmKernel::Blocked),
    ("parallel", GemmKernel::Parallel),
    ("packed", GemmKernel::Packed),
];

/// Best-of-`REPS` seconds for one `n×n·n×n` accumulate with `kernel`.
fn time_kernel(kernel: GemmKernel, n: usize) -> f64 {
    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    let mut warm = Matrix::zeros(n, n);
    gemm(kernel, &a, &b, &mut warm);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let mut c = Matrix::zeros(n, n);
        let t0 = Instant::now();
        gemm(kernel, &a, &b, &mut c);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn gflops(n: usize, secs: f64) -> f64 {
    2.0 * (n as f64).powi(3) / secs / 1e9
}

fn main() {
    println!("Local GEMM kernel shootout (best of {REPS} runs per cell)\n");

    // results[size_index][kernel_index] = Some(gflop/s)
    let mut results: Vec<Vec<Option<f64>>> = Vec::new();
    let mut rows = Vec::new();
    for &n in &SIZES {
        let mut row = vec![format!("{n}")];
        let mut cells = Vec::new();
        for &(name, kernel) in &KERNELS {
            if kernel == GemmKernel::Naive && n > NAIVE_CUTOFF {
                row.push("-".to_string());
                cells.push(None);
                continue;
            }
            let rate = gflops(n, time_kernel(kernel, n));
            row.push(format!("{rate:.2}"));
            cells.push(Some(rate));
            eprintln!("  measured n={n} {name}: {rate:.2} GFLOP/s");
        }
        rows.push(row);
        results.push(cells);
    }

    println!(
        "{}",
        render_table(
            &[
                "n",
                "naive GF/s",
                "blocked GF/s",
                "parallel GF/s",
                "packed GF/s"
            ],
            &rows
        )
    );

    let i512 = SIZES
        .iter()
        .position(|&n| n == 512)
        .expect("512 is a shootout size");
    let blocked_512 = results[i512][1].expect("blocked runs at 512");
    let packed_512 = results[i512][3].expect("packed runs at 512");
    let speedup = packed_512 / blocked_512;
    println!("packed vs blocked at n=512: {speedup:.2}x (target: >= 3x)");

    let mut json = String::from("{\n  \"flops_per_cell\": \"2*n^3\",\n  \"reps\": ");
    let _ = write!(
        json,
        "{REPS},\n  \"unit\": \"GFLOP/s\",\n  \"results\": [\n"
    );
    for (si, &n) in SIZES.iter().enumerate() {
        let _ = write!(json, "    {{\"n\": {n}");
        for (ki, &(name, _)) in KERNELS.iter().enumerate() {
            match results[si][ki] {
                Some(rate) => {
                    let _ = write!(json, ", \"{name}\": {rate:.3}");
                }
                None => {
                    let _ = write!(json, ", \"{name}\": null");
                }
            }
        }
        json.push_str(if si + 1 < SIZES.len() { "},\n" } else { "}\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"packed_over_blocked_n512\": {speedup:.3},\n  \
         \"meets_3x_target\": {}\n}}\n",
        speedup >= 3.0
    );
    std::fs::write("BENCH_gemm.json", &json).expect("write BENCH_gemm.json");
    println!("wrote BENCH_gemm.json");
}
