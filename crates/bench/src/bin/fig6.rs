//! Figure 6: HSUMMA vs SUMMA on Grid5000 with the largest block size.
//!
//! Same sweep as Fig. 5 but `b = B = 512` (the maximum for this
//! configuration). Paper result: minimum communication times 2.81 s
//! (HSUMMA) vs 4.53 s (SUMMA) — a 1.6× improvement, smaller than at
//! `b = 64` because fewer steps means a smaller per-step-overhead share.

use hsumma_bench::{grid_for, render_table, run_sweep, secs, Machine, Profile};
use hsumma_core::tuning::best_by_comm;

fn main() {
    let (n, p, b) = (8192usize, 128usize, 512usize);
    let grid = grid_for(p);
    println!("Figure 6 — HSUMMA on Grid5000, largest block (simulated)");
    println!(
        "b = B = {b}, n = {n}, p = {p} (grid {}x{})\n",
        grid.rows, grid.cols
    );

    for profile in [Profile::Ideal, Profile::Measured] {
        let sweep = run_sweep(profile, Machine::Grid5000, n, p, b);
        println!("== profile: {} ==", profile.label());
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.g.to_string(),
                    secs(pt.report.comm_time),
                    secs(sweep.summa.comm_time),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["G", "HSUMMA comm (s)", "SUMMA comm (s)"], &rows)
        );
        let best = best_by_comm(&sweep.points);
        println!(
            "best G = {} -> comm {} s vs SUMMA {} s ({:.2}x less)",
            best.g,
            secs(best.report.comm_time),
            secs(sweep.summa.comm_time),
            sweep.summa.comm_time / best.report.comm_time
        );
        // The G=1 / G=p endpoints must coincide with SUMMA (paper: "HSUMMA
        // can never be worse than SUMMA").
        let g1 = sweep.points.first().expect("non-empty sweep");
        let gp = sweep.points.last().expect("non-empty sweep");
        println!(
            "endpoint check: G=1 {} s, G=p {} s, SUMMA {} s\n",
            secs(g1.report.comm_time),
            secs(gp.report.comm_time),
            secs(sweep.summa.comm_time)
        );
    }
    println!("paper (measured): HSUMMA 2.81 s vs SUMMA 4.53 s (1.6x)");
}
