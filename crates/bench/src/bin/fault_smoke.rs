//! CI fault-injection smoke: replays the same `FaultPlan` — a dropped
//! broadcast and a killed rank — through SUMMA on **both** substrates
//! (threaded runtime with wall-clock deadlines, simulator with virtual
//! deadlines), asserts the parity contract (same per-rank outcome kinds,
//! same injected-fault count), and writes the traces of the faulted runs
//! as Chrome-trace JSON artifacts.
//!
//! ```sh
//! cargo run --release -p hsumma-bench --bin fault_smoke [-- --out fault-smoke]
//! ```
//!
//! Exits nonzero on any parity mismatch — this is the executable twin of
//! `tests/fault_parity.rs`, kept as a standalone binary so CI can upload
//! the faulted traces for inspection.

use hsumma_core::{summa, PhantomMat, SummaConfig};
use hsumma_matrix::{seeded_uniform, BlockDist, GemmKernel, GridShape};
use hsumma_netsim::{Platform, SimNet, SimRunOptions, SimWorld};
use hsumma_runtime::{JobOptions, Runtime};
use hsumma_trace::{CommErrorKind, FaultPlan, TagClass, Tracer};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 64;
const BLOCK: usize = 16;

fn grid() -> GridShape {
    GridShape::new(2, 2)
}

fn cfg() -> SummaConfig {
    SummaConfig {
        block: BLOCK,
        kernel: GemmKernel::Naive,
        ..SummaConfig::default()
    }
}

/// `(per-rank outcome kind, total injected faults, chrome-trace JSON)`.
type Smoke = (Vec<Option<CommErrorKind>>, u64, String);

fn threaded(plan: &Arc<FaultPlan>) -> Smoke {
    let grid = grid();
    let a = seeded_uniform(N, N, 91);
    let b = seeded_uniform(N, N, 92);
    let dist = BlockDist::new(grid, N, N);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&b);
    let tracer = Tracer::new(grid.size());
    let opts = JobOptions::default()
        .with_deadline(Duration::from_millis(300))
        .with_faults(Arc::clone(plan));
    let per_rank = Runtime::try_run_opts(grid.size(), &tracer, &opts, |comm| {
        let r = summa(comm, grid, N, &at[comm.rank()], &bt[comm.rank()], &cfg());
        (
            r.map(|_| ()).map_err(|e| e.kind()),
            comm.stats().faults_injected,
        )
    })
    .expect("faults surface as Err results, not rank panics");
    let kinds = per_rank
        .iter()
        .map(|(r, _)| r.as_ref().err().copied())
        .collect();
    let injected = per_rank.iter().map(|(_, n)| n).sum();
    (kinds, injected, tracer.collect().to_chrome_json())
}

fn simulated(plan: &Arc<FaultPlan>) -> Smoke {
    let grid = grid();
    let platform = Platform::bluegene_p_effective();
    let tile = PhantomMat {
        rows: N / grid.rows,
        cols: N / grid.cols,
    };
    let tracer = Tracer::new(grid.size());
    let mut net = SimNet::new(grid.size(), platform.net);
    net.attach_tracer(&tracer);
    let opts = SimRunOptions::unbounded()
        .with_deadline(1.0)
        .with_faults(Arc::clone(plan));
    let out = SimWorld::run_with(net, platform.gamma, false, &opts, |comm| {
        summa(comm, grid, N, &tile, &tile, &cfg())
            .map(|_| ())
            .map_err(|e| e.kind())
    });
    let kinds = out
        .results
        .iter()
        .map(|r| r.as_ref().err().copied())
        .collect();
    (
        kinds,
        out.faults_injected,
        tracer.collect().to_chrome_json(),
    )
}

fn run_scenario(label: &str, plan: FaultPlan, out: &str) -> Result<(), String> {
    let plan = Arc::new(plan);
    let (real_kinds, real_faults, real_json) = threaded(&plan);
    let (sim_kinds, sim_faults, sim_json) = simulated(&plan);
    println!(
        "{label:>9}: threaded {real_kinds:?} ({real_faults} injected) | simulated {sim_kinds:?} ({sim_faults} injected)"
    );
    for (suffix, json) in [("real", &real_json), ("sim", &sim_json)] {
        let path = format!("{out}-{label}-{suffix}.json");
        hsumma_trace::validate_json(json)
            .map_err(|e| format!("{label} {suffix} trace JSON invalid: {e}"))?;
        std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("{:>9}  {suffix} trace -> {path}", "");
    }
    if real_kinds != sim_kinds {
        return Err(format!(
            "{label}: per-rank outcome kinds diverge: threaded {real_kinds:?} vs simulated {sim_kinds:?}"
        ));
    }
    if real_faults != sim_faults {
        return Err(format!(
            "{label}: injected-fault counts diverge: threaded {real_faults} vs simulated {sim_faults}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = match args.as_slice() {
        [] => "fault-smoke".to_string(),
        [flag, value] if flag == "--out" => value.clone(),
        _ => {
            eprintln!("usage: fault_smoke [--out <prefix>]");
            return ExitCode::FAILURE;
        }
    };

    // Scenario 1: drop the step-0 A-panel broadcast 0 -> 1; the stall
    // cascades and every rank unwinds with a diagnosed timeout.
    let drop = FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::Collective, 0);
    // Scenario 2: rank 3 dies at its first send; it reports Shutdown,
    // its peers time out on it.
    let kill = FaultPlan::new().kill_rank(3, 0);

    for (label, plan) in [("drop", drop), ("kill", kill)] {
        if let Err(e) = run_scenario(label, plan, &out) {
            eprintln!("fault smoke FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("fault smoke OK: both substrates agree on both scenarios");
    ExitCode::SUCCESS
}
