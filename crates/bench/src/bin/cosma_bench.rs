//! `cosma_bench` — the brick schedule priced against HSUMMA at
//! BlueGene/P scale, with the analytic volume model held to account.
//!
//! Three claims per point, all on the simulator (the only substrate
//! where thousands of ranks genuinely run in parallel):
//!
//! * **volume** — the simulator's measured wire bytes for the cosma
//!   schedule must land within 10% of [`cosma_volume`]'s closed form
//!   (exactly, when the decomposition divides every extent);
//! * **displacement** — on square bandwidth-dominated problems the
//!   `(a, b, c)` brick decomposition moves a fraction of the
//!   2-D algorithms' `O(n²√p)` volume, so its measured makespan beats
//!   HSUMMA's best grouping;
//! * **scoreboard** — [`advise_gemm`]'s winner (which charges cosma the
//!   checkerboard→brick redistribution toll) agrees with the measured
//!   ranking at each point where both algorithms run.
//!
//! Points up to `p = 8192` run thread-per-rank; beyond the VM-map
//! ceiling the record-and-replay engine carries the ladder to
//! `p = 2¹⁶` here (and to the paper's `2²⁰` in `fig10`). Wherever a
//! problem runs on both engines the rows must agree exactly.
//!
//! Also sweeps [`best_brick`] memory budgets at the paper's scale.
//! Counter-intuitively, replication is the memory-*lean* end here: a
//! deeper `c` partitions `k`, shrinking each rank's resident A/B
//! bricks, while the flat `c = 1` grid holds unpartitioned `k`-panels.
//! Tighter budgets therefore force more DFS steps (smaller in-flight
//! panels) until even the resident bricks no longer fit.
//!
//! Results go to stdout and `BENCH_cosma.json`.
//!
//! ```sh
//! cargo run --release -p hsumma-bench --bin cosma_bench [-- --smoke]
//! ```

use hsumma_bench::{model_params, render_table, secs};
use hsumma_core::{sim_cosma_engine, sim_hsumma_engine, CosmaConfig, HierGrid, SimEngine};
use hsumma_matrix::GridShape;
use hsumma_model::{
    advise_gemm, best_brick, cosma_footprint_elems, cosma_volume, AlgoChoice, BcastModel,
    BrickShape,
};
use hsumma_netsim::{Platform, SimBcast};
use std::fmt::Write as _;

/// One measured point of the sweep.
struct Point {
    label: &'static str,
    engine: SimEngine,
    p: usize,
    m: usize,
    n: usize,
    k: usize,
    shape: BrickShape,
    sim_bytes: u64,
    model_bytes: f64,
    rel_err: f64,
    cosma_s: f64,
    /// HSUMMA's best-grouping makespan — square grid-divisible points only.
    hsumma_s: Option<f64>,
    /// What `advise_gemm` crowned at this point.
    advised: String,
    /// Scoreboard and measurement agree on cosma-vs-hsumma (where both ran).
    agree: Option<bool>,
}

/// Measures one point: cosma on the simulator, the analytic volume, and
/// — when the problem is square and `√p` is a usable grid — HSUMMA at
/// the model's best grouping for comparison. The `engine` picks the
/// substrate: thread-per-rank up to the VM-map ceiling, record-and-replay
/// (bit-identical, threadless) beyond it.
#[allow(clippy::too_many_arguments)]
fn measure(
    platform: &Platform,
    engine: SimEngine,
    label: &'static str,
    p: usize,
    m: usize,
    n: usize,
    k: usize,
    b: usize,
) -> Point {
    let cfg = CosmaConfig::for_problem(p, m, n, k);
    let d = cfg.decomp;
    let shape = BrickShape {
        a: d.a,
        b: d.b,
        c: d.c,
    };
    let report = sim_cosma_engine(engine, platform, p, m, n, k, &cfg);
    let model_bytes = cosma_volume(shape, m as f64, n as f64, k as f64);
    let rel_err = (report.bytes as f64 - model_bytes).abs() / model_bytes.max(1.0);

    let params = model_params(platform);
    let advice = advise_gemm(
        &params,
        BcastModel::Binomial,
        m as f64,
        n as f64,
        k as f64,
        p as f64,
        b as f64,
    );
    let advised = match advice.choice {
        AlgoChoice::Summa => "summa".to_string(),
        AlgoChoice::Hsumma { g } => format!("hsumma(G={g})"),
        AlgoChoice::Cannon => "cannon".to_string(),
        AlgoChoice::Cosma { shape } => {
            format!("cosma({}x{}x{})", shape.a, shape.b, shape.c)
        }
    };

    // HSUMMA comparison: needs a square problem on a square grid that
    // divides the extents.
    let q = (p as f64).sqrt() as usize;
    let hsumma_s =
        (m == n && k == n && q * q == p && n.is_multiple_of(q) && (n / q).is_multiple_of(b)).then(
            || {
                let grid = GridShape::new(q, q);
                let g = advice.hsumma.0.round().max(1.0) as usize;
                let groups = HierGrid::factor_groups(grid, g).unwrap_or(GridShape::new(1, 1));
                let outer = (b * 2).min(n / q);
                sim_hsumma_engine(
                    engine,
                    platform,
                    grid,
                    groups,
                    n,
                    outer,
                    b,
                    SimBcast::Binomial,
                    SimBcast::Binomial,
                )
                .total_time
            },
        );
    let agree = hsumma_s.map(|h| {
        let cosma_won_measured = report.total_time < h;
        let cosma_won_scoreboard = matches!(advice.choice, AlgoChoice::Cosma { .. });
        cosma_won_measured == cosma_won_scoreboard
    });

    Point {
        label,
        engine,
        p,
        m,
        n,
        k,
        shape,
        sim_bytes: report.bytes,
        model_bytes,
        rel_err,
        cosma_s: report.total_time,
        hsumma_s,
        advised,
        agree,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let platform = Platform::bluegene_p();

    // Block size fed to the scoreboard (and HSUMMA's inner pivot width).
    let b = if smoke { 16 } else { 128 };
    use SimEngine::{Replay, Threads};
    let points: Vec<Point> = if smoke {
        vec![
            measure(&platform, Threads, "square", 64, 512, 512, 512, b),
            measure(&platform, Threads, "awkward", 13, 97, 61, 83, b),
            measure(&platform, Threads, "tall-skinny", 64, 1 << 14, 128, 128, b),
            // The same square point on the record-and-replay engine:
            // both rows of the table must agree byte for byte.
            measure(&platform, Replay, "square-replay", 64, 512, 512, 512, b),
        ]
    } else {
        vec![
            // The paper's BlueGene/P scale: p = 4096 = 16³ ranks.
            measure(&platform, Threads, "square-4k", 4096, 8192, 8192, 8192, b),
            measure(
                &platform,
                Threads,
                "square-4k-big",
                4096,
                16384,
                16384,
                16384,
                b,
            ),
            // Prime rank count, prime-ish extents: uneven bricks and
            // fragments everywhere the closed form can wobble.
            measure(&platform, Threads, "awkward-4k", 4093, 8191, 8191, 8191, b),
            // Tall-skinny: the regime 2-D checkerboards fundamentally
            // waste — the search spends every rank along m.
            measure(
                &platform,
                Threads,
                "tall-skinny-4k",
                4096,
                1 << 20,
                512,
                512,
                b,
            ),
            // Upper end of the *threaded* range. One OS thread per rank
            // (~4 VM maps each) means the default `vm.max_map_count` of
            // 65530 caps thread-per-rank runs just short of p = 16384;
            // 8192 is the largest comfortable power of two.
            measure(
                &platform,
                Threads,
                "square-8k",
                8192,
                16384,
                16384,
                16384,
                b,
            ),
            // Past the thread ceiling the record-and-replay engine takes
            // over: same schedule, same bytes, zero threads. The ladder
            // continues to the paper's 2²⁰ ranks in `fig10`.
            measure(
                &platform,
                Replay,
                "square-16k",
                16384,
                16384,
                16384,
                16384,
                b,
            ),
            measure(
                &platform,
                Replay,
                "square-64k",
                65536,
                32768,
                32768,
                32768,
                b,
            ),
        ]
    };

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.label.to_string(),
                match pt.engine {
                    SimEngine::Threads => "threads".to_string(),
                    SimEngine::Replay => "replay".to_string(),
                },
                format!("{}", pt.p),
                format!("{}x{}x{}", pt.m, pt.k, pt.n),
                format!("{}x{}x{}", pt.shape.a, pt.shape.b, pt.shape.c),
                format!("{:.2}", pt.sim_bytes as f64 / 1e9),
                format!("{:.2}%", pt.rel_err * 100.0),
                secs(pt.cosma_s),
                pt.hsumma_s.map_or("-".to_string(), secs),
                pt.advised.clone(),
                pt.agree.map_or("-".to_string(), |a| {
                    if a { "yes" } else { "NO" }.to_string()
                }),
            ]
        })
        .collect();
    println!("== cosma vs hsumma on simulated BlueGene/P (b = {b}) ==\n");
    println!(
        "{}",
        render_table(
            &[
                "point",
                "engine",
                "p",
                "m x k x n",
                "bricks",
                "sim GB",
                "vol err",
                "cosma s",
                "hsumma s",
                "advised",
                "agree"
            ],
            &rows
        )
    );

    // Memory-budget sweep (model-only): tighter per-rank budgets force
    // shallower replication.
    let params = model_params(&platform);
    let (bm, bn, bk, bp) = if smoke {
        (512.0, 512.0, 512.0, 64)
    } else {
        (16384.0, 16384.0, 16384.0, 4096)
    };
    println!("memory-budget sweep at p = {bp}, n = {bm}:");
    let unbounded = best_brick(&params, BcastModel::Binomial, bp, bm, bn, bk, None)
        .expect("unbounded search always finds a shape");
    let base = cosma_footprint_elems(unbounded.shape, bm, bn, bk, unbounded.steps);
    for (name, frac) in [
        ("unbounded", None),
        ("0.8x winner", Some(0.8)),
        ("0.6x winner", Some(0.6)),
    ] {
        let adv = best_brick(
            &params,
            BcastModel::Binomial,
            bp,
            bm,
            bn,
            bk,
            frac.map(|f| f * base),
        );
        match adv {
            Some(adv) => println!(
                "  {name:<12} -> {}x{}x{} (steps {}, comm {})",
                adv.shape.a,
                adv.shape.b,
                adv.shape.c,
                adv.steps,
                secs(adv.cost.comm())
            ),
            None => println!("  {name:<12} -> infeasible"),
        }
    }

    // Any problem measured on both engines must agree exactly — the
    // replay engine's contract is bit-identity, not approximation.
    let engines_agree = points.iter().all(|pt| {
        points
            .iter()
            .filter(|o| (o.p, o.m, o.n, o.k) == (pt.p, pt.m, pt.n, pt.k))
            .all(|o| o.sim_bytes == pt.sim_bytes && o.cosma_s == pt.cosma_s)
    });
    let volume_ok = points.iter().all(|pt| pt.rel_err <= 0.10);
    let displaced = points
        .iter()
        .any(|pt| pt.hsumma_s.is_some_and(|h| pt.cosma_s < h) && pt.advised.starts_with("cosma"));
    let scoreboard_ok = points.iter().all(|pt| pt.agree != Some(false));
    println!("\nthreaded and replay engines agree exactly where both ran: {engines_agree}");
    println!("sim wire bytes within 10% of the closed form at every point: {volume_ok}");
    println!("cosma displaces hsumma (measured AND on the scoreboard): {displaced}");
    println!("scoreboard agrees with the measured ranking everywhere both ran: {scoreboard_ok}");

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"smoke\": {smoke},\n  \"platform\": \"bluegene_p\",\n  \"block\": {b},\n  \"points\": [\n"
    );
    for (i, pt) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"engine\": \"{}\", \"p\": {}, \"m\": {}, \"k\": {}, \
             \"n\": {}, \"bricks\": \"{}x{}x{}\", \"sim_bytes\": {}, \"model_bytes\": {:.0}, \
             \"volume_rel_err\": {:.6}, \"cosma_s\": {:.6}, \"hsumma_s\": {}, \
             \"advised\": \"{}\", \"scoreboard_agrees\": {}}}{}",
            pt.label,
            match pt.engine {
                SimEngine::Threads => "threads",
                SimEngine::Replay => "replay",
            },
            pt.p,
            pt.m,
            pt.k,
            pt.n,
            pt.shape.a,
            pt.shape.b,
            pt.shape.c,
            pt.sim_bytes,
            pt.model_bytes,
            pt.rel_err,
            pt.cosma_s,
            pt.hsumma_s
                .map_or("null".to_string(), |h| format!("{h:.6}")),
            pt.advised,
            pt.agree.map_or("null".to_string(), |a| a.to_string()),
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"engines_agree\": {engines_agree},\n  \
         \"volume_within_10pct\": {volume_ok},\n  \
         \"cosma_displaces_hsumma\": {displaced},\n  \
         \"scoreboard_agrees\": {scoreboard_ok}\n}}\n"
    );
    std::fs::write("BENCH_cosma.json", &json).expect("write BENCH_cosma.json");
    println!("wrote BENCH_cosma.json");
}
