//! `overlap_pipeline` — prices the double-buffered pivot pipeline
//! against the one-step-lookahead overlap baseline it replaced.
//!
//! Two measurements per algorithm (SUMMA and HSUMMA):
//!
//! * **threaded** — median wall-clock of the full job on rank threads
//!   with real data. Note this is an in-process measurement: on a
//!   machine with fewer cores than ranks the total CPU work bounds the
//!   wall clock, so the pipeline's win shrinks toward 1.0× as the
//!   scheduler serializes ranks (the JSON records `host_cpus` so the
//!   number stays interpretable).
//! * **sim** — the same generic schedules on the network simulator's
//!   virtual clocks, where every rank genuinely runs in parallel and
//!   blocking time is priced exactly. This is the structural win the
//!   rewrite is about: waits deferred behind compute cost nothing
//!   unless the transfer is genuinely late. Measured on two profiles:
//!   BlueGene/P-effective (bandwidth-dominated — small wins) and
//!   Grid5000-effective (the paper's own fitted latency-heavy profile,
//!   where the pipeline's send-before-wait ordering pays off). The
//!   ≥1.10× target is assessed on the simulator because it is the only
//!   substrate here on which the ranks are not fighting for host cores.
//!
//! Results go to stdout and `BENCH_overlap.json`.
//!
//! ```sh
//! cargo run --release -p hsumma-bench --bin overlap_pipeline [-- --smoke]
//! ```

use hsumma_core::{
    hsumma_overlap, hsumma_overlap_lookahead, summa_overlap, summa_overlap_lookahead, Communicator,
    HsummaConfig, PhantomMat, SummaConfig,
};
use hsumma_matrix::{seeded_uniform, BlockDist, GemmKernel, GridShape, Matrix};
use hsumma_netsim::spmd::SimWorld;
use hsumma_netsim::{Platform, SimNet};
use hsumma_runtime::{CommError, Runtime};
use std::fmt::Write as _;
use std::time::Instant;

/// Median of per-rep wall times for `f`, with one warmup rep.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[reps / 2]
}

/// One algorithm under test, generic over the substrate so the same
/// closure drives rank threads and the simulator.
type Algo<C> = fn(
    &C,
    GridShape,
    usize,
    &<C as Communicator>::Mat,
    &<C as Communicator>::Mat,
    &HsummaConfig,
) -> Result<<C as Communicator>::Mat, CommError>;

fn hsumma_pipelined<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &HsummaConfig,
) -> Result<C::Mat, CommError> {
    hsumma_overlap(comm, grid, n, a, b, cfg)
}

fn hsumma_baseline<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &HsummaConfig,
) -> Result<C::Mat, CommError> {
    hsumma_overlap_lookahead(comm, grid, n, a, b, cfg)
}

/// Threaded wall-clock of one HSUMMA variant over pre-scattered tiles.
fn threaded_secs(
    reps: usize,
    grid: GridShape,
    n: usize,
    tiles: &(Vec<Matrix>, Vec<Matrix>),
    cfg: &HsummaConfig,
    algo: Algo<hsumma_runtime::Comm>,
) -> f64 {
    let (at, bt) = tiles;
    median_secs(reps, || {
        Runtime::run(grid.size(), |comm| {
            algo(
                comm,
                grid,
                n,
                &at[comm.rank()].clone(),
                &bt[comm.rank()].clone(),
                cfg,
            )
            .unwrap()
        });
    })
}

/// Virtual makespan of one HSUMMA variant on the simulator.
fn sim_secs(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    cfg: &HsummaConfig,
    pipelined: bool,
) -> f64 {
    let net = SimNet::new(grid.size(), platform.net);
    let tile = PhantomMat {
        rows: n / grid.rows,
        cols: n / grid.cols,
    };
    let cfg = *cfg;
    let (net, _) = SimWorld::run(net, platform.gamma, false, move |comm| {
        if pipelined {
            hsumma_overlap(comm, grid, n, &tile, &tile, &cfg).unwrap()
        } else {
            hsumma_overlap_lookahead(comm, grid, n, &tile, &tile, &cfg).unwrap()
        }
    });
    net.elapsed()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The acceptance shape: p = 16 ranks on a 4x4 grid, n >= 1024 for
    // the full run (where γ·2n³/p dominates and there is compute to
    // hide behind). Smoke keeps CI fast.
    let grid = GridShape::new(4, 4);
    let groups = GridShape::new(2, 2);
    let n = if smoke { 128 } else { 1024 };
    let (bb, bs) = if smoke { (16, 8) } else { (64, 32) };
    let reps = if smoke { 3 } else { 5 };
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let cfg = HsummaConfig {
        outer_block: bb,
        inner_block: bs,
        kernel: GemmKernel::Packed,
        ..HsummaConfig::uniform(groups, bb)
    };
    let scfg = SummaConfig {
        block: bs,
        kernel: GemmKernel::Packed,
        ..SummaConfig::default()
    };

    let dist = BlockDist::new(grid, n, n);
    let tiles = (
        dist.scatter(&seeded_uniform(n, n, 11)),
        dist.scatter(&seeded_uniform(n, n, 12)),
    );

    // Threaded runtime: pipelined vs lookahead, HSUMMA then SUMMA.
    let th_pipe = threaded_secs(reps, grid, n, &tiles, &cfg, hsumma_pipelined);
    let th_look = threaded_secs(reps, grid, n, &tiles, &cfg, hsumma_baseline);
    let (at, bt) = &tiles;
    let th_s_pipe = median_secs(reps, || {
        Runtime::run(grid.size(), |comm| {
            summa_overlap(
                comm,
                grid,
                n,
                &at[comm.rank()].clone(),
                &bt[comm.rank()].clone(),
                &scfg,
            )
            .unwrap()
        });
    });
    let th_s_look = median_secs(reps, || {
        Runtime::run(grid.size(), |comm| {
            summa_overlap_lookahead(
                comm,
                grid,
                n,
                &at[comm.rank()].clone(),
                &bt[comm.rank()].clone(),
                &scfg,
            )
            .unwrap()
        });
    });

    // Simulator: the same schedules on virtual clocks, two platforms.
    let bg = Platform::bluegene_p_effective();
    let sim_bg_pipe = sim_secs(&bg, grid, n, &cfg, true);
    let sim_bg_look = sim_secs(&bg, grid, n, &cfg, false);
    let g5k = Platform::grid5000_effective();
    let sim_g5k_pipe = sim_secs(&g5k, grid, n, &cfg, true);
    let sim_g5k_look = sim_secs(&g5k, grid, n, &cfg, false);
    // Boundary-heavy variant (b = B): every inner slice is an outer
    // boundary, so the adaptive cross-boundary handoff carries the whole
    // schedule — the pipeline's best case.
    let bcfg = HsummaConfig {
        inner_block: bb,
        ..cfg
    };
    let sim_bh_pipe = sim_secs(&g5k, grid, n, &bcfg, true);
    let sim_bh_look = sim_secs(&g5k, grid, n, &bcfg, false);

    let th_speedup = th_look / th_pipe;
    let th_s_speedup = th_s_look / th_s_pipe;
    let sim_bg_speedup = sim_bg_look / sim_bg_pipe;
    let sim_g5k_speedup = sim_g5k_look / sim_g5k_pipe;
    let sim_bh_speedup = sim_bh_look / sim_bh_pipe;
    let meets = sim_g5k_speedup >= 1.10;

    println!(
        "double-buffered pipeline vs one-step lookahead \
         (p={}, n={n}, G={}x{}, B={bb}, b={bs}, median of {reps} reps, {host_cpus} host cpus):",
        grid.size(),
        groups.rows,
        groups.cols
    );
    println!(
        "  threaded hsumma: {:.4} ms -> {:.4} ms  ({th_speedup:.3}x)",
        th_look * 1e3,
        th_pipe * 1e3
    );
    println!(
        "  threaded summa:  {:.4} ms -> {:.4} ms  ({th_s_speedup:.3}x)",
        th_s_look * 1e3,
        th_s_pipe * 1e3
    );
    println!(
        "  simulated hsumma (bluegene-effective): {:.6} s -> {:.6} s  ({sim_bg_speedup:.3}x)",
        sim_bg_look, sim_bg_pipe
    );
    println!(
        "  simulated hsumma (grid5000-effective): {:.6} s -> {:.6} s  ({sim_g5k_speedup:.3}x)",
        sim_g5k_look, sim_g5k_pipe
    );
    println!(
        "  simulated hsumma (grid5000-effective, b=B={bb}): {:.6} s -> {:.6} s  ({sim_bh_speedup:.3}x)",
        sim_bh_look, sim_bh_pipe
    );
    println!(
        "  simulated grid5000-effective speedup {sim_g5k_speedup:.3}x — target >= 1.10x: {}",
        if meets { "MET" } else { "MISSED" }
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"host_cpus\": {host_cpus},\n  \
         \"p\": {},\n  \"n\": {n},\n  \"groups\": \"{}x{}\",\n  \
         \"outer_block\": {bb},\n  \"inner_block\": {bs},\n  \
         \"hsumma_lookahead_s\": {th_look:.6},\n  \"hsumma_pipelined_s\": {th_pipe:.6},\n  \
         \"hsumma_speedup\": {th_speedup:.4},\n  \
         \"summa_lookahead_s\": {th_s_look:.6},\n  \"summa_pipelined_s\": {th_s_pipe:.6},\n  \
         \"summa_speedup\": {th_s_speedup:.4},\n  \
         \"sim_bluegene_lookahead_s\": {sim_bg_look:.6},\n  \"sim_bluegene_pipelined_s\": {sim_bg_pipe:.6},\n  \
         \"sim_bluegene_speedup\": {sim_bg_speedup:.4},\n  \
         \"sim_grid5000_lookahead_s\": {sim_g5k_look:.6},\n  \"sim_grid5000_pipelined_s\": {sim_g5k_pipe:.6},\n  \
         \"sim_grid5000_speedup\": {sim_g5k_speedup:.4},\n  \
         \"sim_grid5000_boundary_lookahead_s\": {sim_bh_look:.6},\n  \"sim_grid5000_boundary_pipelined_s\": {sim_bh_pipe:.6},\n  \
         \"sim_grid5000_boundary_speedup\": {sim_bh_speedup:.4},\n  \
         \"meets_1_10x_target\": {meets}\n}}\n",
        grid.size(),
        groups.rows,
        groups.cols
    );
    std::fs::write("BENCH_overlap.json", &json).expect("write BENCH_overlap.json");
    println!("wrote BENCH_overlap.json");
}
