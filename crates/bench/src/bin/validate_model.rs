//! Model validation (§V-A.1, §V-B.1): checks the regime condition
//! `α/β ≷ 2nb/p` for each platform, locates the simulated optimum, and
//! compares it against the analytic `G = √p` prediction — the same
//! validation the paper walks through.

use hsumma_bench::{grid_for, model_params, render_table, Profile};
use hsumma_core::tuning::{best_by_comm, power_of_two_gs, sweep_groups};
use hsumma_model::{classify_regime, dtheta_dg_vdg};
use hsumma_netsim::Platform;

fn main() {
    println!("Analytic-model validation\n");

    let cases = [
        (
            "Grid5000",
            Platform::grid5000(),
            8192usize,
            128usize,
            64usize,
        ),
        ("BlueGene/P", Platform::bluegene_p(), 65536, 16384, 256),
        ("Exascale", Platform::exascale(), 1 << 22, 1 << 20, 256),
    ];

    let mut rows = Vec::new();
    for (name, platform, n, p, b) in &cases {
        let m = model_params(platform);
        let regime = classify_regime(m.alpha, m.beta, *n as f64, *p as f64, *b as f64);
        let lhs = m.alpha / (m.beta * hsumma_model::ELEM_BYTES);
        let rhs = 2.0 * (*n as f64) * (*b as f64) / *p as f64;
        let d_at_opt = dtheta_dg_vdg(
            m.alpha,
            m.beta,
            *n as f64,
            *p as f64,
            (*p as f64).sqrt(),
            *b as f64,
        );
        rows.push(vec![
            name.to_string(),
            format!("{lhs:.0}"),
            format!("{rhs:.0}"),
            format!("{regime:?}"),
            format!("{d_at_opt:.2e}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "platform",
                "alpha/beta_elem",
                "2nb/p",
                "regime",
                "dT/dG at sqrt(p)"
            ],
            &rows
        )
    );
    println!("expected: InteriorMinimum everywhere (the paper verifies the same inequality),");
    println!("and a vanishing derivative at G = sqrt(p).\n");

    // Where does the *simulated* optimum land relative to √p? (The paper
    // §V-A.1 notes the experimental minimum is near but not exactly √p.)
    println!("simulated optimum vs analytic prediction (ideal profile):");
    let mut rows = Vec::new();
    for (name, platform, n, p, b) in &cases[..2] {
        let grid = grid_for(*p);
        let bcast = Profile::Ideal.bcast();
        let sweep = sweep_groups(
            platform,
            grid,
            *n,
            *b,
            *b,
            bcast,
            bcast,
            &power_of_two_gs(*p),
        );
        let best = best_by_comm(&sweep);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", (*p as f64).sqrt()),
            best.g.to_string(),
            format!("{:.4}", best.report.comm_time),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "platform",
                "sqrt(p)",
                "simulated best G",
                "comm at best (s)"
            ],
            &rows
        )
    );
}
