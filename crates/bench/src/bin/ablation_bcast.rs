//! Ablation: broadcast algorithm inside and between groups.
//!
//! §II-B surveys the MPI broadcast menu; HSUMMA "can use any of the
//! existing optimized broadcast algorithms and still reduce the
//! communication cost of SUMMA" (§II). This sweep fixes the platform and
//! grouping and varies the (outer, inner) broadcast pair, showing that
//! the hierarchy's win is not an artifact of one broadcast choice —
//! and which pairing is best at these panel sizes.

use hsumma_bench::{grid_for, render_table, secs};
use hsumma_core::simdrive::{sim_hsumma_sync, sim_summa_sync};
use hsumma_core::HierGrid;
use hsumma_netsim::{Platform, SimBcast};

const ALGOS: [(&str, SimBcast); 5] = [
    ("flat", SimBcast::Flat),
    ("binomial", SimBcast::Binomial),
    ("binary", SimBcast::Binary),
    ("pipelined16", SimBcast::Pipelined { segments: 16 }),
    ("vdgeijn", SimBcast::ScatterAllgather),
];

fn main() {
    let platform = Platform::bluegene_p();
    let (n, p, b, g) = (65536usize, 2048usize, 256usize, 64usize);
    let grid = grid_for(p);
    let groups = HierGrid::factor_groups(grid, g).expect("valid grouping");

    println!("Ablation — broadcast algorithms (ideal BG/P parameters)");
    println!(
        "n = {n}, p = {p} (grid {}x{}), G = {g} ({}x{}), b = B = {b}\n",
        grid.rows, grid.cols, groups.rows, groups.cols
    );

    println!("SUMMA per broadcast algorithm:");
    let mut rows = Vec::new();
    for (name, algo) in ALGOS {
        let r = sim_summa_sync(&platform, grid, n, b, algo);
        rows.push(vec![name.to_string(), secs(r.comm_time)]);
    }
    println!("{}", render_table(&["bcast", "SUMMA comm (s)"], &rows));

    println!("\nHSUMMA per (outer, inner) broadcast pair:");
    let mut rows = Vec::new();
    for (outer_name, outer) in ALGOS {
        let mut row = vec![outer_name.to_string()];
        for (_, inner) in ALGOS {
            let r = sim_hsumma_sync(&platform, grid, groups, n, b, b, outer, inner);
            row.push(secs(r.comm_time));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("outer \\ inner")
        .chain(ALGOS.iter().map(|(n, _)| *n))
        .collect();
    println!("{}", render_table(&headers, &rows));

    println!("\nreading: every column's HSUMMA times sit at or below the same");
    println!("algorithm's SUMMA row — the hierarchy helps for any broadcast whose");
    println!("cost grows super-logarithmically in the communicator width.");
}
