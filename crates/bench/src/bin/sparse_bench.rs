//! Sparse crossover: native 2-D SpGEMM vs densify-and-SUMMA, swept over
//! operand fill.
//!
//! The experiment behind the planner's nnz-aware scoreboard
//! ([`advise_sparse`]): at low fill the dense schedule ships and
//! multiplies zeros, near full density CSR's 12-byte entries and
//! Gustavson bookkeeping lose to the packed dense kernel. Somewhere in
//! between the two legs cross. This bench measures both legs end to end
//! — operand prep (scatter / densify) plus the distributed multiply, the
//! same cost a served `SpGemm` job pays either way — at each density,
//! and records the measured crossover next to the scoreboard's
//! prediction for the modeled platform.
//!
//! Results go to stdout and `BENCH_sparse.json`. `--smoke` shrinks the
//! sweep for CI. Best-of-[`REPS`] minima are reported (one-sided noise,
//! as in `kernel_shootout`).

use hsumma_bench::{model_params, render_table, secs};
use hsumma_core::{summa, SummaConfig};
use hsumma_matrix::sparse::{seeded_sparse, spgemm, CsrMatrix};
use hsumma_matrix::{BlockDist, GemmKernel, GridShape};
use hsumma_model::{advise_sparse, SparseChoice};
use hsumma_netsim::Platform;
use hsumma_runtime::{BcastAlgorithm, Runtime};
use hsumma_serve::sparsity_profile;
use hsumma_sparse::{gather_csr, scatter_csr, spgemm_2d, SparseConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Timed passes per leg per density; best-of is reported.
const REPS: usize = 3;

/// Row samples fed to the planner-side profile estimator.
const PROFILE_SAMPLES: usize = 64;

struct Sweep {
    grid: GridShape,
    n: usize,
    block: usize,
    densities: &'static [f64],
}

struct Row {
    density: f64,
    nnz_a: usize,
    spgemm_s: f64,
    dense_s: f64,
    measured: SparseChoice,
    predicted: SparseChoice,
    model_ratio: f64,
}

fn choice_label(c: SparseChoice) -> &'static str {
    match c {
        SparseChoice::SpGemm => "spgemm",
        SparseChoice::DenseGemm => "dense",
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep = if smoke {
        Sweep {
            grid: GridShape::new(2, 2),
            n: 64,
            block: 16,
            densities: &[0.05, 0.5, 1.0],
        }
    } else {
        Sweep {
            grid: GridShape::new(2, 2),
            n: 256,
            block: 32,
            densities: &[0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0],
        }
    };
    let p = sweep.grid.size();
    println!(
        "Sparse crossover: n={} on p={} ({}x{} grid), b={}{}\n",
        sweep.n,
        p,
        sweep.grid.rows,
        sweep.grid.cols,
        sweep.block,
        if smoke { " [smoke]" } else { "" }
    );

    // The scoreboard predicts for a *modeled* platform (the paper's
    // Grid'5000 cluster), not for this box's thread runtime — the JSON
    // records both verdicts side by side rather than asserting they
    // agree point for point.
    let platform = Platform::grid5000();
    let params = model_params(&platform);

    let scfg = SparseConfig {
        block: sweep.block,
        ..SparseConfig::default()
    };
    let dcfg = SummaConfig {
        block: sweep.block,
        bcast: BcastAlgorithm::Binomial,
        kernel: GemmKernel::Packed,
    };

    let mut rows = Vec::new();
    for (i, &density) in sweep.densities.iter().enumerate() {
        let n = sweep.n;
        let grid = sweep.grid;
        let a = seeded_sparse(n, n, density, 2 * i as u64 + 500);
        let b = seeded_sparse(n, n, density, 2 * i as u64 + 501);

        // Native leg: scatter the CSR operands, run spgemm_2d, gather.
        let native = |a: &CsrMatrix, b: &CsrMatrix| -> (f64, CsrMatrix) {
            let start = Instant::now();
            let at: Vec<Arc<CsrMatrix>> = scatter_csr(grid, a).into_iter().map(Arc::new).collect();
            let bt: Vec<Arc<CsrMatrix>> = scatter_csr(grid, b).into_iter().map(Arc::new).collect();
            let tiles: Vec<CsrMatrix> = Runtime::run(grid.size(), |comm| {
                let r = comm.rank();
                spgemm_2d(comm, grid, n, &at[r], &bt[r], &scfg).unwrap()
            })
            .into_iter()
            .map(|t| Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone()))
            .collect();
            let c = gather_csr(grid, &tiles);
            (start.elapsed().as_secs_f64(), c)
        };

        // Densified leg: expand to dense, scatter, SUMMA, gather — what
        // the service runs when the scoreboard says `DenseGemm`.
        let densified = |a: &CsrMatrix, b: &CsrMatrix| -> (f64, CsrMatrix) {
            let start = Instant::now();
            let dist = BlockDist::new(grid, n, n);
            let at = dist.scatter(&a.to_dense());
            let bt = dist.scatter(&b.to_dense());
            let tiles = Runtime::run(grid.size(), |comm| {
                let r = comm.rank();
                summa(comm, grid, n, &at[r], &bt[r], &dcfg).unwrap()
            });
            let c = CsrMatrix::from_dense(&dist.gather(&tiles));
            (start.elapsed().as_secs_f64(), c)
        };

        // Both legs must produce the same product — sanity once per
        // density, outside every timed pass.
        let want = spgemm(&a, &b);
        let (_, got_n) = native(&a, &b);
        let (_, got_d) = densified(&a, &b);
        assert!(got_n.max_abs_diff(&want) < 1e-9, "native leg wrong");
        assert!(got_d.max_abs_diff(&want) < 1e-9, "densified leg wrong");

        let mut spgemm_s = f64::INFINITY;
        let mut dense_s = f64::INFINITY;
        for _ in 0..REPS {
            spgemm_s = spgemm_s.min(native(&a, &b).0);
            dense_s = dense_s.min(densified(&a, &b).0);
        }

        let advice = advise_sparse(
            &params,
            n as f64,
            p as f64,
            sweep.block as f64,
            &sparsity_profile(&a, PROFILE_SAMPLES),
            &sparsity_profile(&b, PROFILE_SAMPLES),
        );
        rows.push(Row {
            density,
            nnz_a: a.nnz(),
            spgemm_s,
            dense_s,
            measured: if spgemm_s < dense_s {
                SparseChoice::SpGemm
            } else {
                SparseChoice::DenseGemm
            },
            predicted: advice.choice,
            model_ratio: advice.spgemm.total() / advice.dense.total(),
        });
    }

    println!(
        "{}",
        render_table(
            &[
                "density",
                "nnz(A)",
                "spgemm (s)",
                "densify (s)",
                "measured",
                "model",
                "model sp/dense",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.2}", r.density),
                        r.nnz_a.to_string(),
                        secs(r.spgemm_s),
                        secs(r.dense_s),
                        choice_label(r.measured).into(),
                        choice_label(r.predicted).into(),
                        format!("{:.3}", r.model_ratio),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );

    // The crossover each verdict implies: the first swept density at
    // which the dense leg wins (1.0-filled operands always should).
    let crossover = |pick: &dyn Fn(&Row) -> SparseChoice| -> Option<f64> {
        rows.iter()
            .find(|r| pick(r) == SparseChoice::DenseGemm)
            .map(|r| r.density)
    };
    let measured_cross = crossover(&|r| r.measured);
    let predicted_cross = crossover(&|r| r.predicted);
    let agreement = rows.iter().filter(|r| r.measured == r.predicted).count();
    println!(
        "measured crossover at density {}; {} scoreboard crossover at {} \
         ({}/{} verdicts agree)",
        measured_cross.map_or("none".into(), |d| format!("{d:.2}")),
        platform.name,
        predicted_cross.map_or("none".into(), |d| format!("{d:.2}")),
        agreement,
        rows.len()
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"p\": {p},\n  \"grid\": \"{}x{}\",\n  \"n\": {},\n  \"b\": {},\n  \
         \"smoke\": {smoke},\n  \"reps\": {REPS},\n  \"model_platform\": \"{}\",\n",
        sweep.grid.rows, sweep.grid.cols, sweep.n, sweep.block, platform.name
    );
    let _ = write!(
        json,
        "  \"measured_crossover_density\": {},\n  \"predicted_crossover_density\": {},\n  \
         \"verdicts_agree\": {agreement},\n  \"rows\": [\n",
        measured_cross.map_or("null".into(), |d| format!("{d}")),
        predicted_cross.map_or("null".into(), |d| format!("{d}")),
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"density\": {}, \"nnz_a\": {}, \"spgemm_s\": {:.6}, \
             \"densify_s\": {:.6}, \"measured\": \"{}\", \"predicted\": \"{}\", \
             \"model_ratio\": {:.4}}}{}",
            r.density,
            r.nnz_a,
            r.spgemm_s,
            r.dense_s,
            choice_label(r.measured),
            choice_label(r.predicted),
            r.model_ratio,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_sparse.json", &json).expect("write BENCH_sparse.json");
    println!("wrote BENCH_sparse.json");
}
