//! Clean-path overhead guard for the fallible-communication refactor.
//!
//! Every blocking wait in the runtime now consults a deadline and a
//! cancellation flag, and every send consults an optional fault cursor.
//! This harness prices that plumbing on a *healthy* run: the same
//! binomial broadcast and the same SUMMA multiply, once with no failure
//! policy and once with an armed deadline plus an (empty) fault plan —
//! the most instrumented configuration a clean job can have. The target
//! is **< 3 %** median overhead; results go to stdout and
//! `BENCH_faults.json`.
//!
//! ```sh
//! cargo run --release -p hsumma-bench --bin fault_overhead [-- --smoke]
//! ```

use hsumma_core::{run_planned, summa, PlannedAlgo, SummaConfig};
use hsumma_matrix::{seeded_uniform, BlockDist, GemmKernel, GridShape};
use hsumma_runtime::{collectives, BcastAlgorithm, FaultPlan, JobOptions, Runtime};
use hsumma_serve::{Planner, PlannerConfig};
use hsumma_trace::Tracer;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Median of per-rep wall times for `f`, with one warmup rep.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[reps / 2]
}

/// The armed-but-idle policy: a deadline no healthy run approaches plus
/// a fault plan with no rules, so every guard is live and none fires.
fn armed() -> JobOptions {
    JobOptions::default()
        .with_deadline(Duration::from_secs(120))
        .with_faults(Arc::new(FaultPlan::new()))
}

fn bcast_leg(p: usize, elems: usize, opts: &JobOptions) {
    Runtime::try_run_opts(p, &Tracer::disabled(), opts, |comm| {
        let mut buf = if comm.rank() == 0 {
            vec![1.0f64; elems]
        } else {
            vec![0.0f64; elems]
        };
        collectives::bcast_f64(comm, BcastAlgorithm::Binomial, 0, &mut buf).unwrap();
        buf[elems - 1]
    })
    .expect("clean broadcast");
}

fn summa_leg(
    grid: GridShape,
    n: usize,
    tiles: &(Vec<hsumma_matrix::Matrix>, Vec<hsumma_matrix::Matrix>),
    opts: &JobOptions,
) {
    let cfg = SummaConfig {
        block: 32,
        kernel: GemmKernel::Blocked,
        ..SummaConfig::default()
    };
    let (at, bt) = tiles;
    Runtime::try_run_opts(grid.size(), &Tracer::disabled(), opts, |comm| {
        summa(comm, grid, n, &at[comm.rank()], &bt[comm.rank()], &cfg).unwrap()
    })
    .expect("clean SUMMA");
}

/// The GEMM path the model-driven planner actually picks for this shape
/// — since the pipelined rewrite, that may be a nonblocking-collective
/// schedule, whose handle machinery must also stay within the clean-path
/// overhead budget.
fn planned_leg(
    grid: GridShape,
    n: usize,
    plan: &PlannedAlgo,
    tiles: &(Vec<hsumma_matrix::Matrix>, Vec<hsumma_matrix::Matrix>),
    opts: &JobOptions,
) {
    let (at, bt) = tiles;
    let plan = *plan;
    Runtime::try_run_opts(grid.size(), &Tracer::disabled(), opts, move |comm| {
        run_planned(comm, grid, n, &at[comm.rank()], &bt[comm.rank()], &plan).unwrap()
    })
    .expect("clean planned GEMM");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 7 } else { 31 };
    let elems = 262_144;
    let (p, n) = (8, if smoke { 128 } else { 256 });
    let grid = GridShape::new(2, 2);
    let dist = BlockDist::new(grid, n, n);
    let tiles = (
        dist.scatter(&seeded_uniform(n, n, 1)),
        dist.scatter(&seeded_uniform(n, n, 2)),
    );

    // What the model-driven planner would run for this shape, and which
    // GEMM path (pipelined nonblocking collectives vs blocking) that is.
    let plan = Planner::new(grid, PlannerConfig::default())
        .plan_square(n)
        .plan;
    let gemm_path = plan.gemm_path();

    let unbounded = JobOptions::default();
    let bcast_base = median_secs(reps, || bcast_leg(p, elems, &unbounded));
    let bcast_armed = median_secs(reps, || bcast_leg(p, elems, &armed()));
    let summa_base = median_secs(reps, || summa_leg(grid, n, &tiles, &unbounded));
    let summa_armed = median_secs(reps, || summa_leg(grid, n, &tiles, &armed()));
    let plan_base = median_secs(reps, || planned_leg(grid, n, &plan, &tiles, &unbounded));
    let plan_armed = median_secs(reps, || planned_leg(grid, n, &plan, &tiles, &armed()));

    let pct = |base: f64, guarded: f64| 100.0 * (guarded - base) / base;
    let bcast_pct = pct(bcast_base, bcast_armed);
    let summa_pct = pct(summa_base, summa_armed);
    let plan_pct = pct(plan_base, plan_armed);
    let worst = bcast_pct.max(summa_pct).max(plan_pct);
    let meets = worst < 3.0;

    println!("clean-path overhead of the armed failure policy (median of {reps} reps):");
    println!(
        "  bcast p={p} {elems} f64s: {:.4} ms -> {:.4} ms  ({bcast_pct:+.2}%)",
        bcast_base * 1e3,
        bcast_armed * 1e3
    );
    println!(
        "  summa p={} n={n}:        {:.4} ms -> {:.4} ms  ({summa_pct:+.2}%)",
        grid.size(),
        summa_base * 1e3,
        summa_armed * 1e3
    );
    println!(
        "  planner's pick [{} — gemm path: {gemm_path}]: {:.4} ms -> {:.4} ms  ({plan_pct:+.2}%)",
        plan.describe(),
        plan_base * 1e3,
        plan_armed * 1e3
    );
    println!(
        "  worst leg {worst:+.2}% — target < 3%: {}",
        if meets { "MET" } else { "MISSED" }
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"smoke\": {smoke},\n  \"reps\": {reps},\n  \"policy\": \"120s deadline + empty FaultPlan\",\n  \
         \"bcast_p\": {p},\n  \"bcast_elems\": {elems},\n  \
         \"bcast_unbounded_s\": {bcast_base:.6},\n  \"bcast_armed_s\": {bcast_armed:.6},\n  \
         \"bcast_overhead_pct\": {bcast_pct:.3},\n  \
         \"summa_p\": {},\n  \"summa_n\": {n},\n  \
         \"summa_unbounded_s\": {summa_base:.6},\n  \"summa_armed_s\": {summa_armed:.6},\n  \
         \"summa_overhead_pct\": {summa_pct:.3},\n  \
         \"plan\": \"{}\",\n  \"gemm_path\": \"{gemm_path}\",\n  \
         \"planned_unbounded_s\": {plan_base:.6},\n  \"planned_armed_s\": {plan_armed:.6},\n  \
         \"planned_overhead_pct\": {plan_pct:.3},\n  \
         \"worst_overhead_pct\": {worst:.3},\n  \"meets_3pct_target\": {meets}\n}}\n",
        grid.size(),
        plan.describe()
    );
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("wrote BENCH_faults.json");
}
