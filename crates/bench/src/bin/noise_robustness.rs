//! Robustness of the optimal grouping under system noise.
//!
//! The paper selects `G` by sampling and notes (§V-A.1) that its
//! experimental minimum is near but not exactly the model's `√p`. One
//! practical question a deployer has: does the chosen `G` survive
//! transfer-time jitter (OS noise, network variation)? This bin repeats
//! the BlueGene/P group sweep under increasing deterministic jitter and
//! reports where the optimum lands and how much the gain degrades.

use hsumma_bench::{grid_for, render_table, Machine, Profile};
use hsumma_core::grid::HierGrid;
use hsumma_core::simdrive::{sim_hsumma_on, sim_summa_on};
use hsumma_core::tuning::power_of_two_gs;
use hsumma_netsim::{NoiseModel, SimNet};

fn main() {
    let profile = Profile::Measured;
    let platform = profile.platform(Machine::BlueGeneP);
    let bcast = profile.bcast();
    let (n, p, b) = (32768usize, 2048usize, 256usize);
    let grid = grid_for(p);

    println!("Noise robustness — BlueGene/P (measured profile), p = {p}, n = {n}, b = B = {b}");
    println!("jitter: each transfer slowed by a uniform factor in [1, 1+amplitude]\n");

    let mut rows = Vec::new();
    for amplitude in [0.0f64, 0.2, 0.5, 1.0] {
        let summa = {
            let mut net = SimNet::new(grid.size(), platform.net);
            if amplitude > 0.0 {
                net.set_noise(NoiseModel::new(1, amplitude));
            }
            sim_summa_on(&mut net, platform.gamma, grid, n, b, bcast, true)
        };
        let mut best: Option<(usize, f64)> = None;
        for g in power_of_two_gs(p) {
            let Some(groups) = HierGrid::factor_groups(grid, g) else {
                continue;
            };
            let mut net = SimNet::new(grid.size(), platform.net);
            if amplitude > 0.0 {
                net.set_noise(NoiseModel::new(1, amplitude));
            }
            let r = sim_hsumma_on(
                &mut net,
                platform.gamma,
                grid,
                groups,
                n,
                b,
                b,
                bcast,
                bcast,
                true,
            );
            if best.is_none_or(|(_, t)| r.comm_time < t) {
                best = Some((g, r.comm_time));
            }
        }
        let (best_g, best_comm) = best.expect("non-empty sweep");
        rows.push(vec![
            format!("{:.0}%", amplitude * 100.0),
            format!("{:.3}", summa.comm_time),
            format!("{:.3}", best_comm),
            best_g.to_string(),
            format!("{:.2}x", summa.comm_time / best_comm),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "jitter",
                "SUMMA comm (s)",
                "HSUMMA comm (s)",
                "best G",
                "gain"
            ],
            &rows
        )
    );
    println!("\nexpected: the optimal G and the relative gain are stable under");
    println!("uniform jitter (both algorithms slow down together) — grouping");
    println!("decisions made on a quiet machine transfer to a noisy one.");
}
