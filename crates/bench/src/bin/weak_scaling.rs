//! Weak-scaling trajectory toward exascale (§I's motivation: "as HPC
//! moves towards exascale, the cost of matrix multiplication will be
//! dominated by communication cost").
//!
//! Holds per-processor memory constant (`n ∝ √p`) and walks `p` from
//! BG/P scale to the exascale roadmap, reporting — via the analytic
//! model — the *communication fraction* of SUMMA vs best-G HSUMMA. The
//! paper's motivating claim corresponds to SUMMA's fraction climbing
//! with `p`; HSUMMA's should climb markedly more slowly.

use hsumma_bench::render_table;
use hsumma_model::predict::{best_point, power_of_two_gs, sweep_groups};
use hsumma_model::{summa_cost, BcastModel, ModelParams};

fn main() {
    let params = ModelParams::exascale();
    let b = 256.0;
    // n = 2^22 at p = 2^20 (the paper's exascale point) scaled as √p.
    let n_per_sqrt_p = (1u64 << 22) as f64 / ((1u64 << 20) as f64).sqrt();

    println!("Weak scaling toward exascale (analytic, van de Geijn broadcast)");
    println!("memory per processor held constant: n = {n_per_sqrt_p:.0}·sqrt(p), b = B = {b}\n");

    let mut rows = Vec::new();
    for log2p in [14u32, 16, 18, 20, 22] {
        let p = (1u64 << log2p) as f64;
        let n = n_per_sqrt_p * p.sqrt();
        let summa = summa_cost(&params, BcastModel::VanDeGeijn, n, p, b);
        let sweep = sweep_groups(
            &params,
            BcastModel::VanDeGeijn,
            n,
            p,
            b,
            &power_of_two_gs(p),
        );
        let best = best_point(&sweep);
        rows.push(vec![
            format!("2^{log2p}"),
            format!("{n:.0}"),
            format!("{:.1}%", 100.0 * summa.comm() / summa.total()),
            format!("{:.1}%", 100.0 * best.hsumma.comm() / best.hsumma.total()),
            format!("{:.0}", best.g),
            format!("{:.2}x", summa.comm() / best.hsumma.comm()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "p",
                "n",
                "SUMMA comm share",
                "HSUMMA comm share",
                "best G",
                "comm gain"
            ],
            &rows
        )
    );
    println!("\nreading: under weak scaling SUMMA's communication share grows with p");
    println!("(the paper's exascale motivation); HSUMMA defers that crossover.");
}
