//! Table II: SUMMA vs HSUMMA cost terms under the van de Geijn broadcast,
//! including the optimal row `HSUMMA(G = √p, b = B)` of Eq. (12).
//!
//! Under van de Geijn's scatter/allgather the latency multiplier is
//! linear in the broadcast width, so splitting a `√p`-wide broadcast into
//! `√G`- and `√p/√G`-wide phases genuinely reduces cost — this is the
//! regime where HSUMMA wins.

use hsumma_bench::render_table;
use hsumma_model::cost::hsumma_vdg_optimal_cost;
use hsumma_model::{hsumma_cost, summa_cost, BcastModel, ModelParams};

fn emit(config: &str, params: &ModelParams, n: f64, p: f64, b: f64) {
    println!("-- {config}: n = {n}, p = {p}, b = B = {b} --");
    let summa = summa_cost(params, BcastModel::VanDeGeijn, n, p, b);
    let gs = [4.0, 64.0, p.sqrt(), 4096.0];
    let mut rows = vec![vec![
        "SUMMA".to_string(),
        format!("{:.4e}", summa.latency),
        format!("{:.4e}", summa.bandwidth),
        format!("{:.4e}", summa.comm()),
        "1.00x".to_string(),
    ]];
    for g in gs {
        if g < 1.0 || g > p {
            continue;
        }
        let h = hsumma_cost(
            params,
            BcastModel::VanDeGeijn,
            BcastModel::VanDeGeijn,
            n,
            p,
            g,
            b,
            b,
        );
        rows.push(vec![
            format!("HSUMMA G={g}"),
            format!("{:.4e}", h.latency),
            format!("{:.4e}", h.bandwidth),
            format!("{:.4e}", h.comm()),
            format!("{:.2}x", summa.comm() / h.comm()),
        ]);
    }
    let opt = hsumma_vdg_optimal_cost(params, n, p, b);
    rows.push(vec![
        format!("HSUMMA Eq.12 (G=√p={})", p.sqrt()),
        format!("{:.4e}", opt.latency),
        format!("{:.4e}", opt.bandwidth),
        format!("{:.4e}", opt.comm()),
        format!("{:.2}x", summa.comm() / opt.comm()),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "algorithm",
                "latency (s)",
                "bandwidth (s)",
                "comm (s)",
                "gain"
            ],
            &rows
        )
    );
    println!();
}

fn main() {
    println!("Table II — comparison with van de Geijn broadcast (evaluated)\n");
    emit(
        "Grid5000 configuration",
        &ModelParams::grid5000(),
        8192.0,
        128.0,
        64.0,
    );
    emit(
        "BlueGene/P configuration",
        &ModelParams::bluegene_p(),
        65536.0,
        16384.0,
        256.0,
    );
    emit(
        "Exascale configuration",
        &ModelParams::exascale(),
        (1u64 << 22) as f64,
        (1u64 << 20) as f64,
        256.0,
    );
}
