//! Extension: hierarchical LU (§VI — "apply the same approach to other
//! numerical linear algebra kernels such as QR/LU factorization").
//!
//! Sweeps the group count for the distributed block LU's panel
//! broadcasts on a simulated BlueGene/P and reports the same
//! flat-vs-hierarchical comparison the paper makes for SUMMA. The
//! communication structure is SUMMA-like (one L-panel broadcast along
//! rows + one U-panel broadcast along columns per step), so the
//! hierarchy should transfer — this bin quantifies how much.

use hsumma_bench::{grid_for, render_table, secs, Machine, Profile};
use hsumma_core::grid::HierGrid;
use hsumma_core::lu::sim_block_lu;

fn main() {
    let (n, p, b) = (65536usize, 16384usize, 256usize);
    let grid = grid_for(p);

    println!("Extension — hierarchical block LU on BlueGene/P (simulated)");
    println!(
        "n = {n}, p = {p} (grid {}x{}), panel width {b}\n",
        grid.rows, grid.cols
    );

    for profile in [Profile::Ideal, Profile::Measured] {
        let platform = profile.platform(Machine::BlueGeneP);
        let bcast = profile.bcast();
        println!("== profile: {} ==", profile.label());
        let flat = sim_block_lu(&platform, grid, n, b, bcast, None, true);
        let mut rows = vec![vec![
            "flat (plain LU)".to_string(),
            secs(flat.comm_time),
            secs(flat.total_time),
            "1.00x".to_string(),
        ]];
        let mut best = (1usize, flat.total_time);
        for g in [4usize, 16, 64, 256, 1024, 4096] {
            let Some(groups) = HierGrid::factor_groups(grid, g) else {
                continue;
            };
            let r = sim_block_lu(&platform, grid, n, b, bcast, Some(groups), true);
            if r.total_time < best.1 {
                best = (g, r.total_time);
            }
            rows.push(vec![
                format!("HLU G={g} ({}x{})", groups.rows, groups.cols),
                secs(r.comm_time),
                secs(r.total_time),
                format!("{:.2}x", flat.total_time / r.total_time),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["configuration", "comm (s)", "total (s)", "total gain"],
                &rows
            )
        );
        println!(
            "best grouping: G = {} -> {:.2}x faster factorization\n",
            best.0,
            flat.total_time / best.1
        );
    }
    println!("reading: the SUMMA->HSUMMA mechanism transfers to LU because the");
    println!("panel broadcasts have the same row/column structure. note the 'comm'");
    println!("column includes idle waits of already-finished ranks (LU's trailing");
    println!("matrix shrinks), so total time is the meaningful comparison.");
}
