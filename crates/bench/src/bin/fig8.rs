//! Figure 8: SUMMA and HSUMMA on 16384 BlueGene/P cores.
//!
//! Execution and communication time against the number of groups,
//! `b = B = 256`, `n = 65536`, `p = 16384`. Paper results: SUMMA 50.2 s
//! total / 36.46 s communication; HSUMMA at `G = 512` 21.26 s total /
//! 6.19 s communication (5.89× less communication, 2.36× less total).
//!
//! Both simulator profiles are reported: *ideal* follows the paper's
//! contention-free model (modest win, minimum at `G = √p`); *measured*
//! uses effective parameters fitted to the paper's SUMMA measurement
//! only, under which the HSUMMA sweep is a genuine prediction that
//! should land close to the measured 21.26 s / 6.19 s.

use hsumma_bench::{grid_for, render_table, run_sweep, secs, Machine, Profile};
use hsumma_core::tuning::best_by_comm;

fn main() {
    let (n, p, b) = (65536usize, 16384usize, 256usize);
    let grid = grid_for(p);
    println!("Figure 8 — SUMMA and HSUMMA on 16384 cores of BlueGene/P (simulated)");
    println!(
        "b = B = {b}, n = {n}, p = {p} (grid {}x{})\n",
        grid.rows, grid.cols
    );

    for profile in [Profile::Ideal, Profile::Measured] {
        let sweep = run_sweep(profile, Machine::BlueGeneP, n, p, b);
        println!("== profile: {} ==", profile.label());
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.g.to_string(),
                    format!("{}x{}", pt.groups.rows, pt.groups.cols),
                    secs(pt.report.total_time),
                    secs(pt.report.comm_time),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["G", "I x J", "HSUMMA total (s)", "HSUMMA comm (s)"],
                &rows
            )
        );
        let best = best_by_comm(&sweep.points);
        println!(
            "SUMMA: total {} s, comm {} s",
            secs(sweep.summa.total_time),
            secs(sweep.summa.comm_time)
        );
        println!(
            "best HSUMMA: G = {} -> total {} s, comm {} s ({:.2}x less comm, {:.2}x less total)\n",
            best.g,
            secs(best.report.total_time),
            secs(best.report.comm_time),
            sweep.summa.comm_time / best.report.comm_time,
            sweep.summa.total_time / best.report.total_time,
        );
    }
    println!("paper (measured): SUMMA 50.2 s total / 36.46 s comm;");
    println!("HSUMMA G=512: 21.26 s total / 6.19 s comm (5.89x comm, 2.36x total)");
}
