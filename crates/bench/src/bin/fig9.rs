//! Figure 9: communication scalability on BlueGene/P.
//!
//! Communication time of SUMMA and best-G HSUMMA against the core count
//! `p ∈ {2048, 4096, 8192, 16384}`, `b = B = 256`, `n = 65536` (VN
//! mode). Paper result: HSUMMA's communication time grows far more slowly
//! than SUMMA's — the gap widens with `p` (2.08× at 2048 → 5.89× at
//! 16384).

use hsumma_bench::{grid_for, render_table, run_sweep, secs, Machine, Profile};
use hsumma_core::tuning::best_by_comm;

fn main() {
    let (n, b) = (65536usize, 256usize);
    println!("Figure 9 — SUMMA vs HSUMMA communication scalability on BlueGene/P (simulated)");
    println!("b = B = {b}, n = {n}\n");

    for profile in [Profile::Ideal, Profile::Measured] {
        println!("== profile: {} ==", profile.label());
        let mut rows = Vec::new();
        let mut gains = Vec::new();
        for p in [2048usize, 4096, 8192, 16384] {
            let grid = grid_for(p);
            let sweep = run_sweep(profile, Machine::BlueGeneP, n, p, b);
            let best = best_by_comm(&sweep.points);
            let gain = sweep.summa.comm_time / best.report.comm_time;
            gains.push(gain);
            rows.push(vec![
                p.to_string(),
                format!("{}x{}", grid.rows, grid.cols),
                secs(sweep.summa.comm_time),
                secs(best.report.comm_time),
                best.g.to_string(),
                format!("{gain:.2}x"),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "p",
                    "grid",
                    "SUMMA comm (s)",
                    "HSUMMA comm (s)",
                    "best G",
                    "gain"
                ],
                &rows
            )
        );
        let widening = gains.windows(2).all(|w| w[1] >= w[0] * 0.99);
        println!(
            "gain trend with p: {:?} ({})\n",
            gains.iter().map(|g| format!("{g:.2}x")).collect::<Vec<_>>(),
            if widening {
                "widening, matching the paper"
            } else {
                "NOT monotone"
            }
        );
    }
    println!("paper (measured): 2.08x less comm at 2048 cores, 5.89x at 16384 cores");
}
