//! Ablation: block size `b = B` — the Fig. 5 vs Fig. 6 discussion.
//!
//! "Smaller block sizes lead to a larger number of steps and this in
//! turn will affect the latency cost" (§V-A). Sweeps `b` on both
//! platforms under both profiles and reports SUMMA and best-G HSUMMA
//! communication time. Under the ideal (van de Geijn) profile the gain
//! shrinks as `b` grows — the Fig. 5 / Fig. 6 contrast, driven by the
//! per-step α term. Under the measured-effective (serialized) profile
//! both algorithms scale with `b` identically, so the gain is
//! `b`-invariant: the paper's stronger-than-modelled `b` dependence is
//! evidence of a fixed per-broadcast-call overhead on the real machines.

use hsumma_bench::{grid_for, render_table, run_sweep, secs, Machine, Profile};
use hsumma_core::tuning::best_by_comm;

fn main() {
    println!("Ablation — block size b = B\n");

    for (label, machine, n, p, blocks) in [
        (
            "Grid5000",
            Machine::Grid5000,
            8192usize,
            128usize,
            vec![64usize, 128, 256, 512],
        ),
        (
            "BlueGene/P",
            Machine::BlueGeneP,
            65536,
            2048,
            vec![128, 256, 512, 1024],
        ),
    ] {
        let grid = grid_for(p);
        for profile in [Profile::Ideal, Profile::Measured] {
            println!(
                "== {label} : n = {n}, p = {p} (grid {}x{}), profile: {} ==",
                grid.rows,
                grid.cols,
                profile.label()
            );
            let mut rows = Vec::new();
            for &b in &blocks {
                let sweep = run_sweep(profile, machine, n, p, b);
                let best = best_by_comm(&sweep.points);
                rows.push(vec![
                    b.to_string(),
                    (n / b).to_string(),
                    secs(sweep.summa.comm_time),
                    secs(best.report.comm_time),
                    best.g.to_string(),
                    format!("{:.2}x", sweep.summa.comm_time / best.report.comm_time),
                ]);
            }
            println!(
                "{}",
                render_table(
                    &[
                        "b",
                        "steps",
                        "SUMMA comm (s)",
                        "HSUMMA comm (s)",
                        "best G",
                        "gain"
                    ],
                    &rows
                )
            );
            println!();
        }
    }
    println!("ideal profile: gain falls as b grows (latency share shrinks) — the");
    println!("paper's Fig. 5 vs Fig. 6 contrast. measured profile: gain is flat in b");
    println!("because the serialized model has no per-call fixed overhead beyond α.");
}
