//! Serving throughput: pooled job service vs cold per-job runtimes.
//!
//! The experiment behind `hsumma-serve`'s existence: submit `JOBS`
//! back-to-back `n × n` multiplies to a [`GemmServer`] (one rank pool,
//! spawned once; plans cached after the first job) and compare against
//! the same multiplies each paying a full `Runtime::run` — thread spawn,
//! mailbox wiring, join — of their own. Both legs execute the *same
//! plan*, so the difference is pure service overhead amortization.
//!
//! Results go to stdout and to `BENCH_serve.json` in the current
//! directory. `--smoke` shrinks the workload for CI.
//!
//! Timing discipline (as in `kernel_shootout`): each leg runs [`REPS`]
//! times and the minimum total is reported — on a shared box the noise
//! is one-sided, so the minimum isolates the systematic difference
//! (per-job thread spawn/join) from scheduler interference.

use hsumma_bench::{render_table, secs};
use hsumma_core::{run_planned, testutil::distributed_product};
use hsumma_matrix::{seeded_uniform, GridShape, Matrix};
use hsumma_serve::{GemmServer, JobSpec, PlanHint, Planner, PlannerConfig, ServerConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Distinct operand pairs; jobs cycle over them (cloning per job, in
/// both legs, so operand handling costs the same on each side).
const OPERAND_SETS: usize = 8;

/// Timed passes per leg; best-of is reported.
const REPS: usize = 3;

struct Workload {
    grid: GridShape,
    n: usize,
    jobs: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let w = if smoke {
        Workload {
            grid: GridShape::new(2, 2),
            n: 64,
            jobs: 8,
        }
    } else {
        Workload {
            grid: GridShape::new(4, 4),
            n: 256,
            jobs: 64,
        }
    };
    let p = w.grid.size();
    println!(
        "Serve throughput: {} jobs of n={} on p={} ({}x{} grid){}\n",
        w.jobs,
        w.n,
        p,
        w.grid.rows,
        w.grid.cols,
        if smoke { " [smoke]" } else { "" }
    );

    let operands: Vec<(Matrix, Matrix)> = (0..OPERAND_SETS)
        .map(|i| {
            let s = i as u64;
            (
                seeded_uniform(w.n, w.n, 2 * s),
                seeded_uniform(w.n, w.n, 2 * s + 1),
            )
        })
        .collect();

    // Both legs run the plan the service's planner would pick, computed
    // once up front so neither leg times planning differently.
    let plan = Planner::new(w.grid, PlannerConfig::default())
        .plan_square(w.n)
        .plan;
    println!(
        "plan under test: {} (gemm path: {})\n",
        plan.describe(),
        plan.gemm_path()
    );

    // A pass consumes a pre-built batch of operands: cloning stays
    // outside every timed region, identically for both legs.
    let make_batch = || -> Vec<(Matrix, Matrix)> {
        (0..w.jobs)
            .map(|i| operands[i % OPERAND_SETS].clone())
            .collect()
    };

    let config = ServerConfig {
        queue_capacity: w.jobs,
        ..ServerConfig::new(w.grid)
    };
    let server = GemmServer::new(config).expect("spawn rank pool");

    // Pooled pass: burst-submit the whole batch, then drain the handles.
    let pooled_pass = |batch: Vec<(Matrix, Matrix)>| -> (f64, f64) {
        let pass_start = Instant::now();
        let handles: Vec<_> = batch
            .into_iter()
            .map(|(a, b)| {
                server
                    .submit(JobSpec::square(w.n).with_hint(PlanHint::Force(plan)), a, b)
                    .expect("queue sized for the whole burst")
            })
            .collect();
        let outputs: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().expect("job succeeds"))
            .collect();
        let total = pass_start.elapsed().as_secs_f64();
        let mean_wall = outputs
            .iter()
            .map(|o| o.report.wall.as_secs_f64())
            .sum::<f64>()
            / w.jobs as f64;
        // Sanity: a pooled product must match a cold one bit-for-bit
        // (same plan, same deterministic schedule).
        let check =
            distributed_product(w.grid, w.n, &operands[0].0, &operands[0].1, |comm, a, b| {
                run_planned(comm, w.grid, w.n, &a, &b, &plan).unwrap()
            });
        assert_eq!(
            *outputs[0].c.dense(),
            check,
            "pooled and cold products must agree"
        );
        (total, mean_wall)
    };

    // Cold pass: a fresh Runtime::run (thread spawn + wiring + join) per job.
    let cold_pass = |batch: Vec<(Matrix, Matrix)>| -> f64 {
        let pass_start = Instant::now();
        for (a, b) in batch {
            let c = distributed_product(w.grid, w.n, &a, &b, |comm, at, bt| {
                run_planned(comm, w.grid, w.n, &at, &bt, &plan).unwrap()
            });
            std::hint::black_box(c);
        }
        pass_start.elapsed().as_secs_f64()
    };

    // One untimed warm-up per leg, then interleaved timed passes so
    // neither leg monopolizes a warmer allocator/cache state.
    pooled_pass(make_batch());
    cold_pass(make_batch());
    let mut pooled_total = f64::INFINITY;
    let mut mean_wall = 0.0;
    let mut cold_total = f64::INFINITY;
    for _ in 0..REPS {
        let (total, wall) = pooled_pass(make_batch());
        if total < pooled_total {
            pooled_total = total;
            mean_wall = wall;
        }
        cold_total = cold_total.min(cold_pass(make_batch()));
    }
    drop(server);

    let pooled_rate = w.jobs as f64 / pooled_total;
    let cold_rate = w.jobs as f64 / cold_total;
    let speedup = cold_total / pooled_total;

    println!(
        "{}",
        render_table(
            &["leg", "total (s)", "jobs/s", "per-job (s)"],
            &[
                vec![
                    "pooled (GemmServer)".into(),
                    secs(pooled_total),
                    format!("{pooled_rate:.1}"),
                    secs(pooled_total / w.jobs as f64),
                ],
                vec![
                    "cold (Runtime::run)".into(),
                    secs(cold_total),
                    format!("{cold_rate:.1}"),
                    secs(cold_total / w.jobs as f64),
                ],
            ]
        )
    );
    println!("pooled over cold: {speedup:.2}x  (mean in-service wall {mean_wall:.4}s/job)");

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"p\": {p},\n  \"grid\": \"{}x{}\",\n  \"n\": {},\n  \"jobs\": {},\n  \
         \"smoke\": {smoke},\n  \"reps\": {REPS},\n  \"plan\": \"{}\",\n  \
         \"gemm_path\": \"{}\",\n",
        w.grid.rows,
        w.grid.cols,
        w.n,
        w.jobs,
        plan.describe(),
        plan.gemm_path()
    );
    let _ = write!(
        json,
        "  \"pooled_total_s\": {pooled_total:.6},\n  \"pooled_jobs_per_s\": {pooled_rate:.3},\n  \
         \"cold_total_s\": {cold_total:.6},\n  \"cold_jobs_per_s\": {cold_rate:.3},\n  \
         \"pooled_mean_job_wall_s\": {mean_wall:.6},\n  \
         \"pooled_over_cold\": {speedup:.3},\n  \"pooled_beats_cold\": {}\n}}",
        speedup > 1.0
    );
    hsumma_bench::write_bench_section("BENCH_serve.json", "throughput", &json)
        .expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json (throughput section)");
}
