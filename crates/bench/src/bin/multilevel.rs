//! Extension: more than two hierarchy levels (§VI future work).
//!
//! "We also plan to investigate the algorithm with more than two levels
//! of hierarchy as we believe that in this case it is possible to get
//! even better performance."
//!
//! Runs SUMMA with 1–4-level hierarchical broadcasts on a 16384-core
//! grid under both broadcast regimes. Under a serialized (measured-
//! effective) broadcast, each extra level replaces a `q`-wide phase by
//! narrower ones, so latency keeps falling towards `Σ qᵢ ≥ L·q^(1/L)`;
//! the sweep locates the depth where returns diminish.

use hsumma_bench::{render_table, secs, Machine, Profile};
use hsumma_matrix::GridShape;

fn main() {
    let (n, b) = (65536usize, 256usize);
    let grid = GridShape::new(128, 128); // 16384 cores
    let configs: [(&str, &[usize]); 6] = [
        ("1 level (SUMMA)", &[128]),
        ("2 levels 8x16", &[8, 16]),
        ("2 levels 16x8", &[16, 8]),
        ("3 levels 4x4x8", &[4, 4, 8]),
        ("3 levels 8x4x4", &[8, 4, 4]),
        ("4 levels 4x4x4x2", &[4, 4, 4, 2]),
    ];

    println!("Multi-level HSUMMA on 16384 cores, n = {n}, b = B = {b}\n");
    for profile in [Profile::Ideal, Profile::Measured] {
        let platform = profile.platform(Machine::BlueGeneP);
        let algo = profile.bcast();
        println!("== profile: {} ==", profile.label());
        let mut rows = Vec::new();
        let mut base = None;
        for (name, levels) in configs {
            let r = hsumma_core::multilevel::sim_summa_hier_with(
                &platform, grid, n, b, algo, levels, true,
            );
            let base_time = *base.get_or_insert(r.comm_time);
            rows.push(vec![
                name.to_string(),
                secs(r.comm_time),
                secs(r.total_time),
                format!("{:.2}x", base_time / r.comm_time),
            ]);
        }
        println!(
            "{}",
            render_table(&["hierarchy", "comm (s)", "total (s)", "vs 1 level"], &rows)
        );
        println!();
    }
    println!("note: per-level broadcasts here run every step (b = B at all levels);");
    println!("two levels with this shape reproduce sim_hsumma exactly (unit-tested).");
}
