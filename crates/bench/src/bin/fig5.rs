//! Figure 5: HSUMMA vs SUMMA on Grid5000.
//!
//! Communication time against the number of groups, `b = B = 64`,
//! `n = 8192`, `p = 128`. Paper result: with this small block size the
//! per-step broadcast overhead dominates (SUMMA ≈ 24 s measured) and
//! HSUMMA beats SUMMA by a wide margin at every interior `G`.

use hsumma_bench::{grid_for, render_table, run_sweep, secs, Machine, Profile};
use hsumma_core::tuning::best_by_comm;

fn main() {
    let (n, p, b) = (8192usize, 128usize, 64usize);
    let grid = grid_for(p);
    println!("Figure 5 — HSUMMA on Grid5000 (simulated)");
    println!(
        "b = B = {b}, n = {n}, p = {p} (grid {}x{})\n",
        grid.rows, grid.cols
    );

    for profile in [Profile::Ideal, Profile::Measured] {
        let sweep = run_sweep(profile, Machine::Grid5000, n, p, b);
        println!("== profile: {} ==", profile.label());
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.g.to_string(),
                    format!("{}x{}", pt.groups.rows, pt.groups.cols),
                    secs(pt.report.comm_time),
                    secs(sweep.summa.comm_time),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["G", "I x J", "HSUMMA comm (s)", "SUMMA comm (s)"], &rows)
        );
        let best = best_by_comm(&sweep.points);
        println!(
            "best G = {} -> comm {} s vs SUMMA {} s ({:.2}x less)\n",
            best.g,
            secs(best.report.comm_time),
            secs(sweep.summa.comm_time),
            sweep.summa.comm_time / best.report.comm_time
        );
    }
    println!("paper (measured, b=64): SUMMA ~24 s; HSUMMA below ~5 s across interior G");
    println!("('outperforms SUMMA with huge difference').");
}
