//! The sparse payload contract over both substrates.
//!
//! [`SparseComm`] extends the dense [`Communicator`] with a sparse panel
//! type and the local kernels the 2-D sparse schedules need. Exactly as
//! with dense payloads, the same generic algorithm runs on:
//!
//! * the threaded runtime's [`Comm`] — `Sp = Arc<CsrMatrix>`: real CSR
//!   buffers, relays share the `Arc` without deep copies, and the
//!   [`WirePayload`] hook prices every send at its true (nnz-dependent)
//!   serialized size;
//! * the simulator's [`SimComm`] — `Sp =` [`PhantomSparse`]: byte counts
//!   on the wire, with `nnz` recovered exactly from the invertible CSR
//!   wire format, so the Hockney charge `α + β·bytes` sees the same
//!   non-uniform message sizes the real substrate ships.
//!
//! [`bcast_sp`] is the one sparse collective: a highest-bit binomial
//! tree (the same tree the dense collectives use) written once over
//! `send_sp`/`recv_sp`, so per-rank `(src, dst, bytes)` multisets agree
//! across substrates by construction. Its messages travel under
//! *user-level* tags (the step index), which keeps them fault-eligible:
//! a `FaultPlan` can drop an in-flight sparse panel broadcast on either
//! substrate and hit the same message.

use crate::phantom::PhantomSparse;
use hsumma_core::Communicator;
use hsumma_matrix::sparse::{CsrMatrix, SpGemmAcc};
use hsumma_matrix::Matrix;
use hsumma_netsim::spmd::SimComm;
use hsumma_runtime::{Comm, CommError};
use hsumma_trace::WirePayload;
use std::sync::Arc;

/// The sparse-panel payload: enough structure to slice pivot panels out
/// of a local tile and to account wire bytes.
pub trait SparseLike: Clone + Send + WirePayload + 'static {
    /// Builds the substrate's tile payload from a real CSR tile.
    fn from_csr(csr: &CsrMatrix) -> Self;
    /// Row count.
    fn rows(&self) -> usize;
    /// Column count.
    fn cols(&self) -> usize;
    /// Stored-entry count.
    fn nnz(&self) -> usize;
    /// The `h × w` panel at `(r0, c0)` (pivot owners slicing their own
    /// tile — always locally held).
    fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self;
}

impl SparseLike for Arc<CsrMatrix> {
    fn from_csr(csr: &CsrMatrix) -> Self {
        Arc::new(csr.clone())
    }
    fn rows(&self) -> usize {
        CsrMatrix::rows(self)
    }
    fn cols(&self) -> usize {
        CsrMatrix::cols(self)
    }
    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }
    fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        Arc::new(CsrMatrix::block(self, r0, c0, h, w))
    }
}

impl SparseLike for PhantomSparse {
    fn from_csr(csr: &CsrMatrix) -> Self {
        PhantomSparse::from_csr(csr)
    }
    fn rows(&self) -> usize {
        PhantomSparse::rows(self)
    }
    fn cols(&self) -> usize {
        PhantomSparse::cols(self)
    }
    fn nnz(&self) -> usize {
        PhantomSparse::nnz(self)
    }
    fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        PhantomSparse::block(self, r0, c0, h, w)
    }
}

/// A communicator that can move sparse panels and run (or model) the
/// local sparse kernels. The accumulator associated types let the real
/// substrate carry numerics across pivot steps while the simulator
/// carries only structural estimates.
pub trait SparseComm: Communicator {
    /// The sparse panel payload this substrate moves.
    type Sp: SparseLike;
    /// Cross-step accumulator for `C += A_panel · B_panel`.
    type SpGemmAcc;
    /// Cross-step accumulator for the sampled dense dot products.
    type SddmmAcc;

    /// Sends a sparse panel to `dst` (cheap on the real substrate:
    /// relays share the buffer).
    fn send_sp(&self, dst: usize, tag: u64, sp: &Self::Sp) -> Result<(), CommError>;
    /// Receives a `rows × cols` sparse panel from `src`. The shape is
    /// globally known from the schedule; the nonzero count is the
    /// payload's own business (read from the buffer on the real
    /// substrate, inverted from the wire bytes on the simulator).
    fn recv_sp(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<Self::Sp, CommError>;

    /// A zeroed `rows × cols` SpGEMM accumulator.
    fn spgemm_acc(rows: usize, cols: usize) -> Self::SpGemmAcc;
    /// Multiply-add pairs of `a · b` — exact where the patterns are
    /// known, an expected-value estimate where a panel arrived over the
    /// simulated wire without one (a documented modeling choice that
    /// never touches the wire, so byte parity is unaffected).
    fn spgemm_pairs(a: &Self::Sp, b: &Self::Sp) -> f64;
    /// `acc += a · b`.
    fn spgemm_step(acc: &mut Self::SpGemmAcc, a: &Self::Sp, b: &Self::Sp);
    /// The accumulated product as this substrate's sparse payload.
    fn spgemm_finalize(acc: Self::SpGemmAcc) -> Self::Sp;

    /// A zeroed SDDMM accumulator for the pattern of `s`.
    fn sddmm_acc(s: &Self::Sp) -> Self::SddmmAcc;
    /// Accumulates the sampled dot products of this pivot step:
    /// `acc[(i,j) ∈ pattern(s)] += Σ_k a_panel[i,k] · b_panel[k,j]`.
    fn sddmm_step(acc: &mut Self::SddmmAcc, s: &Self::Sp, a_panel: &Self::Mat, b_panel: &Self::Mat);
    /// `C = S ⊙ acc`: scales the accumulated dots by `S`'s values,
    /// keeping `S`'s pattern verbatim.
    fn sddmm_finalize(s: &Self::Sp, acc: Self::SddmmAcc) -> Self::Sp;
}

// ---------------------------------------------------------------------------
// Real substrate: CSR buffers between rank threads.
// ---------------------------------------------------------------------------

impl SparseComm for Comm {
    type Sp = Arc<CsrMatrix>;
    type SpGemmAcc = SpGemmAcc;
    type SddmmAcc = Vec<f64>;

    fn send_sp(&self, dst: usize, tag: u64, sp: &Arc<CsrMatrix>) -> Result<(), CommError> {
        // The WirePayload hook on CsrMatrix (through the Arc blanket
        // impl) prices this send at its serialized nnz-dependent size.
        self.send_payload(dst, tag, Arc::clone(sp))
    }
    fn recv_sp(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<Arc<CsrMatrix>, CommError> {
        let sp = self.recv_payload::<Arc<CsrMatrix>>(src, tag)?;
        debug_assert_eq!((sp.rows(), sp.cols()), (rows, cols), "panel shape mismatch");
        Ok(sp)
    }

    fn spgemm_acc(rows: usize, cols: usize) -> SpGemmAcc {
        SpGemmAcc::new(rows, cols)
    }
    fn spgemm_pairs(a: &Arc<CsrMatrix>, b: &Arc<CsrMatrix>) -> f64 {
        hsumma_matrix::sparse::spgemm_pairs(a, b) as f64
    }
    fn spgemm_step(acc: &mut SpGemmAcc, a: &Arc<CsrMatrix>, b: &Arc<CsrMatrix>) {
        acc.accumulate(a, b);
    }
    fn spgemm_finalize(acc: SpGemmAcc) -> Arc<CsrMatrix> {
        Arc::new(acc.finalize())
    }

    fn sddmm_acc(s: &Arc<CsrMatrix>) -> Vec<f64> {
        vec![0.0; s.nnz()]
    }
    fn sddmm_step(acc: &mut Vec<f64>, s: &Arc<CsrMatrix>, a_panel: &Matrix, b_panel: &Matrix) {
        let d = a_panel.cols();
        assert_eq!(d, b_panel.rows(), "inner dimensions must agree");
        let row_ptr = s.row_ptr();
        for i in 0..s.rows() {
            let (cols_i, _) = s.row(i);
            for (t, &j) in cols_i.iter().enumerate() {
                let mut dot = 0.0;
                for k in 0..d {
                    dot += a_panel.get(i, k) * b_panel.get(k, j as usize);
                }
                acc[row_ptr[i] + t] += dot;
            }
        }
    }
    fn sddmm_finalize(s: &Arc<CsrMatrix>, acc: Vec<f64>) -> Arc<CsrMatrix> {
        let values = s
            .values()
            .iter()
            .zip(&acc)
            .map(|(sv, dot)| sv * dot)
            .collect();
        Arc::new(s.with_values(values))
    }
}

// ---------------------------------------------------------------------------
// Simulated substrate: byte counts over virtual clocks.
// ---------------------------------------------------------------------------

/// The simulator's SpGEMM accumulator: a structural estimate of the
/// output tile. `est_nnz` accumulates the step pair counts capped at the
/// dense tile size — an upper-bound fill model, adequate for trace
/// inspection (the estimate never travels, so it cannot perturb the
/// byte-multiset parity with the real substrate).
#[derive(Clone, Copy, Debug)]
pub struct PhantomSpGemmAcc {
    rows: usize,
    cols: usize,
    est_nnz: f64,
}

impl SparseComm for SimComm<'_> {
    type Sp = PhantomSparse;
    type SpGemmAcc = PhantomSpGemmAcc;
    type SddmmAcc = ();

    fn send_sp(&self, dst: usize, tag: u64, sp: &PhantomSparse) -> Result<(), CommError> {
        self.send_bytes(dst, tag, sp.payload_bytes())
    }
    fn recv_sp(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<PhantomSparse, CommError> {
        let bytes = self.recv_bytes(src, tag)?;
        Ok(PhantomSparse::from_wire(rows, cols, bytes))
    }

    fn spgemm_acc(rows: usize, cols: usize) -> PhantomSpGemmAcc {
        PhantomSpGemmAcc {
            rows,
            cols,
            est_nnz: 0.0,
        }
    }
    fn spgemm_pairs(a: &PhantomSparse, b: &PhantomSparse) -> f64 {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        match (a.pattern(), b.pattern()) {
            // Both patterns locally known (e.g. a 1×1 grid, or a rank
            // that owns both pivots this step): count exactly.
            (Some(pa), Some(pb)) => (0..a.rows())
                .flat_map(|i| pa.row(i))
                .map(|&k| pb.row_nnz(k as usize) as f64)
                .sum(),
            // A panel that arrived over the byte-only wire has no
            // pattern: charge the expected pairs of uniformly-scattered
            // nonzeros, nnz(A)·nnz(B)/rows(B).
            _ => a.nnz() as f64 * b.nnz() as f64 / b.rows().max(1) as f64,
        }
    }
    fn spgemm_step(acc: &mut PhantomSpGemmAcc, a: &PhantomSparse, b: &PhantomSparse) {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        assert_eq!(
            (a.rows(), b.cols()),
            (acc.rows, acc.cols),
            "output shape mismatch"
        );
        let dense = (acc.rows * acc.cols) as f64;
        acc.est_nnz = (acc.est_nnz + Self::spgemm_pairs(a, b)).min(dense);
    }
    fn spgemm_finalize(acc: PhantomSpGemmAcc) -> PhantomSparse {
        PhantomSparse::with_nnz(acc.rows, acc.cols, acc.est_nnz.round() as usize)
    }

    fn sddmm_acc(_s: &PhantomSparse) {}
    fn sddmm_step(_acc: &mut (), s: &PhantomSparse, a_panel: &Self::Mat, b_panel: &Self::Mat) {
        assert_eq!(a_panel.rows, s.rows(), "A panel row count must match S");
        assert_eq!(b_panel.cols, s.cols(), "B panel column count must match S");
        assert_eq!(a_panel.cols, b_panel.rows, "inner dimensions must agree");
    }
    fn sddmm_finalize(s: &PhantomSparse, _acc: ()) -> PhantomSparse {
        // SDDMM's output pattern is S's pattern — exact on this
        // substrate, since S never travels.
        s.clone()
    }
}

/// Broadcasts a sparse panel of globally-known shape from `root`:
/// the highest-bit binomial tree (virtual rank `v` receives from `v`
/// with its highest set bit cleared, then relays at successive masks),
/// written once over [`SparseComm::send_sp`]/[`SparseComm::recv_sp`] —
/// the per-rank message multiset is substrate-identical by construction.
///
/// The root passes `Some(panel)`, everyone else `None` and receives.
/// Relays forward the payload they received: the real substrate shares
/// the `Arc`, the simulator re-sends the exact byte count (the wire
/// format is invertible, so no information is lost at a hop).
///
/// `tag` must be a user-level tag (the schedules pass the step index),
/// keeping sparse panel traffic in the fault-eligible `App` tag class.
pub fn bcast_sp<C: SparseComm>(
    comm: &C,
    root: usize,
    tag: u64,
    rows: usize,
    cols: usize,
    panel: Option<C::Sp>,
) -> Result<C::Sp, CommError> {
    let p = comm.size();
    let me = comm.rank();
    let vrank = (me + p - root) % p;
    let unvirt = |v: usize| (v + root) % p;
    let panel = if vrank == 0 {
        panel.expect("the broadcast root must supply the panel")
    } else {
        assert!(panel.is_none(), "only the broadcast root supplies a panel");
        let high = 1usize << (usize::BITS - 1 - vrank.leading_zeros());
        comm.recv_sp(unvirt(vrank - high), tag, rows, cols)?
    };
    let mut mask = 1usize;
    while mask < p {
        if mask > vrank && vrank + mask < p {
            comm.send_sp(unvirt(vrank + mask), tag, &panel)?;
        }
        mask <<= 1;
    }
    Ok(panel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsumma_matrix::sparse::seeded_sparse;
    use hsumma_netsim::spmd::SimWorld;
    use hsumma_netsim::{Platform, SimNet};
    use hsumma_runtime::Runtime;

    #[test]
    fn sparse_bcast_delivers_the_panel_to_every_rank() {
        let csr = seeded_sparse(8, 8, 0.3, 41);
        let root_panel = Arc::new(csr.clone());
        for root in [0usize, 2] {
            let got = Runtime::run(5, |comm| {
                let mine = (Comm::rank(comm) == root).then(|| Arc::clone(&root_panel));
                bcast_sp(comm, root, 7, 8, 8, mine).unwrap()
            });
            for (r, panel) in got.iter().enumerate() {
                assert_eq!(**panel, csr, "rank {r} (root {root})");
            }
        }
    }

    #[test]
    fn sim_bcast_moves_nnz_dependent_bytes_down_the_same_tree() {
        // p − 1 receivers, each paying exactly the panel's wire bytes —
        // and a denser panel of the same shape costs strictly more.
        let plat = Platform::grid5000();
        let mut totals = Vec::new();
        for density in [0.1, 0.6] {
            let csr = seeded_sparse(8, 8, density, 42);
            let panel = PhantomSparse::from_csr(&csr);
            let want = panel.payload_bytes();
            let (net, _) = SimWorld::run(SimNet::new(8, plat.net), plat.gamma, false, |comm| {
                let mine = (comm.rank() == 0).then(|| panel.clone());
                bcast_sp(comm, 0, 3, 8, 8, mine).unwrap()
            });
            let report = net.report();
            assert_eq!(report.msgs, 7);
            assert_eq!(report.bytes, 7 * want);
            totals.push(report.bytes);
        }
        assert!(
            totals[1] > totals[0],
            "equal shapes, different nnz must ship different wire bytes"
        );
    }

    #[test]
    fn relayed_phantom_panels_preserve_exact_nnz() {
        // Rank 3 in an 8-rank binomial tree receives via a relay (0 → 2
        // → 3 in virtual ranks): nnz must survive both hops exactly.
        let plat = Platform::grid5000();
        let csr = seeded_sparse(6, 6, 0.4, 43);
        let panel = PhantomSparse::from_csr(&csr);
        let want = csr.nnz();
        let (_, got) = SimWorld::run(SimNet::new(8, plat.net), plat.gamma, false, |comm| {
            let mine = (comm.rank() == 0).then(|| panel.clone());
            bcast_sp(comm, 0, 1, 6, 6, mine).unwrap().nnz()
        });
        assert!(got.iter().all(|&n| n == want), "nnz drifted: {got:?}");
    }

    #[test]
    fn pattern_pairs_agree_with_real_count_when_known() {
        let a = seeded_sparse(6, 8, 0.4, 44);
        let b = seeded_sparse(8, 5, 0.3, 45);
        let exact = hsumma_matrix::sparse::spgemm_pairs(&a, &b) as f64;
        let pa = PhantomSparse::from_csr(&a);
        let pb = PhantomSparse::from_csr(&b);
        assert_eq!(<SimComm<'_> as SparseComm>::spgemm_pairs(&pa, &pb), exact);
    }
}
