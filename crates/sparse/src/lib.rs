//! Distributed sparse subsystem: CSR payloads on both substrates and
//! 2-D SpGEMM/SDDMM written once over the [`Communicator`] trait.
//!
//! The dense stack's organizing identity — *one schedule, two
//! substrates* — extends to sparse workloads here:
//!
//! * [`SparseComm`] adds a sparse panel payload to a communicator. On
//!   the threaded runtime the payload is `Arc<CsrMatrix>` (real
//!   buffers, relays share the `Arc`); on the simulator it is
//!   [`PhantomSparse`] — shape + exact `nnz`, reconstructed from the
//!   wire byte count via the invertible CSR wire format. Either way the
//!   `WirePayload` hook prices every message at its true nnz-dependent
//!   serialized size, so the Hockney model finally sees *non-uniform*
//!   per-message sizes.
//! * [`spgemm_2d`] and [`sddmm_2d`] are SUMMA-shaped schedules generic
//!   over [`SparseComm`]: identical split colors, pivot arithmetic and
//!   step structure as the dense `summa()`, so per-rank
//!   `(src, dst, bytes)` send multisets agree between substrates, and
//!   fault injection / deadlines / tracing work on sparse jobs
//!   unchanged.
//! * [`scatter_csr`]/[`gather_csr`] and the `distributed_*`/`sim_*`
//!   drivers package the scatter → run → gather loop for both
//!   substrates.
//!
//! [`Communicator`]: hsumma_core::Communicator

pub mod algo;
pub mod comm;
pub mod distribute;
pub mod phantom;

pub use algo::{sddmm_2d, spgemm_2d, SparseConfig};
pub use comm::{bcast_sp, PhantomSpGemmAcc, SparseComm, SparseLike};
pub use distribute::{
    distributed_sddmm, distributed_spgemm, gather_csr, scatter_csr, sim_sddmm_2d, sim_spgemm_2d,
};
pub use phantom::{PhantomSparse, SparsePattern};
