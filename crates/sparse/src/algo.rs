//! 2-D SUMMA-style sparse schedules, generic over the substrate.
//!
//! Both algorithms follow the dense `summa()` schedule shape exactly —
//! same split colors for the row/column communicators, same pivot
//! ownership arithmetic, same per-step `trace_step`/`compute`/
//! `maybe_step_sync` structure — so everything the dense stack already
//! guarantees (fault replay cursors, deadline propagation, per-step
//! traces, real-vs-sim schedule identity) carries over to sparse jobs
//! unchanged.
//!
//! * [`spgemm_2d`] — `C = A·B` with *sparse* `A`, `B`, `C`: pivot CSR
//!   panels broadcast down [`bcast_sp`]'s binomial tree, with per-message
//!   wire sizes proportional to each panel's own `nnz`;
//! * [`sddmm_2d`] — `C = S ⊙ (A·B)` with sparse `S` and dense `A`, `B`:
//!   the dense pivot panels ride the ordinary `bcast_mat` collectives
//!   while `S` (and the output pattern) never leaves its tile.

use crate::comm::{bcast_sp, SparseComm, SparseLike};
use hsumma_core::{pivot_offset, pivot_owner, tile_shape, MatLike};
use hsumma_matrix::GridShape;
use hsumma_runtime::{BcastAlgorithm, CommError};

/// Parameters of a 2-D sparse multiply.
#[derive(Clone, Copy, Debug)]
pub struct SparseConfig {
    /// Pivot panel width `b`. Must divide both local tile extents.
    pub block: usize,
    /// Broadcast algorithm for SDDMM's *dense* pivot panels (sparse
    /// panels always use the binomial tree of [`bcast_sp`]).
    pub bcast: BcastAlgorithm,
}

impl Default for SparseConfig {
    fn default() -> Self {
        SparseConfig {
            block: 32,
            bcast: BcastAlgorithm::Binomial,
        }
    }
}

fn check_sparse_tiles<S: SparseLike>(
    grid: GridShape,
    n: usize,
    a: &S,
    b: &S,
    comm_size: usize,
    bs: usize,
) -> (usize, usize) {
    assert_eq!(
        comm_size,
        grid.size(),
        "communicator must span the whole grid"
    );
    let (th, tw) = tile_shape(grid, n);
    assert_eq!((a.rows(), a.cols()), (th, tw), "A tile has wrong shape");
    assert_eq!((b.rows(), b.cols()), (th, tw), "B tile has wrong shape");
    assert!(bs > 0, "block size must be positive");
    assert_eq!(tw % bs, 0, "block must divide the tile width");
    assert_eq!(th % bs, 0, "block must divide the tile height");
    (th, tw)
}

/// Distributed sparse × sparse product `C = A·B` on the calling rank.
/// SPMD: every rank of `comm` must call this with its local CSR tiles
/// (block-checkerboard distribution over `grid`, square `n × n` global
/// operands). Returns the local tile of `C` in the substrate's sparse
/// payload.
///
/// At step `k` the owners of pivot column panel `k` of `A` slice it out
/// of their tile and broadcast it along their grid row; likewise `B`'s
/// pivot row panel down the grid column; every rank accumulates
/// `C_tile += A_panel · B_panel` with the local Gustavson kernel. Panel
/// broadcasts travel under the step index as a user-level tag, so a
/// `FaultPlan` App-class rule can drop a specific in-flight sparse panel
/// on either substrate.
///
/// # Panics
/// Panics if the grid, tile shapes or block size are inconsistent.
pub fn spgemm_2d<C: SparseComm>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Sp,
    b: &C::Sp,
    cfg: &SparseConfig,
) -> Result<C::Sp, CommError> {
    let bs = cfg.block;
    let (th, tw) = check_sparse_tiles(grid, n, a, b, comm.size(), bs);

    let (gi, gj) = grid.coords(comm.rank());
    let row_comm = comm.split(gi as u64, gj as i64)?;
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;

    let mut acc = C::spgemm_acc(th, tw);
    for k in 0..n / bs {
        comm.trace_step(k, bs, bs, || -> Result<(), CommError> {
            // --- pivot column panel of A, broadcast along the grid row ---
            let owner_col = pivot_owner(k, bs, tw);
            let mine = (gj == owner_col).then(|| a.block(0, pivot_offset(k, bs, tw), th, bs));
            let a_panel = bcast_sp(&row_comm, owner_col, k as u64, th, bs, mine)?;

            // --- pivot row panel of B, broadcast along the grid column ---
            let owner_row = pivot_owner(k, bs, th);
            let mine = (gi == owner_row).then(|| b.block(pivot_offset(k, bs, th), 0, bs, tw));
            let b_panel = bcast_sp(&col_comm, owner_row, k as u64, bs, tw, mine)?;

            // --- local update: C += A_panel · B_panel --------------------
            let pairs = C::spgemm_pairs(&a_panel, &b_panel);
            comm.compute(pairs, (2.0 * pairs) as u64, || {
                C::spgemm_step(&mut acc, &a_panel, &b_panel)
            });
            Ok(())
        })?;
        comm.maybe_step_sync()?;
    }
    Ok(C::spgemm_finalize(acc))
}

/// Distributed sampled dense-dense matrix multiplication
/// `C = S ⊙ (A·B)` on the calling rank: sparse `n × n` sample matrix
/// `S`, dense `n × n` operands `A` and `B`, all block-checkerboard over
/// `grid`. Returns the local `C` tile — `S`'s pattern with each sampled
/// entry scaled by the corresponding dot product.
///
/// The schedule is exactly SUMMA's: dense pivot panels of `A` and `B`
/// broadcast with `cfg.bcast` each step; only the sampled dot products
/// are accumulated (`nnz(S_tile) · b` pairs per step instead of the
/// dense `th·tw·b`). `S` itself never travels.
///
/// # Panics
/// Panics if the grid, tile shapes or block size are inconsistent.
pub fn sddmm_2d<C: SparseComm>(
    comm: &C,
    grid: GridShape,
    n: usize,
    s: &C::Sp,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &SparseConfig,
) -> Result<C::Sp, CommError> {
    let bs = cfg.block;
    let (th, tw) = tile_shape(grid, n);
    assert_eq!(
        comm.size(),
        grid.size(),
        "communicator must span the whole grid"
    );
    assert_eq!((s.rows(), s.cols()), (th, tw), "S tile has wrong shape");
    assert_eq!((a.rows(), a.cols()), (th, tw), "A tile has wrong shape");
    assert_eq!((b.rows(), b.cols()), (th, tw), "B tile has wrong shape");
    assert!(bs > 0, "block size must be positive");
    assert_eq!(tw % bs, 0, "block must divide the tile width");
    assert_eq!(th % bs, 0, "block must divide the tile height");

    let (gi, gj) = grid.coords(comm.rank());
    let row_comm = comm.split(gi as u64, gj as i64)?;
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;

    let mut acc = C::sddmm_acc(s);
    let mut a_panel = C::Mat::zeros(th, bs);
    let mut b_panel = C::Mat::zeros(bs, tw);
    let step_pairs = s.nnz() * bs;
    for k in 0..n / bs {
        comm.trace_step(k, bs, bs, || -> Result<(), CommError> {
            let owner_col = pivot_owner(k, bs, tw);
            if gj == owner_col {
                a.block_into(0, pivot_offset(k, bs, tw), &mut a_panel);
            }
            row_comm.bcast_mat(cfg.bcast, owner_col, &mut a_panel)?;

            let owner_row = pivot_owner(k, bs, th);
            if gi == owner_row {
                b.block_into(pivot_offset(k, bs, th), 0, &mut b_panel);
            }
            col_comm.bcast_mat(cfg.bcast, owner_row, &mut b_panel)?;

            comm.compute(step_pairs as f64, 2 * step_pairs as u64, || {
                C::sddmm_step(&mut acc, s, &a_panel, &b_panel)
            });
            Ok(())
        })?;
        comm.maybe_step_sync()?;
    }
    Ok(C::sddmm_finalize(s, acc))
}
