//! CSR scatter/gather over the 2-D block distribution, plus the
//! scatter → run → gather drivers shared by tests, examples and
//! benchmarks (sparse analogues of `hsumma_core::testutil`).

use crate::algo::{sddmm_2d, spgemm_2d, SparseConfig};
use crate::phantom::PhantomSparse;
use hsumma_core::comm::PhantomMat;
use hsumma_core::{tile_shape, tile_shape_rect};
use hsumma_matrix::sparse::CsrMatrix;
use hsumma_matrix::{BlockDist, GridShape, Matrix};
use hsumma_netsim::spmd::SimWorld;
use hsumma_netsim::{Platform, SimNet, SimReport};
use hsumma_runtime::Runtime;
use std::sync::Arc;

/// Cuts `m` into `grid.size()` block-checkerboard CSR tiles, rank-major
/// (the sparse analogue of `BlockDist::scatter`).
///
/// # Panics
/// Panics unless the grid divides both extents.
pub fn scatter_csr(grid: GridShape, m: &CsrMatrix) -> Vec<CsrMatrix> {
    let (th, tw) = tile_shape_rect(grid, m.rows(), m.cols());
    (0..grid.size())
        .map(|r| {
            let (gi, gj) = grid.coords(r);
            m.block(gi * th, gj * tw, th, tw)
        })
        .collect()
}

/// Reassembles block-checkerboard CSR tiles (rank-major, all the same
/// shape) into the global matrix — the inverse of [`scatter_csr`].
pub fn gather_csr(grid: GridShape, tiles: &[CsrMatrix]) -> CsrMatrix {
    assert_eq!(tiles.len(), grid.size(), "one tile per rank");
    let (th, tw) = (tiles[0].rows(), tiles[0].cols());
    let mut triplets = Vec::with_capacity(tiles.iter().map(CsrMatrix::nnz).sum());
    for (r, tile) in tiles.iter().enumerate() {
        assert_eq!((tile.rows(), tile.cols()), (th, tw), "ragged tiles");
        let (gi, gj) = grid.coords(r);
        let (r0, c0) = (gi * th, gj * tw);
        for i in 0..th {
            let (cols_i, vals_i) = tile.row(i);
            for (t, &j) in cols_i.iter().enumerate() {
                triplets.push((r0 + i, c0 + j as usize, vals_i[t]));
            }
        }
    }
    CsrMatrix::from_triplets(grid.rows * th, grid.cols * tw, &triplets)
}

/// Scatters `a` and `b`, runs [`spgemm_2d`] on every rank of a threaded
/// runtime, gathers the per-rank results into the global sparse `C`.
pub fn distributed_spgemm(
    grid: GridShape,
    n: usize,
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &SparseConfig,
) -> CsrMatrix {
    let at: Vec<_> = scatter_csr(grid, a)
        .iter()
        .map(|t| Arc::new(t.clone()))
        .collect();
    let bt: Vec<_> = scatter_csr(grid, b)
        .iter()
        .map(|t| Arc::new(t.clone()))
        .collect();
    let ct = Runtime::run(grid.size(), |comm| {
        let r = comm.rank();
        spgemm_2d(comm, grid, n, &at[r], &bt[r], cfg).unwrap()
    });
    let tiles: Vec<CsrMatrix> = ct.iter().map(|t| (**t).clone()).collect();
    gather_csr(grid, &tiles)
}

/// Scatters `s`, `a`, `b`, runs [`sddmm_2d`] on every rank of a
/// threaded runtime, gathers the per-rank results.
pub fn distributed_sddmm(
    grid: GridShape,
    n: usize,
    s: &CsrMatrix,
    a: &Matrix,
    b: &Matrix,
    cfg: &SparseConfig,
) -> CsrMatrix {
    let st: Vec<_> = scatter_csr(grid, s)
        .iter()
        .map(|t| Arc::new(t.clone()))
        .collect();
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(a);
    let bt = dist.scatter(b);
    let ct = Runtime::run(grid.size(), |comm| {
        let r = comm.rank();
        sddmm_2d(comm, grid, n, &st[r], &at[r], &bt[r], cfg).unwrap()
    });
    let tiles: Vec<CsrMatrix> = ct.iter().map(|t| (**t).clone()).collect();
    gather_csr(grid, &tiles)
}

/// Timed replay of the [`spgemm_2d`] schedule on the simulator: the same
/// generic algorithm over phantom tiles built from the *real* CSR
/// operands, so every simulated message is priced at the true panel's
/// nnz-dependent wire size.
pub fn sim_spgemm_2d(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &SparseConfig,
) -> SimReport {
    let at: Vec<_> = scatter_csr(grid, a)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    let bt: Vec<_> = scatter_csr(grid, b)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    let cfg = *cfg;
    let (net, _) = SimWorld::run(
        SimNet::new(grid.size(), platform.net),
        platform.gamma,
        false,
        move |comm| {
            let r = comm.rank();
            spgemm_2d(comm, grid, n, &at[r], &bt[r], &cfg).unwrap()
        },
    );
    net.report()
}

/// Timed replay of the [`sddmm_2d`] schedule on the simulator (dense
/// pivot panels over phantom clocks; `S` as a patterned phantom tile, so
/// the per-step compute charge uses the exact sampled pair count).
pub fn sim_sddmm_2d(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    s: &CsrMatrix,
    cfg: &SparseConfig,
) -> SimReport {
    let st: Vec<_> = scatter_csr(grid, s)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    let (th, tw) = tile_shape(grid, n);
    let cfg = *cfg;
    let (net, _) = SimWorld::run(
        SimNet::new(grid.size(), platform.net),
        platform.gamma,
        false,
        move |comm| {
            let r = comm.rank();
            let tile = PhantomMat { rows: th, cols: tw };
            sddmm_2d(comm, grid, n, &st[r], &tile, &tile, &cfg).unwrap()
        },
    );
    net.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsumma_matrix::seeded_uniform;
    use hsumma_matrix::sparse::{sddmm, seeded_sparse, spgemm};

    #[test]
    fn scatter_gather_roundtrips() {
        let m = seeded_sparse(12, 12, 0.3, 51);
        for grid in [
            GridShape::new(1, 1),
            GridShape::new(2, 2),
            GridShape::new(2, 3),
        ] {
            let tiles = scatter_csr(grid, &m);
            assert_eq!(gather_csr(grid, &tiles), m, "{grid:?}");
        }
    }

    #[test]
    fn distributed_spgemm_matches_serial_reference() {
        let n = 16;
        let a = seeded_sparse(n, n, 0.25, 52);
        let b = seeded_sparse(n, n, 0.3, 53);
        let want = spgemm(&a, &b);
        for grid in [
            GridShape::new(1, 1),
            GridShape::new(2, 2),
            GridShape::new(2, 4),
        ] {
            let cfg = SparseConfig {
                block: 4,
                ..Default::default()
            };
            let got = distributed_spgemm(grid, n, &a, &b, &cfg);
            assert!(
                got.max_abs_diff(&want) < 1e-12,
                "{grid:?}: err {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn distributed_spgemm_handles_empty_and_dense_corners() {
        let n = 8;
        let grid = GridShape::new(2, 2);
        let cfg = SparseConfig {
            block: 2,
            ..Default::default()
        };
        // Entirely empty operand: product is empty.
        let empty = CsrMatrix::zeros(n, n);
        let b = seeded_sparse(n, n, 0.5, 54);
        assert_eq!(distributed_spgemm(grid, n, &empty, &b, &cfg).nnz(), 0);
        // Fully dense operands: must match the dense product.
        let da = seeded_sparse(n, n, 1.0, 55);
        let db = seeded_sparse(n, n, 1.0, 56);
        let got = distributed_spgemm(grid, n, &da, &db, &cfg);
        assert!(got.max_abs_diff(&spgemm(&da, &db)) < 1e-12);
    }

    #[test]
    fn distributed_sddmm_matches_serial_reference() {
        let n = 16;
        let s = seeded_sparse(n, n, 0.2, 57);
        let a = seeded_uniform(n, n, 58);
        let b = seeded_uniform(n, n, 59);
        let want = sddmm(&s, &a, &b);
        for grid in [
            GridShape::new(1, 1),
            GridShape::new(2, 2),
            GridShape::new(4, 2),
        ] {
            let cfg = SparseConfig {
                block: 4,
                ..Default::default()
            };
            let got = distributed_sddmm(grid, n, &s, &a, &b, &cfg);
            assert_eq!(got.row_ptr(), want.row_ptr(), "{grid:?}: pattern drifted");
            assert!(
                got.max_abs_diff(&want) < 1e-9,
                "{grid:?}: err {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn sim_spgemm_bytes_scale_with_density() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(2, 2);
        let n = 16;
        let cfg = SparseConfig {
            block: 4,
            ..Default::default()
        };
        let sparse_a = seeded_sparse(n, n, 0.1, 60);
        let sparse_b = seeded_sparse(n, n, 0.1, 61);
        let dense_a = seeded_sparse(n, n, 0.8, 60);
        let dense_b = seeded_sparse(n, n, 0.8, 61);
        let lo = sim_spgemm_2d(&plat, grid, n, &sparse_a, &sparse_b, &cfg);
        let hi = sim_spgemm_2d(&plat, grid, n, &dense_a, &dense_b, &cfg);
        assert_eq!(lo.msgs, hi.msgs, "same schedule, same message count");
        assert!(
            hi.bytes > lo.bytes,
            "denser operands must ship more wire bytes ({} vs {})",
            hi.bytes,
            lo.bytes
        );
    }

    #[test]
    fn sim_sddmm_moves_dense_panels_but_charges_sampled_compute() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(2, 2);
        let n = 16;
        let cfg = SparseConfig {
            block: 4,
            ..Default::default()
        };
        // Wire traffic is dense-panel traffic: independent of nnz(S).
        let s_lo = seeded_sparse(n, n, 0.05, 62);
        let s_hi = seeded_sparse(n, n, 0.6, 62);
        let lo = sim_sddmm_2d(&plat, grid, n, &s_lo, &cfg);
        let hi = sim_sddmm_2d(&plat, grid, n, &s_hi, &cfg);
        assert_eq!(lo.bytes, hi.bytes, "S never travels");
        // But the compute charge tracks the sample count.
        assert!(
            hi.comp_time > lo.comp_time,
            "denser S must charge more sampled dot products"
        );
    }
}
