//! Sparse payloads for the simulated substrate.
//!
//! The simulator transfers *byte counts*, not data, so a received sparse
//! panel cannot carry its nonzero pattern across the wire. What it *can*
//! carry — because the CSR wire format is invertible for a known row
//! count — is its exact `nnz`: receivers reconstruct it with
//! [`csr_nnz_from_wire`] and re-send the identical byte count when they
//! relay. That is all byte-multiset parity with the real substrate
//! needs.
//!
//! [`PhantomSparse`] therefore holds `rows`, `cols`, `nnz`, and an
//! *optional* pattern: present on locally-held tiles (built from the
//! real [`CsrMatrix`] at scatter time, which lets pivot owners slice
//! panels with exact per-panel `nnz`), absent on panels that arrived
//! over the simulated wire.

use hsumma_matrix::sparse::{csr_nnz_from_wire, csr_wire_bytes, CsrMatrix};
use hsumma_trace::WirePayload;
use std::sync::Arc;

/// The structure (pattern) of a sparse matrix: CSR minus the values.
/// Shared by `Arc` so slicing phantom tiles never copies more than the
/// panel it extracts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparsePattern {
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
}

impl SparsePattern {
    /// The pattern of `csr`.
    pub fn of(csr: &CsrMatrix) -> Self {
        SparsePattern {
            row_ptr: csr.row_ptr().to_vec(),
            col_idx: csr.col_idx().to_vec(),
        }
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Column indices of row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// The pattern of the `h × w` block at `(r0, c0)`, columns rebased
    /// to the block.
    fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        let (c_lo, c_hi) = (c0 as u32, (c0 + w) as u32);
        let mut row_ptr = Vec::with_capacity(h + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for i in r0..r0 + h {
            let cols_i = self.row(i);
            let lo = cols_i.partition_point(|&j| j < c_lo);
            let hi = cols_i.partition_point(|&j| j < c_hi);
            col_idx.extend(cols_i[lo..hi].iter().map(|&j| j - c_lo));
            row_ptr.push(col_idx.len());
        }
        SparsePattern { row_ptr, col_idx }
    }
}

/// A sparse matrix that exists as a shape plus a nonzero count — the
/// payload the simulated substrate moves where the real substrate moves
/// a [`CsrMatrix`].
///
/// The pattern is `Some` only for tiles the rank holds locally (it was
/// never on the wire); panels received over the simulated network are
/// pattern-less, with `nnz` recovered exactly from their wire bytes.
#[derive(Clone, Debug)]
pub struct PhantomSparse {
    rows: usize,
    cols: usize,
    nnz: usize,
    pattern: Option<Arc<SparsePattern>>,
}

/// Ships exactly the bytes the real CSR payload it models would —
/// *nnz-dependent*, unlike the dense phantom's shape-only size.
impl WirePayload for PhantomSparse {
    fn payload_bytes(&self) -> u64 {
        csr_wire_bytes(self.rows, self.nnz)
    }
}

impl PhantomSparse {
    /// The phantom stand-in for a locally-held CSR tile: full pattern,
    /// so panels sliced from it carry exact per-panel `nnz`.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        PhantomSparse {
            rows: csr.rows(),
            cols: csr.cols(),
            nnz: csr.nnz(),
            pattern: Some(Arc::new(SparsePattern::of(csr))),
        }
    }

    /// A pattern-less phantom reconstructed from a wire byte count (the
    /// receive path: the schedule knows the panel shape, the byte count
    /// determines `nnz`).
    pub fn from_wire(rows: usize, cols: usize, bytes: u64) -> Self {
        PhantomSparse {
            rows,
            cols,
            nnz: csr_nnz_from_wire(rows, bytes),
            pattern: None,
        }
    }

    /// A pattern-less phantom with an explicit nonzero count (modeling
    /// output tiles whose structure is estimated, not known).
    pub fn with_nnz(rows: usize, cols: usize, nnz: usize) -> Self {
        assert!(nnz <= rows * cols, "nnz exceeds the shape");
        PhantomSparse {
            rows,
            cols,
            nnz,
            pattern: None,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Stored-entry count (exact, even for pattern-less panels).
    pub fn nnz(&self) -> usize {
        self.nnz
    }
    /// The pattern, if this phantom was built from a local tile.
    pub fn pattern(&self) -> Option<&SparsePattern> {
        self.pattern.as_deref()
    }

    /// Slices the `h × w` panel at `(r0, c0)`. Only locally-held tiles
    /// are ever sliced by the 2-D schedules (pivot owners cut panels out
    /// of their own tiles), so the pattern must be present.
    ///
    /// # Panics
    /// Panics on a pattern-less phantom or an out-of-bounds block.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of bounds"
        );
        let pattern = self
            .pattern
            .as_ref()
            .expect("cannot slice a pattern-less phantom panel (it arrived over the wire)");
        let sub = pattern.block(r0, c0, h, w);
        PhantomSparse {
            rows: h,
            cols: w,
            nnz: sub.nnz(),
            pattern: Some(Arc::new(sub)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsumma_matrix::sparse::seeded_sparse;

    #[test]
    fn phantom_tracks_csr_bytes_exactly() {
        let csr = seeded_sparse(12, 9, 0.3, 7);
        let ph = PhantomSparse::from_csr(&csr);
        assert_eq!(ph.payload_bytes(), csr.payload_bytes());
        assert_eq!(ph.nnz(), csr.nnz());
    }

    #[test]
    fn wire_roundtrip_recovers_nnz_without_pattern() {
        let csr = seeded_sparse(8, 8, 0.4, 3);
        let ph = PhantomSparse::from_csr(&csr);
        let rx = PhantomSparse::from_wire(8, 8, ph.payload_bytes());
        assert_eq!(rx.nnz(), csr.nnz());
        assert!(rx.pattern().is_none());
        // And the relay re-sends the identical byte count.
        assert_eq!(rx.payload_bytes(), ph.payload_bytes());
    }

    #[test]
    fn block_nnz_matches_the_real_slice() {
        let csr = seeded_sparse(10, 10, 0.35, 11);
        let ph = PhantomSparse::from_csr(&csr);
        for (r0, c0, h, w) in [(0, 0, 10, 10), (2, 3, 4, 5), (0, 5, 10, 5)] {
            let real = csr.block(r0, c0, h, w);
            let phan = ph.block(r0, c0, h, w);
            assert_eq!(phan.nnz(), real.nnz(), "block ({r0},{c0},{h},{w})");
            assert_eq!(phan.payload_bytes(), real.payload_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "pattern-less")]
    fn received_panels_cannot_be_sliced() {
        PhantomSparse::from_wire(4, 4, csr_wire_bytes(4, 3)).block(0, 0, 2, 2);
    }
}
