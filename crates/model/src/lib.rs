//! Closed-form cost models for SUMMA and HSUMMA (§IV of the paper).
//!
//! Pure math, no dependencies: every formula of the paper's theoretical
//! analysis, in executable form.
//!
//! * [`bcast`] — the general broadcast-cost model of Eq. (1),
//!   `T_bcast(m, p) = L(p)·α + m·W(p)·β`, instantiated for binomial tree,
//!   van de Geijn scatter/allgather, and the other homogeneous algorithms
//!   it generalizes;
//! * [`cost`] — SUMMA and HSUMMA latency/bandwidth/compute breakdowns
//!   (Tables I and II, Eqs. 2–5), for a square `√p × √p` grid;
//! * [`regime`] — the extremum analysis (Eqs. 6–12): `∂T/∂G` vanishes at
//!   `G = √p`, and the sign of `α/β − 2nb/p` decides whether the interior
//!   extremum is the minimum (HSUMMA wins) or the maximum (HSUMMA falls
//!   back to `G ∈ {1, p}`, tying SUMMA);
//! * [`predict`] — parameter sweeps over `G` and platform presets used to
//!   regenerate Fig. 10 (exascale) and validate Figs. 5–9;
//! * [`mod@cosma`] — the COSMA-style brick schedule's critical path and
//!   exact wire volume over `(a, b, c)` decompositions of the
//!   `m × n × k` cube, with a memory-budgeted [`best_brick`] search;
//! * [`plan`] — algorithm selection on top of the cost models: given
//!   `(m, n, k, p, b)` and a platform, pick SUMMA vs HSUMMA-at-best-`G`
//!   vs Cannon vs COSMA by predicted time (the entry point the serving
//!   layer's planner consults);
//! * [`sparse`] — nnz-aware extensions: CSR wire-format byte models,
//!   sampled [`SparsityProfile`]s, SpGEMM/SDDMM cost breakdowns and the
//!   [`advise_sparse`] densify-vs-SpGEMM scoreboard.
//!
//! ## Units
//!
//! The paper quotes `β` as "reciprocal bandwidth" and measures messages in
//! matrix elements. This crate keeps everything explicit: `alpha` in
//! seconds, `beta` in seconds per **byte**, message sizes in elements of
//! [`ELEM_BYTES`] bytes, `gamma` in seconds per fused multiply-add pair.

pub mod bcast;
pub mod cosma;
pub mod cost;
pub mod plan;
pub mod predict;
pub mod regime;
pub mod related;
pub mod sparse;

pub use bcast::BcastModel;
pub use cosma::{
    best_brick, cosma_cost, cosma_footprint_elems, cosma_volume, redistribution_cost, BrickAdvice,
    BrickShape,
};
pub use cost::{
    hsumma_cost, hsumma_gemm_cost, summa_cost, summa_gemm_cost, CostBreakdown, ModelParams,
};
pub use plan::{
    advise_gemm, advise_ranks, advise_square, AlgoChoice, PlanAdvice, RankAdvice, ScalePoint,
};
pub use predict::{sweep_groups, SweepPoint};
pub use regime::{classify_regime, dtheta_dg_vdg, Regime};
pub use sparse::{
    advise_sddmm_ranks, advise_sparse, advise_spgemm_ranks, sddmm_cost, spgemm_cost, spgemm_flops,
    SparseAdvice, SparseChoice, SparsityProfile,
};

/// Bytes per matrix element (`f64`).
pub const ELEM_BYTES: f64 = 8.0;
