//! nnz-aware cost models and the dense-vs-sparse decision.
//!
//! Dense GEMM on sparse data wastes bandwidth (shipping zeros) and
//! flops (multiplying them); SpGEMM pays CSR overhead per stored entry
//! (12 bytes vs 8) and loses the dense kernel's arithmetic intensity.
//! Which wins is a function of the operands' fill — so the planner needs
//! sparse cost terms next to the dense ones.
//!
//! * message sizes come from the CSR wire format (replicated here as
//!   floating-point constants — this crate is dependency-free; a
//!   cross-crate test pins them to `hsumma_matrix::sparse`'s `u64`
//!   originals), so predicted bytes are `∝ nnz/p` per panel plus the
//!   row-pointer overhead, exactly what the simulator charges;
//! * flop counts come from a [`SparsityProfile`] estimated by *sampling
//!   row densities* — the planner never needs the full pattern, just a
//!   handful of row nnz counts;
//! * [`advise_sparse`] is the scoreboard: densify-and-SUMMA vs native
//!   SpGEMM, by predicted total time, with both candidates' breakdowns
//!   attached so callers can log the crossover.

use crate::bcast::BcastModel;
use crate::cost::{summa_cost, CostBreakdown, ModelParams};
use crate::plan::{pow2s_upto, rank_advice_from_curve, RankAdvice, ScalePoint};

/// CSR wire-format constants, mirroring `hsumma_matrix::sparse` (fixed
/// header; one 8-byte offset per row boundary; 12 bytes per stored
/// entry). A cross-crate consistency test keeps the mirror honest.
pub const CSR_HEADER_BYTES: f64 = 16.0;
/// Per-row-boundary bytes of the CSR wire format.
pub const CSR_ROW_PTR_BYTES: f64 = 8.0;
/// Per-stored-entry bytes of the CSR wire format.
pub const CSR_ENTRY_BYTES: f64 = 12.0;

/// Serialized size of a CSR panel with (fractional, expected) `nnz`.
pub fn csr_wire_bytes_model(rows: f64, nnz: f64) -> f64 {
    CSR_HEADER_BYTES + (rows + 1.0) * CSR_ROW_PTR_BYTES + nnz * CSR_ENTRY_BYTES
}

/// A sparsity estimate from sampled row densities: what the planner
/// knows about an operand without reading its full pattern.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SparsityProfile {
    /// Global row count.
    pub rows: f64,
    /// Global column count.
    pub cols: f64,
    /// Mean stored entries per row (from the sample).
    pub avg_row_nnz: f64,
}

impl SparsityProfile {
    /// Builds a profile from the nnz counts of a row sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn from_row_samples(rows: f64, cols: f64, sampled_row_nnz: &[usize]) -> Self {
        assert!(!sampled_row_nnz.is_empty(), "need at least one sampled row");
        let avg = sampled_row_nnz.iter().sum::<usize>() as f64 / sampled_row_nnz.len() as f64;
        SparsityProfile {
            rows,
            cols,
            avg_row_nnz: avg,
        }
    }

    /// A profile with uniform fill `density ∈ [0, 1]`.
    pub fn uniform(rows: f64, cols: f64, density: f64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        SparsityProfile {
            rows,
            cols,
            avg_row_nnz: cols * density,
        }
    }

    /// Estimated total stored entries.
    pub fn nnz(&self) -> f64 {
        self.rows * self.avg_row_nnz
    }

    /// Estimated fill fraction.
    pub fn density(&self) -> f64 {
        if self.cols == 0.0 {
            0.0
        } else {
            self.avg_row_nnz / self.cols
        }
    }
}

/// Expected multiply-add pairs of the sparse product `A·B` under the
/// scattered-fill model: every stored `(i, k)` of `A` meets the expected
/// `avg_row_nnz(B)` stored entries of `B`'s row `k`, so
/// `pairs = nnz(A) · avg_row_nnz(B)`.
pub fn spgemm_flops(a: &SparsityProfile, b: &SparsityProfile) -> f64 {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    a.nnz() * b.avg_row_nnz
}

/// Predicted cost of the 2-D SpGEMM schedule (`spgemm_2d`) on a square
/// `√p × √p` grid: `n/b` steps, each broadcasting a CSR pivot panel of
/// `A` along grid rows and of `B` along grid columns down binomial trees
/// (`log₂√p` deep — the sparse broadcast is always the binomial tree),
/// with per-panel wire sizes from the operands' expected fill.
///
/// # Panics
/// Panics unless `p ≥ 1`, `n ≥ b ≥ 1`, and the profiles are `n × n`.
pub fn spgemm_cost(
    params: &ModelParams,
    n: f64,
    p: f64,
    b: f64,
    a: &SparsityProfile,
    bp: &SparsityProfile,
) -> CostBreakdown {
    assert!(p >= 1.0 && n >= b && b >= 1.0, "invalid SpGEMM parameters");
    assert_eq!((a.rows, a.cols), (n, n), "A profile must be n × n");
    assert_eq!((bp.rows, bp.cols), (n, n), "B profile must be n × n");
    let q = p.sqrt();
    let steps = n / b;
    let depth = q.log2().max(0.0); // binomial tree over √p ranks
    let tile = n / q;
    // A's pivot panel: tile-height rows, b columns of them stored.
    let a_panel_bytes = csr_wire_bytes_model(tile, tile * b * a.density());
    // B's pivot panel: b rows, tile-width columns.
    let b_panel_bytes = csr_wire_bytes_model(b, b * tile * bp.density());
    CostBreakdown {
        latency: 2.0 * steps * depth * params.alpha,
        bandwidth: steps * depth * (a_panel_bytes + b_panel_bytes) * params.beta,
        compute: params.gamma * spgemm_flops(a, bp) / p,
    }
}

/// Predicted cost of the 2-D SDDMM schedule (`sddmm_2d`): the *wire*
/// cost is exactly SUMMA's (dense pivot panels of `A` and `B`; the
/// sample matrix never travels), but the compute term is sampled —
/// `nnz(S) · n` multiply-add pairs total instead of `n³`.
pub fn sddmm_cost(
    params: &ModelParams,
    bcast: BcastModel,
    n: f64,
    p: f64,
    b: f64,
    s: &SparsityProfile,
) -> CostBreakdown {
    assert_eq!((s.rows, s.cols), (n, n), "S profile must be n × n");
    let dense = summa_cost(params, bcast, n, p, b);
    CostBreakdown {
        latency: dense.latency,
        bandwidth: dense.bandwidth,
        compute: params.gamma * s.nnz() * n / p,
    }
}

/// How a sparse multiply should run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparseChoice {
    /// Densify the operands and run the dense SUMMA schedule.
    DenseGemm,
    /// Run the native 2-D SpGEMM schedule.
    SpGemm,
}

/// The scoreboard behind a dense-vs-sparse decision.
#[derive(Clone, Copy, Debug)]
pub struct SparseAdvice {
    /// The predicted winner by total time (unlike the dense-only
    /// scoreboard, the *compute* terms differ radically here, so the
    /// comparison cannot be communication-only).
    pub choice: SparseChoice,
    /// The winner's predicted cost.
    pub predicted: CostBreakdown,
    /// Densify-and-SUMMA's predicted cost.
    pub dense: CostBreakdown,
    /// Native SpGEMM's predicted cost.
    pub spgemm: CostBreakdown,
}

/// Decides densify-and-SUMMA vs native SpGEMM for a square `n × n`
/// sparse product on `p` ranks with panel width `b`, from the operands'
/// sampled sparsity profiles.
///
/// Near full density SpGEMM's 12-byte entries and Gustavson bookkeeping
/// lose to the dense schedule; at low fill the dense schedule ships and
/// multiplies zeros. The crossover this scoreboard finds is the
/// planner-visible quantity `BENCH_sparse.json` records empirically.
pub fn advise_sparse(
    params: &ModelParams,
    n: f64,
    p: f64,
    b: f64,
    a: &SparsityProfile,
    bp: &SparsityProfile,
) -> SparseAdvice {
    let dense = summa_cost(params, BcastModel::Binomial, n, p, b);
    let spgemm = spgemm_cost(params, n, p, b, a, bp);
    let (choice, predicted) = if spgemm.total() < dense.total() {
        (SparseChoice::SpGemm, spgemm)
    } else {
        (SparseChoice::DenseGemm, dense)
    };
    SparseAdvice {
        choice,
        predicted,
        dense,
        spgemm,
    }
}

/// Strong-scaling advice for a square `n × n` SpGEMM: the
/// [`advise_ranks`](crate::plan::advise_ranks) sweep with the sparse
/// scoreboard as its oracle. Each power-of-two rank count in
/// `[1, p_max]` is scored by [`advise_sparse`]'s predicted winner
/// (densify-and-SUMMA or native SpGEMM — the winner may flip along the
/// curve), and the smallest count within `tolerance` of the best total
/// is preferred. This is what lets sparse jobs carve sub-pools instead
/// of monopolizing the whole rank pool: a hypersparse product's
/// communication terms flatten long before the pool is exhausted.
///
/// # Panics
/// Panics unless `p_max ≥ 1` (the per-point costs inherit
/// [`spgemm_cost`]'s own contracts).
pub fn advise_spgemm_ranks(
    params: &ModelParams,
    n: f64,
    p_max: usize,
    b: f64,
    a: &SparsityProfile,
    bp: &SparsityProfile,
    tolerance: f64,
) -> RankAdvice {
    assert!(p_max >= 1, "advise_spgemm_ranks needs at least one rank");
    let curve: Vec<ScalePoint> = pow2s_upto(p_max)
        .map(|p| ScalePoint {
            ranks: p,
            total: advise_sparse(params, n, p as f64, b, a, bp)
                .predicted
                .total(),
        })
        .collect();
    rank_advice_from_curve(curve, tolerance)
}

/// Strong-scaling advice for a square `n × n` SDDMM, scored by
/// [`sddmm_cost`] (dense SUMMA wire terms, sampled compute) at each
/// power-of-two rank count. Same contract as [`advise_spgemm_ranks`].
pub fn advise_sddmm_ranks(
    params: &ModelParams,
    n: f64,
    p_max: usize,
    b: f64,
    s: &SparsityProfile,
    tolerance: f64,
) -> RankAdvice {
    assert!(p_max >= 1, "advise_sddmm_ranks needs at least one rank");
    let curve: Vec<ScalePoint> = pow2s_upto(p_max)
        .map(|p| ScalePoint {
            ranks: p,
            total: sddmm_cost(params, BcastModel::Binomial, n, p as f64, b, s).total(),
        })
        .collect();
    rank_advice_from_curve(curve, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_constants_mirror_the_matrix_crate() {
        // The authoritative u64 format lives in hsumma_matrix::sparse;
        // this crate is dependency-free, so the mirror is pinned here
        // (dev-dependencies are allowed where dependencies are not).
        use hsumma_matrix::sparse as wire;
        assert_eq!(CSR_HEADER_BYTES, wire::CSR_HEADER_BYTES as f64);
        assert_eq!(CSR_ROW_PTR_BYTES, wire::CSR_ROW_PTR_BYTES as f64);
        assert_eq!(CSR_ENTRY_BYTES, wire::CSR_ENTRY_BYTES as f64);
        for (rows, nnz) in [(1usize, 0usize), (64, 777), (4096, 123456)] {
            assert_eq!(
                csr_wire_bytes_model(rows as f64, nnz as f64),
                wire::csr_wire_bytes(rows, nnz) as f64
            );
        }
    }

    #[test]
    fn profile_from_samples_averages_row_nnz() {
        let prof = SparsityProfile::from_row_samples(1024.0, 1024.0, &[10, 20, 30]);
        assert_eq!(prof.avg_row_nnz, 20.0);
        assert_eq!(prof.nnz(), 1024.0 * 20.0);
        assert!((prof.density() - 20.0 / 1024.0).abs() < 1e-15);
    }

    #[test]
    fn spgemm_flops_match_the_scattered_fill_formula() {
        let a = SparsityProfile::uniform(512.0, 512.0, 0.1);
        let b = SparsityProfile::uniform(512.0, 512.0, 0.2);
        // nnz(A) = 512·51.2; each entry meets 102.4 of B's row entries.
        assert!((spgemm_flops(&a, &b) - 512.0 * 51.2 * 102.4).abs() < 1e-6);
    }

    #[test]
    fn fully_dense_profiles_cost_more_wire_than_dense_gemm() {
        // At density 1.0 CSR ships 12 bytes/entry vs dense 8: SpGEMM's
        // bandwidth term must exceed SUMMA's.
        let params = ModelParams::grid5000();
        let (n, p, b) = (4096.0, 64.0, 64.0);
        let full = SparsityProfile::uniform(n, n, 1.0);
        let sp = spgemm_cost(&params, n, p, b, &full, &full);
        let dn = summa_cost(&params, BcastModel::Binomial, n, p, b);
        assert!(sp.bandwidth > dn.bandwidth);
    }

    #[test]
    fn advice_crosses_over_with_density() {
        // Sweep density: sparse must win at the low end, dense at the
        // high end, with a single crossover between.
        let params = ModelParams::grid5000();
        let (n, p, b) = (4096.0, 64.0, 64.0);
        let choice_at = |d: f64| {
            let prof = SparsityProfile::uniform(n, n, d);
            advise_sparse(&params, n, p, b, &prof, &prof).choice
        };
        assert_eq!(choice_at(0.001), SparseChoice::SpGemm);
        assert_eq!(choice_at(1.0), SparseChoice::DenseGemm);
        let mut flips = 0;
        let mut prev = choice_at(0.001);
        for i in 1..=100 {
            let cur = choice_at(0.001 + (1.0 - 0.001) * i as f64 / 100.0);
            if cur != prev {
                flips += 1;
                prev = cur;
            }
        }
        assert_eq!(flips, 1, "exactly one dense/sparse crossover");
    }

    #[test]
    fn advice_scoreboard_is_consistent() {
        let params = ModelParams::bluegene_p();
        let prof = SparsityProfile::uniform(1024.0, 1024.0, 0.05);
        let adv = advise_sparse(&params, 1024.0, 16.0, 32.0, &prof, &prof);
        let want = adv.dense.total().min(adv.spgemm.total());
        assert_eq!(adv.predicted.total(), want);
    }

    #[test]
    fn sddmm_comm_is_dense_but_compute_is_sampled() {
        let params = ModelParams::grid5000();
        let (n, p, b) = (2048.0, 64.0, 64.0);
        let s = SparsityProfile::uniform(n, n, 0.01);
        let c = sddmm_cost(&params, BcastModel::Binomial, n, p, b, &s);
        let dense = summa_cost(&params, BcastModel::Binomial, n, p, b);
        assert_eq!(c.latency, dense.latency);
        assert_eq!(c.bandwidth, dense.bandwidth);
        assert!(c.compute < dense.compute, "sampled flops must be fewer");
        assert!((c.compute - params.gamma * s.nnz() * n / p).abs() < 1e-18);
    }

    #[test]
    fn sparse_rank_advice_caps_hypersparse_jobs_below_the_pool() {
        // A hypersparse 256² product has almost no compute to amortize:
        // past a handful of ranks every extra rank only deepens the
        // broadcast trees. A dense-fill product of the same shape keeps
        // scaling further because its compute term still dominates.
        let params = ModelParams::grid5000();
        let sparse = SparsityProfile::uniform(256.0, 256.0, 0.01);
        let dense = SparsityProfile::uniform(256.0, 256.0, 1.0);
        let thin = advise_spgemm_ranks(&params, 256.0, 64, 16.0, &sparse, &sparse, 0.1);
        let full = advise_spgemm_ranks(&params, 256.0, 64, 16.0, &dense, &dense, 0.1);
        assert_eq!(thin.curve.len(), 7, "1..=64 powers of two");
        assert!(thin.preferred.is_power_of_two());
        assert!(thin.preferred <= thin.best);
        assert!(
            thin.preferred < 64,
            "a hypersparse 256² job should not be worth the whole pool \
             (preferred {})",
            thin.preferred
        );
        assert!(
            full.preferred >= thin.preferred,
            "denser products scale at least as far ({} vs {})",
            full.preferred,
            thin.preferred
        );
    }

    #[test]
    fn sddmm_rank_advice_tracks_the_sampled_compute() {
        // SDDMM's wire cost is dense SUMMA's, so a near-empty sample
        // matrix leaves nothing to parallelize — the sweep caps low —
        // while a full sample matrix behaves like dense GEMM.
        let params = ModelParams::grid5000();
        let empty = SparsityProfile::uniform(512.0, 512.0, 0.001);
        let full = SparsityProfile::uniform(512.0, 512.0, 1.0);
        let thin = advise_sddmm_ranks(&params, 512.0, 64, 16.0, &empty, 0.1);
        let fat = advise_sddmm_ranks(&params, 512.0, 64, 16.0, &full, 0.1);
        assert!(thin.preferred <= fat.preferred);
        assert!(thin.preferred < 64);
    }

    #[test]
    fn empty_profile_costs_only_structure() {
        // nnz = 0 still ships headers and row pointers — latency and the
        // structural bytes, no compute.
        let params = ModelParams::grid5000();
        let empty = SparsityProfile::uniform(256.0, 256.0, 0.0);
        let c = spgemm_cost(&params, 256.0, 16.0, 16.0, &empty, &empty);
        assert!(c.latency > 0.0 && c.bandwidth > 0.0);
        assert_eq!(c.compute, 0.0);
    }
}
