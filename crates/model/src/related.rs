//! Cost models of the related algorithms the paper positions against
//! (§I): Cannon's algorithm, the 3-D algorithm, and the 2.5D algorithm.
//!
//! These are *context*, not reproductions of those papers: the closed
//! forms below are the standard ones (Agarwal et al. 1995 for 3D;
//! Solomonik & Demmel 2011 for 2.5D) in the same `(α, β, γ)` vocabulary
//! as [`crate::cost`], so a single table can show where HSUMMA sits —
//! including the *memory* axis on which the paper argues 3D/2.5D are
//! impractical at exascale ("dramatically shrinking memory space per
//! core", §I).

use crate::cost::{CostBreakdown, ModelParams};
use crate::ELEM_BYTES;

/// Predicted cost of Cannon's algorithm on a `√p × √p` grid: `√p` rounds
/// of one tile shift per operand, tiles of `n²/p` elements.
pub fn cannon_cost(params: &ModelParams, n: f64, p: f64) -> CostBreakdown {
    let q = p.sqrt();
    let tile_bytes = n * n / p * ELEM_BYTES;
    // Two shifts (A and B) per round, q rounds; alignment adds ~2 more
    // shifts, which we fold in for the worst case.
    let shifts = 2.0 * (q + 1.0);
    CostBreakdown {
        latency: shifts * params.alpha,
        bandwidth: shifts * tile_bytes * params.beta,
        compute: params.gamma * n * n * n / p,
    }
}

/// Predicted cost of the 3-D algorithm on a `p^⅓ × p^⅓ × p^⅓` mesh
/// (Agarwal et al.): each processor exchanges `O(n²/p^⅔)` words in
/// `O(log p)` rounds; communication volume is a factor `p^⅙` below the
/// 2-D algorithms.
pub fn threed_cost(params: &ModelParams, n: f64, p: f64) -> CostBreakdown {
    let words = 3.0 * n * n / p.powf(2.0 / 3.0); // gather A, B; reduce C
    CostBreakdown {
        latency: 3.0 * p.log2() * params.alpha,
        bandwidth: words * ELEM_BYTES * params.beta,
        compute: params.gamma * n * n * n / p,
    }
}

/// Per-processor matrix storage of the 3-D algorithm relative to the 2-D
/// algorithms: `p^⅓` replicas (§I: "on one million cores the 3D
/// algorithm will require 100 extra copies").
pub fn threed_memory_blowup(p: f64) -> f64 {
    p.powf(1.0 / 3.0)
}

/// Predicted cost of the 2.5D algorithm with replication factor
/// `c ∈ [1, p^⅓]` on a `√(p/c) × √(p/c) × c` arrangement (Solomonik &
/// Demmel): bandwidth `O(n²/√(cp))`, latency `O(√(p/c³) + log c)`.
pub fn twodotfive_cost(params: &ModelParams, n: f64, p: f64, c: f64) -> CostBreakdown {
    assert!(
        c >= 1.0 && c <= p.powf(1.0 / 3.0) + 1e-9,
        "c must lie in [1, p^1/3]"
    );
    let bandwidth_words = 2.0 * n * n / (c * p).sqrt();
    let latency_msgs = (p / (c * c * c)).sqrt() + c.log2().max(0.0);
    CostBreakdown {
        latency: latency_msgs * params.alpha,
        bandwidth: bandwidth_words * ELEM_BYTES * params.beta,
        compute: params.gamma * n * n * n / p,
    }
}

/// Per-processor matrix storage of the 2.5D algorithm relative to 2-D:
/// `c` replicas of each operand.
pub fn twodotfive_memory_blowup(c: f64) -> f64 {
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcast::BcastModel;
    use crate::cost::summa_cost;

    #[test]
    fn cannon_moves_less_than_summa_per_paper_history() {
        // Cannon's shift-based schedule is bandwidth-optimal among 2-D
        // algorithms: its bandwidth term is below binomial-tree SUMMA's.
        let params = ModelParams::bluegene_p();
        let (n, p) = (65536.0, 16384.0);
        let cannon = cannon_cost(&params, n, p);
        let summa = summa_cost(&params, BcastModel::Binomial, n, p, 256.0);
        assert!(cannon.bandwidth < summa.bandwidth);
    }

    #[test]
    fn threed_beats_2d_bandwidth_by_sixth_root_factor() {
        let params = ModelParams::exascale();
        let (n, p) = ((1u64 << 22) as f64, (1u64 << 20) as f64);
        let c2d = cannon_cost(&params, n, p);
        let c3d = threed_cost(&params, n, p);
        // Factor p^(1/6) ≈ 10 at p = 2^20 (§I), modulo constants.
        let ratio = c2d.bandwidth / c3d.bandwidth;
        assert!(ratio > 3.0 && ratio < 30.0, "ratio {ratio}");
    }

    #[test]
    fn threed_memory_blowup_is_100x_at_a_million_cores() {
        // §I: "on one million cores the 3D algorithm will require 100
        // extra copies of the matrices".
        let blowup = threed_memory_blowup(1e6);
        assert!((blowup - 100.0).abs() < 1.0, "got {blowup}");
    }

    #[test]
    fn twodotfive_interpolates_between_2d_and_3d() {
        let params = ModelParams::exascale();
        let (n, p) = ((1u64 << 22) as f64, (1u64 << 20) as f64);
        let at_c1 = twodotfive_cost(&params, n, p, 1.0);
        let c3 = p.powf(1.0 / 3.0);
        let at_cmax = twodotfive_cost(&params, n, p, c3);
        let c3d = threed_cost(&params, n, p);
        // c = 1 is the 2-D extreme; c = p^(1/3) approaches the 3-D cost.
        assert!(at_c1.bandwidth > at_cmax.bandwidth);
        let ratio = at_cmax.bandwidth / c3d.bandwidth;
        assert!(ratio > 0.2 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn twodotfive_memory_grows_linearly_in_c() {
        assert_eq!(twodotfive_memory_blowup(4.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "c must lie")]
    fn twodotfive_rejects_oversized_replication() {
        let params = ModelParams::exascale();
        let _ = twodotfive_cost(&params, 1e6, 64.0, 16.0);
    }

    #[test]
    fn hsumma_needs_no_extra_memory_unlike_25d() {
        // The paper's §I argument: HSUMMA's win costs no extra replicas.
        // (HSUMMA memory factor is 1 by construction — the distribution
        // is unchanged; here we just pin the related-work factors.)
        assert!(twodotfive_memory_blowup(4.0) > 1.0);
        assert!(threed_memory_blowup(1e6) > 1.0);
    }
}
