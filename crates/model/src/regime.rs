//! The extremum analysis of §IV-C (Eqs. 6–12).
//!
//! For any broadcast model of the Eq. (1) form, the HSUMMA communication
//! cost `T_HS(n, p, G)` (with `b = B`) has a stationary point at
//! `G = √p`. For the van de Geijn broadcast the derivative factors as
//!
//! ```text
//! ∂T_HS/∂G = (G − √p) / (G·√G) · (n·α/b − 2·n²/p·β_elem)      (Eq. 9)
//! ```
//!
//! so the sign of `α/β_elem − 2nb/p` decides everything:
//!
//! * `α/β_elem > 2nb/p` (Eq. 10): interior **minimum** at `G = √p` —
//!   HSUMMA strictly beats SUMMA;
//! * `α/β_elem < 2nb/p` (Eq. 11): interior **maximum** — the best choices
//!   are the endpoints `G ∈ {1, p}`, where HSUMMA *equals* SUMMA.
//!
//! Either way HSUMMA never loses, which is the paper's central claim.

use crate::ELEM_BYTES;

/// Which kind of interior extremum `T_HS(G)` has at `G = √p`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// Latency-dominated: `G = √p` is the global minimum (HSUMMA wins).
    InteriorMinimum,
    /// Bandwidth-dominated: `G = √p` is a maximum; optimum at `G ∈ {1, p}`
    /// where HSUMMA ties SUMMA.
    InteriorMaximum,
    /// Exactly on the boundary: `T_HS` is constant in `G`.
    Degenerate,
}

/// Evaluates Eq. (10)/(11): compares `α/β_elem` against `2nb/p`.
///
/// `beta` is per byte; the paper's per-element comparison uses
/// `β_elem = ELEM_BYTES · β`.
pub fn classify_regime(alpha: f64, beta: f64, n: f64, p: f64, b: f64) -> Regime {
    let beta_elem = beta * ELEM_BYTES;
    let lhs = alpha / beta_elem;
    let rhs = 2.0 * n * b / p;
    if lhs > rhs {
        Regime::InteriorMinimum
    } else if lhs < rhs {
        Regime::InteriorMaximum
    } else {
        Regime::Degenerate
    }
}

/// The closed-form derivative of the van de Geijn HSUMMA communication
/// cost with respect to `G` (Eq. 9), at `b = B`.
pub fn dtheta_dg_vdg(alpha: f64, beta: f64, n: f64, p: f64, g: f64, b: f64) -> f64 {
    let beta_elem = beta * ELEM_BYTES;
    (g - p.sqrt()) / (g * g.sqrt()) * (n * alpha / b - 2.0 * n * n / p * beta_elem)
}

/// Numerical `∂T/∂G` of a generic cost function — used to validate the
/// closed form and to explore other broadcast models.
pub fn numeric_derivative(f: impl Fn(f64) -> f64, g: f64) -> f64 {
    let h = (g * 1e-6).max(1e-9);
    (f(g + h) - f(g - h)) / (2.0 * h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcast::BcastModel;
    use crate::cost::{hsumma_cost, ModelParams};

    #[test]
    fn derivative_vanishes_at_sqrt_p() {
        let d = dtheta_dg_vdg(1e-4, 1e-9, 8192.0, 16384.0, 128.0, 64.0);
        assert!(d.abs() < 1e-18, "derivative at √p should vanish, got {d}");
    }

    #[test]
    fn derivative_sign_flips_across_sqrt_p_in_min_regime() {
        // Latency-dominated: negative below √p, positive above.
        let (a, b_, n, p, blk) = (1e-4, 1e-9, 8192.0, 16384.0, 64.0);
        assert_eq!(classify_regime(a, b_, n, p, blk), Regime::InteriorMinimum);
        assert!(dtheta_dg_vdg(a, b_, n, p, 16.0, blk) < 0.0);
        assert!(dtheta_dg_vdg(a, b_, n, p, 1024.0, blk) > 0.0);
    }

    #[test]
    fn derivative_sign_flips_opposite_in_max_regime() {
        // Bandwidth-dominated (tiny α): positive below √p, negative above.
        let (a, b_, n, p, blk) = (1e-9, 1e-6, 8192.0, 16384.0, 64.0);
        assert_eq!(classify_regime(a, b_, n, p, blk), Regime::InteriorMaximum);
        assert!(dtheta_dg_vdg(a, b_, n, p, 16.0, blk) > 0.0);
        assert!(dtheta_dg_vdg(a, b_, n, p, 1024.0, blk) < 0.0);
    }

    #[test]
    fn closed_form_matches_numeric_derivative_of_cost() {
        let params = ModelParams {
            alpha: 1e-4,
            beta: 1e-9,
            gamma: 0.0,
        };
        let (n, p, blk) = (8192.0, 16384.0, 64.0);
        let comm = |g: f64| {
            hsumma_cost(
                &params,
                BcastModel::VanDeGeijn,
                BcastModel::VanDeGeijn,
                n,
                p,
                g,
                blk,
                blk,
            )
            .comm()
        };
        for g in [4.0, 64.0, 400.0, 4096.0] {
            let numeric = numeric_derivative(comm, g);
            let closed = dtheta_dg_vdg(params.alpha, params.beta, n, p, g, blk);
            let rel = (numeric - closed).abs() / closed.abs().max(1e-12);
            assert!(rel < 1e-3, "G={g}: numeric {numeric} vs closed {closed}");
        }
    }

    #[test]
    fn paper_grid5000_validation_is_interior_minimum() {
        // §V-A.1: α=1e-4, β=1e-9/element. The paper checks
        // α/β = 1e5 > 2nb/p; we verify the same with the preset.
        let m = ModelParams::grid5000();
        let r = classify_regime(m.alpha, m.beta, 8192.0, 128.0, 64.0);
        assert_eq!(r, Regime::InteriorMinimum);
    }

    #[test]
    fn paper_bluegene_validation_is_interior_minimum() {
        // §V-B.1: α=3e-6, β=1e-9/element, n=65536, p=16384, b=256:
        // α/β = 3000 > 2nb/p = 2048, a narrow but real margin.
        let m = ModelParams::bluegene_p();
        let r = classify_regime(m.alpha, m.beta, 65536.0, 16384.0, 256.0);
        assert_eq!(r, Regime::InteriorMinimum);
    }

    #[test]
    fn paper_exascale_validation_is_interior_minimum() {
        // §V-C: α=500ns, β=1e-11 s/B, n=2²², p=2²⁰, b=256.
        let r = classify_regime(
            500e-9,
            1e-11,
            (1u64 << 22) as f64,
            (1u64 << 20) as f64,
            256.0,
        );
        assert_eq!(r, Regime::InteriorMinimum);
    }

    #[test]
    fn sqrt_p_is_global_minimum_over_the_sweep_in_min_regime() {
        let params = ModelParams::bluegene_p();
        let (n, p, blk) = (65536.0, 16384.0f64, 256.0);
        let comm = |g: f64| {
            hsumma_cost(
                &params,
                BcastModel::VanDeGeijn,
                BcastModel::VanDeGeijn,
                n,
                p,
                g,
                blk,
                blk,
            )
            .comm()
        };
        let at_opt = comm(p.sqrt());
        for g in [1.0, 2.0, 8.0, 32.0, 512.0, 4096.0, 16384.0] {
            assert!(
                comm(g) >= at_opt - 1e-12,
                "G={g} gives {} below optimum {at_opt}",
                comm(g)
            );
        }
    }

    #[test]
    fn degenerate_boundary_classified() {
        // Construct α/β_elem == 2nb/p exactly.
        let (n, p, b) = (1024.0, 64.0, 8.0);
        let rhs = 2.0 * n * b / p; // = 256
        let beta = 1e-9;
        let alpha = rhs * beta * ELEM_BYTES;
        assert_eq!(classify_regime(alpha, beta, n, p, b), Regime::Degenerate);
    }
}
