//! Predicted sweeps over the number of groups — the machinery behind the
//! model-validation subsections (§V-A.1, §V-B.1) and the exascale
//! prediction of Fig. 10.

use crate::bcast::BcastModel;
use crate::cost::{hsumma_cost, summa_cost, CostBreakdown, ModelParams};

/// One point of a `G` sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Number of groups.
    pub g: f64,
    /// Predicted HSUMMA cost at this `G`.
    pub hsumma: CostBreakdown,
    /// Predicted SUMMA cost (constant across the sweep; repeated for
    /// convenience when tabulating).
    pub summa: CostBreakdown,
}

/// Predicts HSUMMA (at `b = B`) for every `G` in `gs`, alongside SUMMA.
pub fn sweep_groups(
    params: &ModelParams,
    bcast: BcastModel,
    n: f64,
    p: f64,
    b: f64,
    gs: &[f64],
) -> Vec<SweepPoint> {
    let summa = summa_cost(params, bcast, n, p, b);
    gs.iter()
        .map(|&g| SweepPoint {
            g,
            hsumma: hsumma_cost(params, bcast, bcast, n, p, g, b, b),
            summa,
        })
        .collect()
}

/// Powers of two from 1 to `p` inclusive — the G axis of Figs. 8 and 10.
pub fn power_of_two_gs(p: f64) -> Vec<f64> {
    let mut gs = Vec::new();
    let mut g = 1.0;
    while g <= p {
        gs.push(g);
        g *= 2.0;
    }
    gs
}

/// The predicted best `G` and its cost over a sweep (by communication
/// time, matching how the paper selects the optimal grouping).
pub fn best_point(sweep: &[SweepPoint]) -> SweepPoint {
    *sweep
        .iter()
        .min_by(|a, b| {
            a.hsumma
                .comm()
                .partial_cmp(&b.hsumma.comm())
                .expect("costs are finite")
        })
        .expect("sweep must not be empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_gs_covers_1_to_p() {
        let gs = power_of_two_gs(16384.0);
        assert_eq!(gs.first(), Some(&1.0));
        assert_eq!(gs.last(), Some(&16384.0));
        assert_eq!(gs.len(), 15);
    }

    #[test]
    fn sweep_endpoints_equal_summa() {
        let params = ModelParams::bluegene_p();
        let sweep = sweep_groups(
            &params,
            BcastModel::VanDeGeijn,
            65536.0,
            16384.0,
            256.0,
            &[1.0, 16384.0],
        );
        for pt in sweep {
            let d = (pt.hsumma.comm() - pt.summa.comm()).abs();
            assert!(d < 1e-9 * pt.summa.comm(), "G={} differs from SUMMA", pt.g);
        }
    }

    #[test]
    fn exascale_sweep_is_u_shaped_with_interior_minimum() {
        // Fig. 10: p = 2^20, n = 2^22, b = 256, vdG broadcast.
        let params = ModelParams::exascale();
        let p = (1u64 << 20) as f64;
        let n = (1u64 << 22) as f64;
        let sweep = sweep_groups(
            &params,
            BcastModel::VanDeGeijn,
            n,
            p,
            256.0,
            &power_of_two_gs(p),
        );
        let best = best_point(&sweep);
        let at_g1 = sweep[0].hsumma.comm();
        assert!(
            best.g > 1.0 && best.g < p,
            "best G={} should be interior",
            best.g
        );
        assert!(best.hsumma.comm() < at_g1, "interior must beat G=1");
        // Best G should be the power of two nearest √p = 1024.
        assert_eq!(best.g, 1024.0);
    }

    #[test]
    fn bluegene_sweep_predicts_interior_win() {
        // With the paper's own (α, β) the contention-free model predicts
        // a real but modest interior win (~1.2×). The measured 5.89× on
        // the physical BG/P additionally reflects network effects the
        // ideal model excludes by assumption (§IV-C "no contention"); the
        // congested-broadcast simulation profile covers that regime (see
        // EXPERIMENTS.md). Here we assert what the model actually claims:
        // an interior optimum strictly better than SUMMA.
        let params = ModelParams::bluegene_p();
        let p = 16384.0;
        let sweep = sweep_groups(
            &params,
            BcastModel::VanDeGeijn,
            65536.0,
            p,
            256.0,
            &power_of_two_gs(p),
        );
        let best = best_point(&sweep);
        let ratio = best.summa.comm() / best.hsumma.comm();
        assert!(
            best.g > 1.0 && best.g < p,
            "optimum must be interior, got G={}",
            best.g
        );
        assert!(ratio > 1.1, "predicted win should be real, got {ratio:.3}×");
    }

    #[test]
    fn best_point_picks_minimum_comm() {
        let params = ModelParams::grid5000();
        let sweep = sweep_groups(
            &params,
            BcastModel::Binomial,
            8192.0,
            128.0,
            64.0,
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
        );
        let best = best_point(&sweep);
        for pt in &sweep {
            assert!(pt.hsumma.comm() >= best.hsumma.comm() - 1e-15);
        }
    }
}
