//! Closed-form cost model for the COSMA-style brick schedule
//! (`hsumma-core::cosma`), after Kwasniewski et al.,
//! *"Red-Blue Pebbling Revisited: Near Optimal Parallel Matrix-Matrix
//! Multiplication"* (SC'19, arXiv:1908.09606).
//!
//! The schedule decomposes the `m × n × k` iteration cube into
//! `a × b × c` bricks, one per active rank. Per DFS step it broadcasts
//! an A k-slice over each `b`-rank j-fiber and a B k-slice over each
//! `a`-rank i-fiber, multiplies locally, and — when `c > 1` — combines
//! the layered partial C bricks with a ring reduce-scatter followed by a
//! gather onto the fiber root. The model here prices exactly that
//! schedule's critical path and its total wire volume, continuously in
//! `(m, n, k)` like the rest of this crate.
//!
//! Two entry points matter to callers:
//!
//! * [`cosma_volume`] — *exact* total wire bytes for any broadcast whose
//!   relays forward the full payload (binomial, binary, flat, ring,
//!   pipelined — everything but scatter/allgather). The per-fiber sums
//!   telescope, so the answer is independent of the step count and of
//!   how unevenly the bricks divide: `(b−1)·mk + (a−1)·kn` elements for
//!   the operand broadcasts, plus `(c−1)·mn` for the reduce-scatter and
//!   `(c−1)/c·mn` for the gather when `c > 1`. The simulator's measured
//!   byte counter must match this to within chunking round-off — the
//!   model-vs-sim acceptance check of `cosma_bench`.
//! * [`best_brick`] — grid search over `(a, b, c)` and the power-of-two
//!   step counts, minimizing the critical-path total under an optional
//!   per-rank memory budget (elements). The budget bends the shape
//!   toward the cube-balanced decomposition and forces more, smaller
//!   DFS steps (replication itself is memory-lean — a deeper `c`
//!   partitions `k`, shrinking each rank's resident A/B bricks).

use crate::bcast::BcastModel;
use crate::cost::{CostBreakdown, ModelParams};
use crate::ELEM_BYTES;

/// An `(a, b, c)` brick decomposition of the `m × n × k` cube — the
/// model-side mirror of `hsumma-core`'s `BrickDecomp` (this crate stays
/// dependency-free, so it carries its own copy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrickShape {
    /// Bricks along the `m` dimension.
    pub a: usize,
    /// Bricks along the `n` dimension.
    pub b: usize,
    /// Replication layers along the `k` dimension.
    pub c: usize,
}

impl BrickShape {
    /// Active ranks: `a·b·c` (ranks beyond this idle).
    pub fn ranks(&self) -> usize {
        self.a * self.b * self.c
    }
}

/// The winning brick configuration and its predicted cost.
#[derive(Clone, Copy, Debug)]
pub struct BrickAdvice {
    /// The `(a, b, c)` decomposition.
    pub shape: BrickShape,
    /// DFS step count (k-slices per layer).
    pub steps: usize,
    /// Critical-path cost breakdown.
    pub cost: CostBreakdown,
}

/// Exact total wire bytes of the cosma schedule across all ranks, for
/// any full-payload-relay broadcast (see module docs). Counts the A and
/// B fiber broadcasts, and — when `c > 1` — the ring reduce-scatter
/// plus the gather of reduced C fragments onto each fiber root.
pub fn cosma_volume(shape: BrickShape, m: f64, n: f64, k: f64) -> f64 {
    let (a, b, c) = (shape.a as f64, shape.b as f64, shape.c as f64);
    let bcast = (b - 1.0) * m * k + (a - 1.0) * k * n;
    let combine = if shape.c > 1 {
        (c - 1.0) * m * n + (c - 1.0) / c * m * n
    } else {
        0.0
    };
    (bcast + combine) * ELEM_BYTES
}

/// Per-rank working-set bound for the schedule, in elements: resident
/// A and B bricks (`m/a·k/c + k/c·n/b` — the fiber roots hold both),
/// the partial and gathered C bricks (`2·m/a·n/b`), and the two
/// broadcast panels of one DFS step (`(m/a + n/b)·k/(c·steps)`).
pub fn cosma_footprint_elems(shape: BrickShape, m: f64, n: f64, k: f64, steps: usize) -> f64 {
    let ma = m / shape.a as f64;
    let nb = n / shape.b as f64;
    let kc = k / shape.c as f64;
    let kw = kc / steps as f64;
    ma * kc + kc * nb + 2.0 * ma * nb + (ma + nb) * kw
}

/// Critical-path cost of the cosma schedule for one brick shape and
/// step count: per step, an A broadcast over the `b`-rank j-fiber and a
/// B broadcast over the `a`-rank i-fiber (Eq. 1 multipliers); after all
/// steps, when `c > 1`, a `c−1`-step ring reduce-scatter plus a serial
/// gather of `c−1` fragments at the fiber root, each moving
/// `(c−1)/c · m/a·n/b` elements along the critical path.
///
/// At `a = b = √p`, `c = 1`, `steps = k/width` this reduces exactly to
/// [`crate::summa_cost`]'s communication term — SUMMA is the degenerate
/// unreplicated brick schedule (checked in the tests).
///
/// # Panics
/// Panics unless the shape extents and `steps` are positive.
pub fn cosma_cost(
    params: &ModelParams,
    bcast: BcastModel,
    shape: BrickShape,
    m: f64,
    n: f64,
    k: f64,
    steps: usize,
) -> CostBreakdown {
    assert!(
        shape.a >= 1 && shape.b >= 1 && shape.c >= 1 && steps >= 1,
        "brick extents and steps must be positive"
    );
    let (fa, fb, fc) = (shape.a as f64, shape.b as f64, shape.c as f64);
    let (ma, nb, kc) = (m / fa, n / fb, k / fc);
    let s = steps as f64;

    let mut latency = s * (bcast.latency(fb) + bcast.latency(fa)) * params.alpha;
    let mut bandwidth =
        (bcast.bandwidth(fb) * ma * kc + bcast.bandwidth(fa) * kc * nb) * ELEM_BYTES * params.beta;
    if shape.c > 1 {
        // Ring reduce-scatter (c−1 rounds) + serial gather at the root
        // (c−1 receives), each direction moving (c−1)/c of the brick.
        latency += 2.0 * (fc - 1.0) * params.alpha;
        bandwidth += 2.0 * (fc - 1.0) / fc * ma * nb * ELEM_BYTES * params.beta;
    }
    CostBreakdown {
        latency,
        bandwidth,
        compute: params.gamma * ma * nb * kc,
    }
}

/// One-time cost of redistributing checkerboard-distributed operands
/// into brick layouts and the product back (`core::distribution::
/// redistribute`): every rank streams roughly its `1/p` share of all
/// three operands out and the brick share back in, as concurrent
/// point-to-point messages. Charged to cosma by [`crate::advise_gemm`]
/// because the serving layer's input contract is the checkerboard.
pub fn redistribution_cost(params: &ModelParams, p: f64, m: f64, n: f64, k: f64) -> CostBreakdown {
    CostBreakdown {
        // Three redistributions, each about one exchange wave deep.
        latency: 3.0 * p.log2().max(1.0) * params.alpha,
        bandwidth: 2.0 * (m * k + k * n + m * n) / p * ELEM_BYTES * params.beta,
        compute: 0.0,
    }
}

/// Grid search over brick shapes `(a, b, c)` with `a·b·c ≤ p` and
/// power-of-two step counts, minimizing [`cosma_cost`]'s total under an
/// optional per-rank memory budget (elements, [`cosma_footprint_elems`]).
/// Returns `None` only when no candidate fits the budget.
pub fn best_brick(
    params: &ModelParams,
    bcast: BcastModel,
    p: usize,
    m: f64,
    n: f64,
    k: f64,
    mem_elems: Option<f64>,
) -> Option<BrickAdvice> {
    assert!(p >= 1 && m >= 1.0 && n >= 1.0 && k >= 1.0, "invalid domain");
    let mut best: Option<BrickAdvice> = None;
    // Don't cut bricks finer than unit extents: surplus ranks idle.
    let a_max = p.min(m.ceil() as usize);
    for a in 1..=a_max {
        let b_max = (p / a).min(n.ceil() as usize);
        for b in 1..=b_max {
            let c_max = (p / (a * b)).min(k.ceil() as usize);
            for c in 1..=c_max {
                let shape = BrickShape { a, b, c };
                let kc = (k / c as f64).ceil().max(1.0) as usize;
                let mut steps = 1usize;
                loop {
                    let fits = mem_elems
                        .is_none_or(|lim| cosma_footprint_elems(shape, m, n, k, steps) <= lim);
                    if fits {
                        let cost = cosma_cost(params, bcast, shape, m, n, k, steps);
                        if best.is_none_or(|w| cost.total() < w.cost.total()) {
                            best = Some(BrickAdvice { shape, steps, cost });
                        }
                        break;
                    }
                    if steps >= kc {
                        break; // even unit k-slices blow the budget
                    }
                    steps = (steps * 2).min(kc);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::summa_cost;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-12)
    }

    #[test]
    fn square_unreplicated_brick_cost_reduces_to_summa() {
        // a = b = √p, c = 1, steps = n/width: SUMMA is the degenerate
        // brick schedule, so the comm terms must agree exactly.
        let params = ModelParams::bluegene_p();
        let (n, p, width) = (65536.0, 16384.0f64, 256.0);
        let q = p.sqrt() as usize;
        for bcast in [BcastModel::Binomial, BcastModel::VanDeGeijn] {
            let s = summa_cost(&params, bcast, n, p, width);
            let shape = BrickShape { a: q, b: q, c: 1 };
            let c = cosma_cost(&params, bcast, shape, n, n, n, (n / width) as usize);
            assert!(close(s.latency, c.latency), "{bcast:?}");
            assert!(close(s.bandwidth, c.bandwidth), "{bcast:?}");
            assert!(close(s.compute, c.compute), "{bcast:?}");
        }
    }

    #[test]
    fn volume_counts_tree_broadcast_copies_and_combine() {
        let shape = BrickShape { a: 2, b: 4, c: 3 };
        let (m, n, k) = (16.0, 8.0, 12.0);
        let want = ((4.0 - 1.0) * m * k
            + (2.0 - 1.0) * k * n
            + (3.0 - 1.0) * m * n
            + (3.0 - 1.0) / 3.0 * m * n)
            * ELEM_BYTES;
        assert!(close(cosma_volume(shape, m, n, k), want));
        // c = 1: no combine traffic at all.
        let flat = BrickShape { a: 2, b: 4, c: 1 };
        assert!(close(
            cosma_volume(flat, m, n, k),
            (3.0 * m * k + k * n) * ELEM_BYTES
        ));
    }

    #[test]
    fn tall_skinny_search_stretches_a_along_m() {
        // m ≫ n = k: splitting n or k wastes ranks; the cube is a rod
        // along m and the search must slice it that way.
        let params = ModelParams::bluegene_p();
        let got = best_brick(
            &params,
            BcastModel::Binomial,
            64,
            (1u64 << 20) as f64,
            256.0,
            256.0,
            None,
        )
        .expect("unconstrained search always succeeds");
        assert!(
            got.shape.a > got.shape.b && got.shape.a > got.shape.c,
            "expected m-major bricks, got {:?}",
            got.shape
        );
    }

    #[test]
    fn memory_budget_constrains_but_never_improves_the_search() {
        // Bandwidth-bound square problem: unlimited memory buys deep
        // k-replication; a tight per-rank budget steers the search to a
        // different shape/step count that honors the bound — and a
        // constrained optimum can never beat the unconstrained one.
        let params = ModelParams::bluegene_p();
        let (p, n) = (4096usize, 8192.0);
        let rich = best_brick(&params, BcastModel::Binomial, p, n, n, n, None).unwrap();
        assert!(
            rich.shape.c > 1,
            "unlimited memory should replicate: {rich:?}"
        );
        let budget = 1.2e6; // elements: just above the leanest footprint
        let poor = best_brick(&params, BcastModel::Binomial, p, n, n, n, Some(budget))
            .expect("the budget admits near-cubic bricks with more steps");
        assert!(
            cosma_footprint_elems(poor.shape, n, n, n, poor.steps) <= budget,
            "winner must honor the budget: {poor:?}"
        );
        assert!(
            poor.cost.total() >= rich.cost.total(),
            "a constraint can never improve the optimum"
        );
    }

    #[test]
    fn footprint_shrinks_with_more_steps() {
        let shape = BrickShape { a: 8, b: 8, c: 2 };
        let f1 = cosma_footprint_elems(shape, 1024.0, 1024.0, 1024.0, 1);
        let f8 = cosma_footprint_elems(shape, 1024.0, 1024.0, 1024.0, 8);
        assert!(f8 < f1);
    }

    #[test]
    fn search_never_uses_more_ranks_than_given() {
        let params = ModelParams::grid5000();
        for p in [7usize, 12, 64] {
            let got =
                best_brick(&params, BcastModel::Binomial, p, 512.0, 512.0, 512.0, None).unwrap();
            assert!(got.shape.ranks() <= p, "p={p}: {:?}", got.shape);
        }
    }

    #[test]
    fn impossible_budget_returns_none() {
        let params = ModelParams::grid5000();
        assert!(best_brick(
            &params,
            BcastModel::Binomial,
            4,
            64.0,
            64.0,
            64.0,
            Some(1.0)
        )
        .is_none());
    }

    #[test]
    fn redistribution_scales_with_per_rank_share() {
        let params = ModelParams::bluegene_p();
        let r1 = redistribution_cost(&params, 1024.0, 4096.0, 4096.0, 4096.0);
        let r2 = redistribution_cost(&params, 4096.0, 4096.0, 4096.0, 4096.0);
        assert!(r2.bandwidth < r1.bandwidth, "more ranks, smaller shares");
        assert_eq!(r1.compute, 0.0);
    }
}
