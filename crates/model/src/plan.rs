//! Algorithm selection from the closed-form models — the planning half
//! of the serving layer's "model-driven planner".
//!
//! The paper's analysis (§IV) already knows, for a given `(n, p, b)` and
//! platform `(α, β, γ)`, what SUMMA costs and what HSUMMA costs at every
//! group count `G`; COSMA and Demmel et al.'s strong-scaling analysis
//! (see PAPERS.md) make the broader point that the *winning algorithm*
//! depends on the problem regime. [`advise_square`] turns that into a
//! decision procedure: evaluate SUMMA, HSUMMA at its best `G` (seeded by
//! the paper's `G = √p` extremum, Eq. 6), and Cannon's nearest-neighbor
//! schedule, and return the predicted winner with the full scoreboard so
//! callers can log *why* the choice fell where it did.
//!
//! The advice is intentionally coarse — closed-form, contention-free. The
//! serving planner treats it as the first pass and refines HSUMMA's `G`
//! against the timing simulator (`hsumma-core::tuning`), then caches the
//! final plan per shape class.

use crate::bcast::BcastModel;
use crate::cost::{summa_cost, CostBreakdown, ModelParams};
use crate::predict::{best_point, power_of_two_gs, sweep_groups};
use crate::related::cannon_cost;

/// The algorithm a plan selects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlgoChoice {
    /// Plain SUMMA (the `G = 1` degenerate of the hierarchy).
    Summa,
    /// HSUMMA with the predicted-best number of groups.
    Hsumma {
        /// Predicted-optimal group count (a power of two in `[1, p]`).
        g: f64,
    },
    /// Cannon's nearest-neighbor rotation schedule.
    Cannon,
}

/// The scoreboard behind a choice: every candidate's predicted cost.
#[derive(Clone, Copy, Debug)]
pub struct PlanAdvice {
    /// The predicted winner (by communication time, the quantity the
    /// paper optimizes — compute is identical across candidates).
    pub choice: AlgoChoice,
    /// The winner's predicted cost.
    pub predicted: CostBreakdown,
    /// SUMMA's predicted cost.
    pub summa: CostBreakdown,
    /// HSUMMA's predicted-best `(G, cost)` over power-of-two group counts.
    pub hsumma: (f64, CostBreakdown),
    /// Cannon's predicted cost — `None` when `√p` is not integral (Cannon
    /// requires a square grid, §I).
    pub cannon: Option<CostBreakdown>,
    /// The winner's predicted time with the double-buffered pivot
    /// pipeline (the §VI overlap term): `α·log + max(β·bytes, γ·flops)`
    /// instead of the blocking sum. Always ≤ `predicted.total()`; the
    /// gap is [`CostBreakdown::overlap_win`].
    pub predicted_pipelined: f64,
}

impl PlanAdvice {
    /// Fraction of the winner's blocking time the pipeline hides:
    /// `1 − pipelined/total`. Zero when the schedule is pure latency.
    pub fn overlap_win_fraction(&self) -> f64 {
        let total = self.predicted.total();
        if total <= 0.0 {
            0.0
        } else {
            1.0 - self.predicted_pipelined / total
        }
    }
}

/// Picks the predicted-cheapest algorithm for a square `n × n` multiply
/// on `p` ranks with panel width `b`, comparing communication cost (the
/// compute term is identical for all three candidates).
///
/// HSUMMA candidates are the power-of-two group counts of Fig. 8 — the
/// set always contains `G = 1` (= SUMMA) and brackets the paper's `√p`
/// extremum — evaluated at `b = B` as in all the paper's experiments.
///
/// # Panics
/// Panics unless `p ≥ 1` and `n ≥ b ≥ 1` (the cost models' domain).
pub fn advise_square(
    params: &ModelParams,
    bcast: BcastModel,
    n: f64,
    p: f64,
    b: f64,
) -> PlanAdvice {
    let summa = summa_cost(params, bcast, n, p, b);
    let sweep = sweep_groups(params, bcast, n, p, b, &power_of_two_gs(p));
    let best_h = best_point(&sweep);

    let q = p.sqrt();
    let square = (q.round() - q).abs() < 1e-9;
    let cannon = if square {
        Some(cannon_cost(params, n, p))
    } else {
        None
    };

    let mut choice = AlgoChoice::Summa;
    let mut predicted = summa;
    if best_h.hsumma.comm() < predicted.comm() {
        choice = AlgoChoice::Hsumma { g: best_h.g };
        predicted = best_h.hsumma;
    }
    // Cannon is only credible where its α term dominates: its bandwidth
    // term assumes all 2(√p+1) ring shifts proceed contention-free in
    // lockstep, which no hierarchical network honors (the paper's §I
    // premise). Latency-bound problems are where its √p-message schedule
    // beats log-depth collectives for certain.
    if let Some(c) = cannon {
        if c.latency >= c.bandwidth && c.comm() < predicted.comm() {
            choice = AlgoChoice::Cannon;
            predicted = c;
        }
    }
    PlanAdvice {
        choice,
        predicted,
        summa,
        hsumma: (best_h.g, best_h.hsumma),
        cannon,
        predicted_pipelined: predicted.pipelined(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exascale_regime_prefers_hierarchical_grouping() {
        // Fig. 10's regime: the interior G minimum is real, so the advice
        // must be HSUMMA at the √p-adjacent grouping.
        let params = ModelParams::exascale();
        let p = (1u64 << 20) as f64;
        let advice = advise_square(
            &params,
            BcastModel::VanDeGeijn,
            (1u64 << 22) as f64,
            p,
            256.0,
        );
        match advice.choice {
            AlgoChoice::Hsumma { g } => assert_eq!(g, 1024.0, "√p extremum"),
            other => panic!("expected HSUMMA, got {other:?}"),
        }
        assert!(advice.predicted.comm() < advice.summa.comm());
    }

    #[test]
    fn tiny_latency_bound_problems_prefer_cannon() {
        // Small p, small n, huge α: log-depth collectives cost more than
        // √p nearest-neighbor hops.
        let params = ModelParams {
            alpha: 1e-2,
            beta: 1e-12,
            gamma: 0.0,
        };
        let advice = advise_square(&params, BcastModel::Binomial, 256.0, 16.0, 16.0);
        assert_eq!(advice.choice, AlgoChoice::Cannon);
        let cannon = advice.cannon.expect("square grid");
        assert!(cannon.comm() < advice.summa.comm());
    }

    #[test]
    fn non_square_p_never_advises_cannon() {
        let params = ModelParams::grid5000();
        let advice = advise_square(&params, BcastModel::Binomial, 1024.0, 8.0, 32.0);
        assert!(advice.cannon.is_none());
        assert_ne!(advice.choice, AlgoChoice::Cannon);
    }

    #[test]
    fn advice_always_at_least_ties_summa() {
        // G = 1 is in every sweep, so the winner can never lose to SUMMA.
        for (n, p, b) in [(1024.0, 64.0, 32.0), (8192.0, 128.0, 64.0)] {
            let advice = advise_square(&ModelParams::grid5000(), BcastModel::Binomial, n, p, b);
            assert!(advice.predicted.comm() <= advice.summa.comm() + 1e-15);
        }
    }

    #[test]
    fn scoreboard_is_consistent_with_choice() {
        let params = ModelParams::bluegene_p();
        let advice = advise_square(&params, BcastModel::VanDeGeijn, 65536.0, 16384.0, 256.0);
        // The winner is the min over the *eligible* candidates: Cannon
        // only competes when its own cost is latency-bound.
        let best = [
            Some(advice.summa.comm()),
            Some(advice.hsumma.1.comm()),
            advice
                .cannon
                .filter(|c| c.latency >= c.bandwidth)
                .map(|c| c.comm()),
        ]
        .into_iter()
        .flatten()
        .fold(f64::INFINITY, f64::min);
        assert!((advice.predicted.comm() - best).abs() <= 1e-12 * best);
    }

    #[test]
    fn overlap_term_is_the_pipelined_cost_of_the_winner() {
        let params = ModelParams::bluegene_p();
        let advice = advise_square(&params, BcastModel::VanDeGeijn, 65536.0, 16384.0, 256.0);
        assert_eq!(advice.predicted_pipelined, advice.predicted.pipelined());
        assert!(advice.predicted_pipelined <= advice.predicted.total());
        let f = advice.overlap_win_fraction();
        assert!((0.0..1.0).contains(&f), "hid {f} of the blocking time");
    }

    #[test]
    fn cannon_candidate_uses_related_work_model() {
        let params = ModelParams::grid5000();
        let advice = advise_square(&params, BcastModel::Binomial, 1024.0, 16.0, 32.0);
        let expected = cannon_cost(&params, 1024.0, 16.0);
        let got = advice.cannon.expect("square grid");
        assert_eq!(got.comm(), expected.comm());
    }
}
