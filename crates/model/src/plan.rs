//! Algorithm selection from the closed-form models — the planning half
//! of the serving layer's "model-driven planner".
//!
//! The paper's analysis (§IV) already knows, for a given `(n, p, b)` and
//! platform `(α, β, γ)`, what SUMMA costs and what HSUMMA costs at every
//! group count `G`; COSMA and Demmel et al.'s strong-scaling analysis
//! (see PAPERS.md) make the broader point that the *winning algorithm*
//! depends on the problem regime. [`advise_gemm`] turns that into a
//! decision procedure for a general `C(m×n) = A(m×k)·B(k×n)`: evaluate
//! SUMMA, HSUMMA at its best `G` (seeded by the paper's `G = √p`
//! extremum, Eq. 6), Cannon's nearest-neighbor schedule (square shapes
//! only), and the COSMA-style brick schedule at its best power-of-two
//! `(a, b, c)` decomposition, and return the predicted winner with the
//! full scoreboard so callers can log *why* the choice fell where it
//! did. [`advise_square`] is the historical square entry point, now a
//! thin `advise_gemm(n, n, n, …)` shim.
//!
//! COSMA's candidate is priced *including* the one-time cost of
//! redistributing checkerboard-distributed operands into brick layouts
//! and back ([`crate::cosma::redistribution_cost`]) — the serving
//! layer's input contract is the checkerboard, so that toll is part of
//! choosing the brick schedule, and it keeps the comparison honest on
//! problems where cosma's schedule advantage is thin.
//!
//! The advice is intentionally coarse — closed-form, contention-free. The
//! serving planner treats it as the first pass and refines HSUMMA's `G`
//! against the timing simulator (`hsumma-core::tuning`), then caches the
//! final plan per shape class.

use crate::bcast::BcastModel;
use crate::cosma::{cosma_cost, redistribution_cost, BrickAdvice, BrickShape};
use crate::cost::{hsumma_gemm_cost, summa_gemm_cost, CostBreakdown, ModelParams};
use crate::predict::power_of_two_gs;
use crate::related::cannon_cost;

/// The algorithm a plan selects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlgoChoice {
    /// Plain SUMMA (the `G = 1` degenerate of the hierarchy).
    Summa,
    /// HSUMMA with the predicted-best number of groups.
    Hsumma {
        /// Predicted-optimal group count (a power of two in `[1, p]`).
        g: f64,
    },
    /// Cannon's nearest-neighbor rotation schedule.
    Cannon,
    /// The COSMA-style brick schedule at the given decomposition.
    Cosma {
        /// Predicted-best `(a, b, c)` brick decomposition.
        shape: BrickShape,
    },
}

/// The scoreboard behind a choice: every candidate's predicted cost.
#[derive(Clone, Copy, Debug)]
pub struct PlanAdvice {
    /// The predicted winner (by communication time, the quantity the
    /// paper optimizes — compute is identical across candidates).
    pub choice: AlgoChoice,
    /// The winner's predicted cost.
    pub predicted: CostBreakdown,
    /// SUMMA's predicted cost.
    pub summa: CostBreakdown,
    /// HSUMMA's predicted-best `(G, cost)` over power-of-two group counts.
    pub hsumma: (f64, CostBreakdown),
    /// Cannon's predicted cost — `None` when the problem is not square
    /// or `√p` is not integral (Cannon requires both, §I).
    pub cannon: Option<CostBreakdown>,
    /// COSMA's predicted-best brick configuration. Its cost *includes*
    /// the checkerboard→brick redistribution toll, so it is directly
    /// comparable with the grid algorithms' entries above.
    pub cosma: Option<BrickAdvice>,
    /// The winner's predicted time with the double-buffered pivot
    /// pipeline (the §VI overlap term): `α·log + max(β·bytes, γ·flops)`
    /// instead of the blocking sum. Always ≤ `predicted.total()`; the
    /// gap is [`CostBreakdown::overlap_win`].
    pub predicted_pipelined: f64,
}

impl PlanAdvice {
    /// Fraction of the winner's blocking time the pipeline hides:
    /// `1 − pipelined/total`. Zero when the schedule is pure latency.
    pub fn overlap_win_fraction(&self) -> f64 {
        let total = self.predicted.total();
        if total <= 0.0 {
            0.0
        } else {
            1.0 - self.predicted_pipelined / total
        }
    }
}

/// Powers of two not exceeding `limit` (always contains 1).
pub(crate) fn pow2s_upto(limit: usize) -> impl Iterator<Item = usize> {
    std::iter::successors(Some(1usize), |v| v.checked_mul(2)).take_while(move |v| *v <= limit)
}

/// COSMA candidate for the advisory: power-of-two `(a, b, c)` bricks
/// (mirroring the power-of-two `G` sweep) at the caller's panel
/// granularity — `steps = ⌈(k/c)/b_width⌉`, so every candidate streams
/// k-slices of the same width the grid algorithms use. The returned
/// cost includes the checkerboard↔brick redistribution toll.
fn best_pow2_brick(
    params: &ModelParams,
    bcast: BcastModel,
    p: usize,
    m: f64,
    n: f64,
    k: f64,
    width: f64,
) -> Option<BrickAdvice> {
    let toll = redistribution_cost(params, p as f64, m, n, k);
    let mut best: Option<BrickAdvice> = None;
    for a in pow2s_upto(p.min(m.ceil() as usize)).collect::<Vec<_>>() {
        for b in pow2s_upto((p / a).min(n.ceil() as usize)).collect::<Vec<_>>() {
            for c in pow2s_upto((p / (a * b)).min(k.ceil() as usize)) {
                let shape = BrickShape { a, b, c };
                let steps = ((k / c as f64) / width).ceil().max(1.0) as usize;
                let sched = cosma_cost(params, bcast, shape, m, n, k, steps);
                let cost = CostBreakdown {
                    latency: sched.latency + toll.latency,
                    bandwidth: sched.bandwidth + toll.bandwidth,
                    compute: sched.compute,
                };
                if best.is_none_or(|w| cost.total() < w.cost.total()) {
                    best = Some(BrickAdvice { shape, steps, cost });
                }
            }
        }
    }
    best
}

/// Picks the predicted-cheapest algorithm for `C(m×n) = A(m×k)·B(k×n)`
/// on `p` ranks with panel width `b`.
///
/// The 2-D grid candidates (SUMMA, HSUMMA, Cannon) all perform the same
/// `m·n·k/p` multiply-add pairs, so they compete on communication time,
/// exactly as the paper's §IV frames it; HSUMMA candidates are the
/// power-of-two group counts of Fig. 8, evaluated at `b = B`. The COSMA
/// brick candidate may idle ranks (its compute term can exceed
/// `m·n·k/p`), so it competes on *total* predicted time, and carries
/// the checkerboard↔brick redistribution toll — see `best_pow2_brick`.
///
/// # Panics
/// Panics unless `p ≥ 1` and `m, n, k ≥ b ≥ 1` (the cost models'
/// domain).
pub fn advise_gemm(
    params: &ModelParams,
    bcast: BcastModel,
    m: f64,
    n: f64,
    k: f64,
    p: f64,
    b: f64,
) -> PlanAdvice {
    let summa = summa_gemm_cost(params, bcast, m, n, k, p, b);
    let mut best_h = (1.0, summa);
    for g in power_of_two_gs(p) {
        let cost = hsumma_gemm_cost(params, bcast, bcast, m, n, k, p, g, b, b);
        if cost.comm() < best_h.1.comm() {
            best_h = (g, cost);
        }
    }

    let q = p.sqrt();
    let square_p = (q.round() - q).abs() < 1e-9;
    let square_shape = m == n && k == n;
    let cannon = if square_p && square_shape {
        Some(cannon_cost(params, n, p))
    } else {
        None
    };
    let cosma = best_pow2_brick(params, bcast, p.round() as usize, m, n, k, b);

    let mut choice = AlgoChoice::Summa;
    let mut predicted = summa;
    if best_h.1.comm() < predicted.comm() {
        choice = AlgoChoice::Hsumma { g: best_h.0 };
        predicted = best_h.1;
    }
    // Cannon is only credible where its α term dominates: its bandwidth
    // term assumes all 2(√p+1) ring shifts proceed contention-free in
    // lockstep, which no hierarchical network honors (the paper's §I
    // premise). Latency-bound problems are where its √p-message schedule
    // beats log-depth collectives for certain.
    if let Some(c) = cannon {
        if c.latency >= c.bandwidth && c.comm() < predicted.comm() {
            choice = AlgoChoice::Cannon;
            predicted = c;
        }
    }
    // COSMA competes on total time (its brick grid may idle ranks, so
    // its compute term is not the shared m·n·k/p of the 2-D grids).
    // Winning on total with compute ≥ m·n·k/p implies winning on comm
    // too, so the scoreboard stays monotone vs SUMMA.
    if let Some(cb) = cosma {
        if cb.cost.total() < predicted.total() {
            choice = AlgoChoice::Cosma { shape: cb.shape };
            predicted = cb.cost;
        }
    }
    PlanAdvice {
        choice,
        predicted,
        summa,
        hsumma: best_h,
        cannon,
        cosma,
        predicted_pipelined: predicted.pipelined(),
    }
}

/// One point on a strong-scaling curve: predicted best-algorithm total
/// time for the problem at a candidate rank count.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Candidate rank count (a power of two).
    pub ranks: usize,
    /// Predicted total seconds of the scoreboard winner at that count.
    pub total: f64,
}

/// Strong-scaling advice: how many ranks a job is actually worth.
#[derive(Clone, Debug)]
pub struct RankAdvice {
    /// Smallest candidate within `tolerance` of the best predicted
    /// total — the job's "perfect-scaling range" endpoint. Giving the
    /// job more ranks than this buys < `tolerance` speedup.
    pub preferred: usize,
    /// The candidate with the outright best predicted total.
    pub best: usize,
    /// The full curve, ascending in rank count.
    pub curve: Vec<ScalePoint>,
}

/// Sweeps power-of-two rank counts in `[1, p_max]` and reports the
/// smallest count whose predicted total is within `tolerance`
/// (fractional, e.g. `0.10`) of the sweep's best.
///
/// This is the Ballard–Demmel strong-scaling observation turned into a
/// packing policy: past its perfect-scaling range a job's communication
/// terms flatten or grow while compute shrinks sublinearly, so the
/// marginal ranks are better spent running another job concurrently.
/// Each candidate is scored by the full [`advise_gemm`] scoreboard, so
/// the curve accounts for algorithm switches along the way (e.g. the
/// winner flipping from SUMMA to HSUMMA as `p` grows).
///
/// # Panics
/// Panics unless `p_max ≥ 1` and `m, n, k ≥ b ≥ 1` (inherited from
/// [`advise_gemm`]).
#[allow(clippy::too_many_arguments)]
pub fn advise_ranks(
    params: &ModelParams,
    bcast: BcastModel,
    m: f64,
    n: f64,
    k: f64,
    p_max: usize,
    b: f64,
    tolerance: f64,
) -> RankAdvice {
    assert!(p_max >= 1, "advise_ranks needs at least one rank");
    let curve: Vec<ScalePoint> = pow2s_upto(p_max)
        .map(|p| ScalePoint {
            ranks: p,
            total: advise_gemm(params, bcast, m, n, k, p as f64, b)
                .predicted
                .total(),
        })
        .collect();
    rank_advice_from_curve(curve, tolerance)
}

/// The advice tail shared with the sparse sweeps: the smallest rank
/// count within `tolerance` of the curve's best predicted total.
pub(crate) fn rank_advice_from_curve(curve: Vec<ScalePoint>, tolerance: f64) -> RankAdvice {
    let best = curve
        .iter()
        .min_by(|a, b| a.total.total_cmp(&b.total))
        .expect("curve has at least one point");
    let cutoff = best.total * (1.0 + tolerance);
    let preferred = curve
        .iter()
        .find(|pt| pt.total <= cutoff)
        .expect("best point itself is within tolerance")
        .ranks;
    let best = best.ranks;
    RankAdvice {
        preferred,
        best,
        curve,
    }
}

/// Square-shape shim over [`advise_gemm`]: the historical entry point
/// for `n × n` multiplies, kept so existing callers read naturally.
pub fn advise_square(
    params: &ModelParams,
    bcast: BcastModel,
    n: f64,
    p: f64,
    b: f64,
) -> PlanAdvice {
    advise_gemm(params, bcast, n, n, n, p, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exascale_regime_prefers_hierarchical_grouping() {
        // Fig. 10's regime: the interior G minimum is real, so on the
        // 2-D scoreboard HSUMMA's best grouping is the √p-adjacent one
        // and it beats SUMMA. The overall winner is the brick schedule
        // — COSMA's near-optimal decomposition out-communicates every
        // 2-D grid here even after the redistribution toll.
        let params = ModelParams::exascale();
        let p = (1u64 << 20) as f64;
        let advice = advise_square(
            &params,
            BcastModel::VanDeGeijn,
            (1u64 << 22) as f64,
            p,
            256.0,
        );
        let (g, hsumma) = advice.hsumma;
        assert_eq!(g, 1024.0, "√p extremum");
        assert!(hsumma.comm() < advice.summa.comm());
        match advice.choice {
            AlgoChoice::Cosma { shape } => {
                assert!(shape.c > 1, "exascale bandwidth regime replicates");
            }
            other => panic!("expected COSMA to displace the 2-D grids, got {other:?}"),
        }
        assert!(advice.predicted.comm() < hsumma.comm());
    }

    #[test]
    fn tiny_latency_bound_problems_prefer_cannon() {
        // Small p, small n, huge α: log-depth collectives cost more than
        // √p nearest-neighbor hops.
        let params = ModelParams {
            alpha: 1e-2,
            beta: 1e-12,
            gamma: 0.0,
        };
        let advice = advise_square(&params, BcastModel::Binomial, 256.0, 16.0, 16.0);
        assert_eq!(advice.choice, AlgoChoice::Cannon);
        let cannon = advice.cannon.expect("square grid");
        assert!(cannon.comm() < advice.summa.comm());
    }

    #[test]
    fn non_square_p_never_advises_cannon() {
        let params = ModelParams::grid5000();
        let advice = advise_square(&params, BcastModel::Binomial, 1024.0, 8.0, 32.0);
        assert!(advice.cannon.is_none());
        assert_ne!(advice.choice, AlgoChoice::Cannon);
    }

    #[test]
    fn advice_always_at_least_ties_summa() {
        // G = 1 is in every sweep, so the winner can never lose to SUMMA.
        for (n, p, b) in [(1024.0, 64.0, 32.0), (8192.0, 128.0, 64.0)] {
            let advice = advise_square(&ModelParams::grid5000(), BcastModel::Binomial, n, p, b);
            assert!(advice.predicted.comm() <= advice.summa.comm() + 1e-15);
        }
    }

    #[test]
    fn scoreboard_is_consistent_with_choice() {
        let params = ModelParams::bluegene_p();
        let advice = advise_square(&params, BcastModel::VanDeGeijn, 65536.0, 16384.0, 256.0);
        // The 2-D winner is the min over the *eligible* candidates:
        // Cannon only competes when its own cost is latency-bound.
        let best_2d = [
            Some(advice.summa.comm()),
            Some(advice.hsumma.1.comm()),
            advice
                .cannon
                .filter(|c| c.latency >= c.bandwidth)
                .map(|c| c.comm()),
        ]
        .into_iter()
        .flatten()
        .fold(f64::INFINITY, f64::min);
        // COSMA displaces them by *total* time; the scoreboard entry
        // must be what the choice points at, and must genuinely win.
        match advice.choice {
            AlgoChoice::Cosma { shape } => {
                let cb = advice.cosma.expect("choice must appear on the scoreboard");
                assert_eq!(shape, cb.shape);
                assert_eq!(advice.predicted.comm(), cb.cost.comm());
                let summa_total = advice.summa.total();
                assert!(cb.cost.total() < summa_total);
                assert!(cb.cost.total() < advice.hsumma.1.total());
            }
            _ => assert!((advice.predicted.comm() - best_2d).abs() <= 1e-12 * best_2d),
        }
    }

    #[test]
    fn overlap_term_is_the_pipelined_cost_of_the_winner() {
        let params = ModelParams::bluegene_p();
        let advice = advise_square(&params, BcastModel::VanDeGeijn, 65536.0, 16384.0, 256.0);
        assert_eq!(advice.predicted_pipelined, advice.predicted.pipelined());
        assert!(advice.predicted_pipelined <= advice.predicted.total());
        let f = advice.overlap_win_fraction();
        assert!((0.0..1.0).contains(&f), "hid {f} of the blocking time");
    }

    #[test]
    fn cannon_candidate_uses_related_work_model() {
        let params = ModelParams::grid5000();
        let advice = advise_square(&params, BcastModel::Binomial, 1024.0, 16.0, 32.0);
        let expected = cannon_cost(&params, 1024.0, 16.0);
        let got = advice.cannon.expect("square grid");
        assert_eq!(got.comm(), expected.comm());
    }

    #[test]
    fn rank_advice_caps_small_jobs_below_the_pool() {
        let params = ModelParams::grid5000();
        // A small job: past its scaling range, extra ranks only add
        // communication. A job 64× bigger in every dimension keeps
        // scaling further.
        let small = advise_ranks(
            &params,
            BcastModel::Binomial,
            128.0,
            128.0,
            128.0,
            64,
            8.0,
            0.1,
        );
        let big = advise_ranks(
            &params,
            BcastModel::Binomial,
            8192.0,
            8192.0,
            8192.0,
            64,
            8.0,
            0.1,
        );
        assert!(small.preferred <= small.best);
        assert!(small.preferred.is_power_of_two());
        assert_eq!(small.curve.len(), 7, "1..=64 powers of two");
        assert!(
            small.preferred < 64,
            "a 128³ job should not be worth the whole 64-rank pool \
             (preferred {})",
            small.preferred
        );
        assert!(
            big.preferred >= small.preferred,
            "bigger problems scale at least as far ({} vs {})",
            big.preferred,
            small.preferred
        );
    }
}
