//! The general broadcast cost model of Eq. (1).
//!
//! `T_bcast(m, p) = L(p)·α + m·W(p)·β`, where `L` and `W` are the latency
//! and bandwidth multipliers of a concrete algorithm. The paper requires
//! `L(1) = W(1) = 0` and monotonicity in `(1, p)` — properties the tests
//! check for every instantiation.

/// A broadcast algorithm's `(L(p), W(p))` multiplier pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BcastModel {
    /// Binomial tree: `L = W = log₂ p`.
    Binomial,
    /// Van de Geijn scatter + ring allgather:
    /// `L = log₂ p + p − 1`, `W = 2(p−1)/p`.
    VanDeGeijn,
    /// Flat tree: `L = W = p − 1`.
    Flat,
    /// Linear chain: `L = W = p − 1`.
    Ring,
    /// Segmented chain with `segments` pieces:
    /// `L = p − 2 + s`, `W = (p − 2 + s)/s`.
    Pipelined {
        /// Number of pipeline segments (≥ 1).
        segments: usize,
    },
    /// Balanced binary tree: `L = W = 2·log₂ p` (two serialized child
    /// sends per level on the critical path).
    Binary,
}

impl BcastModel {
    /// Latency multiplier `L(p)`.
    pub fn latency(&self, p: f64) -> f64 {
        debug_assert!(p >= 1.0);
        match self {
            BcastModel::Binomial => p.log2(),
            BcastModel::VanDeGeijn => p.log2() + p - 1.0,
            BcastModel::Flat | BcastModel::Ring => p - 1.0,
            BcastModel::Pipelined { segments } => {
                if p <= 1.0 {
                    0.0
                } else {
                    p - 2.0 + *segments as f64
                }
            }
            BcastModel::Binary => 2.0 * p.log2(),
        }
    }

    /// Bandwidth multiplier `W(p)`.
    pub fn bandwidth(&self, p: f64) -> f64 {
        debug_assert!(p >= 1.0);
        match self {
            BcastModel::Binomial => p.log2(),
            BcastModel::VanDeGeijn => 2.0 * (p - 1.0) / p,
            BcastModel::Flat | BcastModel::Ring => p - 1.0,
            BcastModel::Pipelined { segments } => {
                if p <= 1.0 {
                    0.0
                } else {
                    (p - 2.0 + *segments as f64) / *segments as f64
                }
            }
            BcastModel::Binary => 2.0 * p.log2(),
        }
    }

    /// Full broadcast time for `m_bytes` among `p` ranks (Eq. 1).
    pub fn time(&self, m_bytes: f64, p: f64, alpha: f64, beta: f64) -> f64 {
        self.latency(p) * alpha + m_bytes * self.bandwidth(p) * beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [BcastModel; 6] = [
        BcastModel::Binomial,
        BcastModel::VanDeGeijn,
        BcastModel::Flat,
        BcastModel::Ring,
        BcastModel::Pipelined { segments: 8 },
        BcastModel::Binary,
    ];

    #[test]
    fn l_and_w_vanish_at_single_rank() {
        // Eq. (1) requires L(1) = W(1) = 0.
        for m in ALL {
            assert_eq!(m.latency(1.0), 0.0, "{m:?}");
            assert_eq!(m.bandwidth(1.0), 0.0, "{m:?}");
        }
    }

    #[test]
    fn l_and_w_monotonically_increase() {
        for m in ALL {
            let mut prev_l = 0.0;
            let mut prev_w = 0.0;
            for p in [2.0, 4.0, 8.0, 64.0, 1024.0] {
                let l = m.latency(p);
                let w = m.bandwidth(p);
                assert!(l >= prev_l, "{m:?} latency not monotone at p={p}");
                assert!(w >= prev_w, "{m:?} bandwidth not monotone at p={p}");
                prev_l = l;
                prev_w = w;
            }
        }
    }

    #[test]
    fn binomial_matches_paper_formula() {
        // log2(p) × (α + mβ)
        let t = BcastModel::Binomial.time(1000.0, 8.0, 1e-4, 1e-9);
        let want = 3.0 * (1e-4 + 1000.0 * 1e-9);
        assert!((t - want).abs() < 1e-15);
    }

    #[test]
    fn van_de_geijn_matches_paper_formula() {
        // (log2(p) + p − 1)α + 2(p−1)/p·mβ
        let (m, p, a, b) = (1e6, 16.0, 1e-4, 1e-9);
        let t = BcastModel::VanDeGeijn.time(m, p, a, b);
        let want = (4.0 + 15.0) * a + 2.0 * 15.0 / 16.0 * m * b;
        assert!((t - want).abs() < 1e-12);
    }

    #[test]
    fn van_de_geijn_bandwidth_approaches_two() {
        assert!(BcastModel::VanDeGeijn.bandwidth(1e6) < 2.0);
        assert!(BcastModel::VanDeGeijn.bandwidth(1e6) > 1.999);
    }

    #[test]
    fn crossover_binomial_vs_vdg() {
        // Short messages: binomial wins. Long: van de Geijn wins.
        let (a, b, p) = (1e-4, 1e-9, 64.0);
        assert!(
            BcastModel::Binomial.time(100.0, p, a, b) < BcastModel::VanDeGeijn.time(100.0, p, a, b)
        );
        assert!(
            BcastModel::VanDeGeijn.time(1e8, p, a, b) < BcastModel::Binomial.time(1e8, p, a, b)
        );
    }

    #[test]
    fn pipelined_more_segments_trade_latency_for_bandwidth() {
        let few = BcastModel::Pipelined { segments: 2 };
        let many = BcastModel::Pipelined { segments: 64 };
        let p = 16.0;
        assert!(few.latency(p) < many.latency(p));
        assert!(many.bandwidth(p) < few.bandwidth(p));
    }
}
