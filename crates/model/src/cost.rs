//! SUMMA and HSUMMA cost breakdowns — Tables I & II, Eqs. (2)–(5).
//!
//! Both algorithms on a square `√p × √p` grid with square `n × n`
//! operands. Every processor broadcasts panels of `n/√p` rows (or
//! columns) by `b` block width; per step A travels along grid rows and B
//! along grid columns, so the per-direction costs are doubled.

use crate::bcast::BcastModel;
use crate::ELEM_BYTES;

/// Platform parameters for the analytic model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Latency in seconds.
    pub alpha: f64,
    /// Reciprocal bandwidth in seconds per byte.
    pub beta: f64,
    /// Seconds per fused multiply-add pair per core.
    pub gamma: f64,
}

impl ModelParams {
    /// Grid5000/Graphene parameters (§V-A.1). The paper's `β = 1e-9` is
    /// per matrix element; stored here per byte.
    pub fn grid5000() -> Self {
        ModelParams {
            alpha: 1e-4,
            beta: 1e-9 / crate::ELEM_BYTES,
            gamma: 4e-10,
        }
    }

    /// BlueGene/P parameters (§V-B.1), `β` per byte as above; γ calibrated
    /// as in `hsumma_netsim::Platform::bluegene_p`.
    pub fn bluegene_p() -> Self {
        ModelParams {
            alpha: 3e-6,
            beta: 1e-9 / crate::ELEM_BYTES,
            gamma: 8e-10,
        }
    }

    /// Exascale roadmap parameters (§V-C).
    pub fn exascale() -> Self {
        ModelParams {
            alpha: 500e-9,
            beta: 1e-11,
            gamma: 2.1e-12,
        }
    }
}

/// Latency/bandwidth/compute decomposition of a predicted run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    /// Total latency (`α`) term, seconds.
    pub latency: f64,
    /// Total bandwidth (`β`) term, seconds.
    pub bandwidth: f64,
    /// Computation (`γ`) term, seconds.
    pub compute: f64,
}

impl CostBreakdown {
    /// Communication time (latency + bandwidth).
    pub fn comm(&self) -> f64 {
        self.latency + self.bandwidth
    }

    /// Total predicted execution time.
    pub fn total(&self) -> f64 {
        self.latency + self.bandwidth + self.compute
    }

    /// Predicted execution time when panel transfers are pipelined
    /// behind the multiply (the §VI overlap, realized by the
    /// double-buffered `summa_overlap`/`hsumma_overlap` pipeline): the
    /// latency term stays serial — every step still pays its `α·log`
    /// startup before the first byte moves — but the bandwidth term
    /// streams concurrently with compute, so only the larger of the two
    /// is exposed: `α-term + max(β-term, γ-term)`.
    pub fn pipelined(&self) -> f64 {
        self.latency + self.bandwidth.max(self.compute)
    }

    /// Time the pipeline hides relative to the blocking schedule:
    /// `total − pipelined = min(β-term, γ-term)`.
    pub fn overlap_win(&self) -> f64 {
        self.total() - self.pipelined()
    }
}

/// Per-processor compute time: `n³/p` multiply-add pairs (the paper's
/// "2n³/p" flop count) at `γ` seconds per pair.
fn compute_time(params: &ModelParams, n: f64, p: f64) -> f64 {
    params.gamma * n * n * n / p
}

/// SUMMA predicted cost (Eq. 2 / Tables I–II): `n/b` steps, each
/// broadcasting a panel of `n·b/√p` elements along rows (A) and columns
/// (B) over `√p` ranks.
///
/// ```
/// use hsumma_model::{summa_cost, hsumma_cost, BcastModel, ModelParams};
///
/// let params = ModelParams::bluegene_p();
/// let summa = summa_cost(&params, BcastModel::VanDeGeijn, 65536.0, 16384.0, 256.0);
/// let hsumma = hsumma_cost(
///     &params, BcastModel::VanDeGeijn, BcastModel::VanDeGeijn,
///     65536.0, 16384.0, 128.0, 256.0, 256.0,
/// );
/// // The paper's claim: grouping reduces the communication cost.
/// assert!(hsumma.comm() < summa.comm());
/// ```
///
/// # Panics
/// Panics unless `p ≥ 1`, `n ≥ b ≥ 1`.
pub fn summa_cost(
    params: &ModelParams,
    bcast: BcastModel,
    n: f64,
    p: f64,
    b: f64,
) -> CostBreakdown {
    assert!(p >= 1.0 && n >= b && b >= 1.0, "invalid SUMMA parameters");
    let q = p.sqrt();
    let steps = n / b;
    let panel_bytes = n * b / q * ELEM_BYTES;
    // Factor 2: A's row broadcast plus B's column broadcast each step.
    let latency = 2.0 * steps * bcast.latency(q) * params.alpha;
    let bandwidth = 2.0 * steps * panel_bytes * bcast.bandwidth(q) * params.beta;
    CostBreakdown {
        latency,
        bandwidth,
        compute: compute_time(params, n, p),
    }
}

/// HSUMMA predicted cost (Eqs. 3–5 / Tables I–II): `√G × √G` groups,
/// outer block `bb` (the paper's `B`), inner block `bs` (`b`).
///
/// * outer phase: `n/B` steps of broadcasts over the `√G` groups;
/// * inner phase: `n/b` steps of broadcasts over the `√p/√G` ranks of a
///   group row/column.
///
/// # Panics
/// Panics unless `1 ≤ G ≤ p` and `bs ≤ bb`.
#[allow(clippy::too_many_arguments)]
pub fn hsumma_cost(
    params: &ModelParams,
    outer_bcast: BcastModel,
    inner_bcast: BcastModel,
    n: f64,
    p: f64,
    g: f64,
    bb: f64,
    bs: f64,
) -> CostBreakdown {
    assert!((1.0..=p).contains(&g), "G must lie in [1, p]");
    assert!(bs >= 1.0 && bs <= bb && bb <= n, "invalid block sizes");
    let q = p.sqrt();
    let qg = g.sqrt(); // ranks per inter-group broadcast (√G)
    let qi = q / qg; //   ranks per intra-group broadcast (√p/√G)

    let outer_steps = n / bb;
    let inner_steps = n / bs; // n/B outer × B/b inner
    let outer_bytes = n * bb / q * ELEM_BYTES;
    let inner_bytes = n * bs / q * ELEM_BYTES;

    let latency = 2.0
        * (outer_steps * outer_bcast.latency(qg) + inner_steps * inner_bcast.latency(qi))
        * params.alpha;
    let bandwidth = 2.0
        * (outer_steps * outer_bytes * outer_bcast.bandwidth(qg)
            + inner_steps * inner_bytes * inner_bcast.bandwidth(qi))
        * params.beta;
    CostBreakdown {
        latency,
        bandwidth,
        compute: compute_time(params, n, p),
    }
}

/// SUMMA predicted cost for a rectangular `C(m×n) = A(m×k)·B(k×n)`
/// multiply on a square `√p × √p` grid: `k/b` panel steps, each
/// broadcasting `m/√p × b` of A along grid rows and `b × n/√p` of B
/// along grid columns. Reduces exactly to [`summa_cost`] when
/// `m = n = k` (checked in the tests).
///
/// # Panics
/// Panics unless `p ≥ 1` and `m, n, k ≥ b ≥ 1`.
pub fn summa_gemm_cost(
    params: &ModelParams,
    bcast: BcastModel,
    m: f64,
    n: f64,
    k: f64,
    p: f64,
    b: f64,
) -> CostBreakdown {
    assert!(
        p >= 1.0 && b >= 1.0 && m >= b && n >= b && k >= b,
        "invalid SUMMA parameters"
    );
    let q = p.sqrt();
    let steps = k / b;
    let panel_bytes = (m + n) / q * b * ELEM_BYTES; // A row-panel + B col-panel
    CostBreakdown {
        latency: 2.0 * steps * bcast.latency(q) * params.alpha,
        bandwidth: steps * panel_bytes * bcast.bandwidth(q) * params.beta,
        compute: params.gamma * m * n * k / p,
    }
}

/// HSUMMA predicted cost for a rectangular `C(m×n) = A(m×k)·B(k×n)`
/// multiply: the two-level grouping of [`hsumma_cost`] with `k/bb`
/// outer and `k/bs` inner steps over the contraction dimension.
/// Reduces exactly to [`hsumma_cost`] when `m = n = k`.
///
/// # Panics
/// Panics unless `1 ≤ G ≤ p` and `bs ≤ bb ≤ k`.
#[allow(clippy::too_many_arguments)]
pub fn hsumma_gemm_cost(
    params: &ModelParams,
    outer_bcast: BcastModel,
    inner_bcast: BcastModel,
    m: f64,
    n: f64,
    k: f64,
    p: f64,
    g: f64,
    bb: f64,
    bs: f64,
) -> CostBreakdown {
    assert!((1.0..=p).contains(&g), "G must lie in [1, p]");
    assert!(bs >= 1.0 && bs <= bb && bb <= k, "invalid block sizes");
    let q = p.sqrt();
    let qg = g.sqrt();
    let qi = q / qg;

    let outer_steps = k / bb;
    let inner_steps = k / bs;
    let outer_bytes = (m + n) / q * bb * ELEM_BYTES;
    let inner_bytes = (m + n) / q * bs * ELEM_BYTES;

    CostBreakdown {
        latency: 2.0
            * (outer_steps * outer_bcast.latency(qg) + inner_steps * inner_bcast.latency(qi))
            * params.alpha,
        bandwidth: (outer_steps * outer_bytes * outer_bcast.bandwidth(qg)
            + inner_steps * inner_bytes * inner_bcast.bandwidth(qi))
            * params.beta,
        compute: params.gamma * m * n * k / p,
    }
}

/// The optimal-configuration row of Table II: HSUMMA with van de Geijn
/// broadcast at `G = √p`, `b = B`:
/// `(log₂p + 4(p^¼ − 1))·(n/b)·α + 8(1 − 1/p^¼)·(n²/√p)·β` (Eq. 12).
pub fn hsumma_vdg_optimal_cost(params: &ModelParams, n: f64, p: f64, b: f64) -> CostBreakdown {
    let q4 = p.powf(0.25);
    let latency = (p.log2() + 4.0 * (q4 - 1.0)) * (n / b) * params.alpha;
    let bandwidth = 8.0 * (1.0 - 1.0 / q4) * (n * n / p.sqrt()) * ELEM_BYTES * params.beta;
    CostBreakdown {
        latency,
        bandwidth,
        compute: compute_time(params, n, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-12)
    }

    #[test]
    fn summa_binomial_matches_table_one() {
        // Table I: latency log2(p)·n/b·α, bandwidth log2(p)·n²/√p·β.
        let params = ModelParams {
            alpha: 1e-4,
            beta: 1e-9,
            gamma: 0.0,
        };
        let (n, p, b) = (8192.0, 128.0f64, 64.0);
        let c = summa_cost(&params, BcastModel::Binomial, n, p, b);
        let want_lat = p.log2() * (n / b) * params.alpha;
        let want_bw = p.log2() * (n * n / p.sqrt()) * ELEM_BYTES * params.beta;
        assert!(
            close(c.latency, want_lat),
            "lat {} vs {want_lat}",
            c.latency
        );
        assert!(
            close(c.bandwidth, want_bw),
            "bw {} vs {want_bw}",
            c.bandwidth
        );
    }

    #[test]
    fn summa_vdg_matches_table_two() {
        // Table II: (log2(p) + 2(√p−1))·n/b·α + 4(1−1/√p)·n²/√p·β.
        let params = ModelParams {
            alpha: 3e-6,
            beta: 1e-9,
            gamma: 0.0,
        };
        let (n, p, b) = (65536.0, 16384.0f64, 256.0);
        let c = summa_cost(&params, BcastModel::VanDeGeijn, n, p, b);
        let q = p.sqrt();
        let want_lat = (p.log2() + 2.0 * (q - 1.0)) * (n / b) * params.alpha;
        let want_bw = 4.0 * (1.0 - 1.0 / q) * (n * n / q) * ELEM_BYTES * params.beta;
        assert!(close(c.latency, want_lat));
        assert!(close(c.bandwidth, want_bw));
    }

    #[test]
    fn hsumma_binomial_matches_table_one() {
        // Table I HSUMMA row with b = B:
        // latency (log2(p/G)+log2(G))·n/b·α, bandwidth same multiplier.
        let params = ModelParams {
            alpha: 1e-4,
            beta: 1e-9,
            gamma: 0.0,
        };
        let (n, p, g, b) = (8192.0, 16384.0f64, 64.0f64, 64.0);
        let c = hsumma_cost(
            &params,
            BcastModel::Binomial,
            BcastModel::Binomial,
            n,
            p,
            g,
            b,
            b,
        );
        let want_lat = ((p / g).log2() + g.log2()) * (n / b) * params.alpha;
        let want_bw = ((p / g).log2() + g.log2()) * (n * n / p.sqrt()) * ELEM_BYTES * params.beta;
        assert!(
            close(c.latency, want_lat),
            "lat {} vs {want_lat}",
            c.latency
        );
        assert!(close(c.bandwidth, want_bw));
    }

    #[test]
    fn hsumma_binomial_g_equal_one_reduces_to_summa() {
        let params = ModelParams::grid5000();
        let (n, p, b) = (8192.0, 128.0, 64.0);
        let s = summa_cost(&params, BcastModel::Binomial, n, p, b);
        let h = hsumma_cost(
            &params,
            BcastModel::Binomial,
            BcastModel::Binomial,
            n,
            p,
            1.0,
            b,
            b,
        );
        assert!(close(s.latency, h.latency));
        assert!(close(s.bandwidth, h.bandwidth));
        assert!(close(s.compute, h.compute));
    }

    #[test]
    fn hsumma_g_equal_p_reduces_to_summa_for_all_models() {
        let params = ModelParams::bluegene_p();
        let (n, p, b) = (65536.0, 16384.0, 256.0);
        for m in [
            BcastModel::Binomial,
            BcastModel::VanDeGeijn,
            BcastModel::Flat,
        ] {
            let s = summa_cost(&params, m, n, p, b);
            let h = hsumma_cost(&params, m, m, n, p, p, b, b);
            assert!(close(s.latency, h.latency), "{m:?}");
            assert!(close(s.bandwidth, h.bandwidth), "{m:?}");
        }
    }

    #[test]
    fn optimal_row_matches_eq_12() {
        // Eq. 12 must equal the general HSUMMA vdG cost at G = √p, b = B.
        let params = ModelParams::bluegene_p();
        let (n, p, b) = (65536.0, 16384.0f64, 256.0);
        let general = hsumma_cost(
            &params,
            BcastModel::VanDeGeijn,
            BcastModel::VanDeGeijn,
            n,
            p,
            p.sqrt(),
            b,
            b,
        );
        let special = hsumma_vdg_optimal_cost(&params, n, p, b);
        assert!(close(general.latency, special.latency));
        assert!(close(general.bandwidth, special.bandwidth));
    }

    #[test]
    fn compute_term_is_group_independent() {
        let params = ModelParams::bluegene_p();
        let (n, p, b) = (65536.0, 16384.0, 256.0);
        let c1 = hsumma_cost(
            &params,
            BcastModel::Binomial,
            BcastModel::Binomial,
            n,
            p,
            4.0,
            b,
            b,
        );
        let c2 = hsumma_cost(
            &params,
            BcastModel::Binomial,
            BcastModel::Binomial,
            n,
            p,
            512.0,
            b,
            b,
        );
        assert_eq!(c1.compute, c2.compute);
        assert!(close(c1.compute, params.gamma * n * n * n / p));
    }

    #[test]
    fn hsumma_at_sqrt_p_beats_summa_on_bluegene() {
        // The headline claim, in the model: with vdG and BG/P parameters
        // the G = √p configuration has lower communication cost.
        let params = ModelParams::bluegene_p();
        let (n, p, b) = (65536.0, 16384.0f64, 256.0);
        let s = summa_cost(&params, BcastModel::VanDeGeijn, n, p, b);
        let h = hsumma_vdg_optimal_cost(&params, n, p, b);
        assert!(
            h.comm() < s.comm(),
            "HSUMMA {} should beat SUMMA {}",
            h.comm(),
            s.comm()
        );
    }

    #[test]
    fn breakdown_total_sums_parts() {
        let c = CostBreakdown {
            latency: 1.0,
            bandwidth: 2.0,
            compute: 4.0,
        };
        assert_eq!(c.comm(), 3.0);
        assert_eq!(c.total(), 7.0);
    }

    #[test]
    fn pipelined_exposes_max_of_bandwidth_and_compute() {
        // Compute-bound: the bandwidth term hides entirely.
        let c = CostBreakdown {
            latency: 1.0,
            bandwidth: 2.0,
            compute: 4.0,
        };
        assert_eq!(c.pipelined(), 5.0);
        assert_eq!(c.overlap_win(), 2.0);
        // Bandwidth-bound: the compute hides instead.
        let c = CostBreakdown {
            latency: 1.0,
            bandwidth: 6.0,
            compute: 4.0,
        };
        assert_eq!(c.pipelined(), 7.0);
        assert_eq!(c.overlap_win(), 4.0);
        // Pipelining never loses, and latency is never hidden.
        assert!(c.pipelined() <= c.total());
        assert!(c.pipelined() >= c.latency);
    }

    #[test]
    fn rect_summa_reduces_to_square_form() {
        let params = ModelParams::bluegene_p();
        let (n, p, b) = (65536.0, 16384.0, 256.0);
        for m in [BcastModel::Binomial, BcastModel::VanDeGeijn] {
            let sq = summa_cost(&params, m, n, p, b);
            let rect = summa_gemm_cost(&params, m, n, n, n, p, b);
            assert!(close(sq.latency, rect.latency), "{m:?}");
            assert!(close(sq.bandwidth, rect.bandwidth), "{m:?}");
            assert!(close(sq.compute, rect.compute), "{m:?}");
        }
    }

    #[test]
    fn rect_hsumma_reduces_to_square_form() {
        let params = ModelParams::bluegene_p();
        let (n, p, g, bb, bs) = (65536.0, 16384.0, 128.0, 256.0, 128.0);
        let sq = hsumma_cost(
            &params,
            BcastModel::VanDeGeijn,
            BcastModel::Binomial,
            n,
            p,
            g,
            bb,
            bs,
        );
        let rect = hsumma_gemm_cost(
            &params,
            BcastModel::VanDeGeijn,
            BcastModel::Binomial,
            n,
            n,
            n,
            p,
            g,
            bb,
            bs,
        );
        assert!(close(sq.latency, rect.latency));
        assert!(close(sq.bandwidth, rect.bandwidth));
        assert!(close(sq.compute, rect.compute));
    }

    #[test]
    fn square_grid_shape_sensitivity_brackets_the_square_case() {
        // Equal m·n·k flops, very different wire bills on a √p × √p
        // grid: a thin contraction (k small) broadcasts less, a long m
        // (tall-skinny) broadcasts enormous A panels — the mis-shaping
        // the brick decomposition of `cosma` exists to fix.
        let params = ModelParams::bluegene_p();
        let (p, b) = (4096.0, 64.0);
        let square = summa_gemm_cost(&params, BcastModel::Binomial, 4096.0, 4096.0, 4096.0, p, b);
        let outerish =
            summa_gemm_cost(&params, BcastModel::Binomial, 16384.0, 16384.0, 256.0, p, b);
        let tall = summa_gemm_cost(&params, BcastModel::Binomial, 65536.0, 1024.0, 1024.0, p, b);
        assert!(close(square.compute, outerish.compute));
        assert!(close(square.compute, tall.compute));
        assert!(outerish.bandwidth < square.bandwidth);
        assert!(tall.bandwidth > square.bandwidth);
    }

    #[test]
    #[should_panic(expected = "G must lie in [1, p]")]
    fn hsumma_rejects_g_out_of_range() {
        let params = ModelParams::grid5000();
        let _ = hsumma_cost(
            &params,
            BcastModel::Binomial,
            BcastModel::Binomial,
            1024.0,
            64.0,
            128.0,
            32.0,
            32.0,
        );
    }
}
