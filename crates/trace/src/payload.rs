//! Wire-size accounting for message payloads.
//!
//! Every byte that enters a `CommStats` ledger or a trace event comes
//! from one place: a payload's [`WirePayload::payload_bytes`]. Dense
//! matrices, shared panels, sparse CSR buffers and the simulator's
//! phantom stand-ins all implement the same hook, so both substrates
//! count dense and sparse traffic through identical code — there is no
//! hand-computed `rows*cols*8` at call sites.
//!
//! The trait lives in `hsumma-trace` (the dependency-free base crate)
//! so the matrix, runtime, simulator and sparse crates can all implement
//! it without dependency cycles.

use std::sync::Arc;

/// The number of bytes a value occupies on the wire.
///
/// For dense payloads this is a pure function of shape; for sparse
/// payloads it depends on `nnz` — which is exactly why the accounting
/// must ask the payload instead of recomputing from shape at call sites.
pub trait WirePayload {
    /// Serialized size of this payload in bytes.
    fn payload_bytes(&self) -> u64;
}

/// Raw `f64` buffers (collective segments, gathered tiles).
impl WirePayload for Vec<f64> {
    fn payload_bytes(&self) -> u64 {
        (self.len() * 8) as u64
    }
}

/// Shared payloads ship the pointee's bytes; the `Arc` itself is free.
impl<T: WirePayload + ?Sized> WirePayload for Arc<T> {
    fn payload_bytes(&self) -> u64 {
        (**self).payload_bytes()
    }
}

/// Optional payloads: `None` moves nothing.
impl<T: WirePayload> WirePayload for Option<T> {
    fn payload_bytes(&self) -> u64 {
        self.as_ref().map_or(0, WirePayload::payload_bytes)
    }
}

/// A payload with a routing index rides the payload's bytes (the index
/// travels in the envelope, like a tag).
impl<T: WirePayload> WirePayload for (T, usize) {
    fn payload_bytes(&self) -> u64 {
        self.0.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_bytes_are_len_times_eight() {
        assert_eq!(vec![0.0f64; 5].payload_bytes(), 40);
        assert_eq!(Vec::<f64>::new().payload_bytes(), 0);
    }

    #[test]
    fn wrappers_delegate_to_the_pointee() {
        let v = Arc::new(vec![0.0f64; 3]);
        assert_eq!(v.payload_bytes(), 24);
        assert_eq!(Some(Arc::clone(&v)).payload_bytes(), 24);
        assert_eq!(None::<Arc<Vec<f64>>>.payload_bytes(), 0);
        assert_eq!((Arc::clone(&v), 7usize).payload_bytes(), 24);
    }
}
