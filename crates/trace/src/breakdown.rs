//! Per-pivot-step comm/compute breakdown.
//!
//! Aggregates a trace into one row per pivot iteration `k`: how much
//! communication and computation time each step cost (max over ranks —
//! the BSP "slowest rank defines the phase" convention — and the sum),
//! plus message counts and bytes. This is the table behind the paper's
//! Figs. 5–9 style comm/compute split, but resolved per step.

use crate::event::{EventKind, TraceEvent};
use crate::tracer::Trace;
use std::collections::BTreeMap;

/// Aggregated cost of one pivot step across all ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepRow {
    /// Pivot iteration index.
    pub k: usize,
    /// Outer block size `B` of the step.
    pub outer: usize,
    /// Inner block size `b` of the step.
    pub inner: usize,
    /// Slowest rank's communication seconds inside the step.
    pub comm_max: f64,
    /// Slowest rank's computation seconds inside the step.
    pub comp_max: f64,
    /// Total communication seconds across ranks.
    pub comm_sum: f64,
    /// Total computation seconds across ranks.
    pub comp_sum: f64,
    /// Messages sent inside the step.
    pub msgs: u64,
    /// Payload bytes sent inside the step.
    pub bytes: u64,
    /// Flops computed inside the step.
    pub flops: u64,
}

/// Computes the per-step table of a trace. Events are attributed to the
/// pivot-step span (same rank) that contains them; send/recv wait time
/// counts as communication, compute spans as computation. Collective
/// spans are skipped in the sums — their constituent sends and receives
/// are already counted. Steps are keyed by `k` and aggregated across
/// ranks.
pub(crate) fn step_breakdown(trace: &Trace) -> Vec<StepRow> {
    // Per-rank step spans, then interval-attribute that rank's events.
    let mut rows: BTreeMap<usize, StepRow> = BTreeMap::new();
    // Per (rank, k): comm/comp seconds, folded into max/sum at the end.
    let mut per_rank: BTreeMap<(usize, usize), (f64, f64)> = BTreeMap::new();

    for rank in 0..trace.ranks {
        let events: Vec<&TraceEvent> = trace.events_of(rank).collect();
        let steps: Vec<(usize, &TraceEvent)> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::PivotStep { k, outer, inner } => {
                    let row = rows.entry(k).or_insert(StepRow {
                        k,
                        outer,
                        inner,
                        ..StepRow::default()
                    });
                    row.outer = outer;
                    row.inner = inner;
                    Some((k, *e))
                }
                _ => None,
            })
            .collect();
        if steps.is_empty() {
            continue;
        }
        let eps = 1e-12 * steps.iter().map(|(_, s)| s.t1.abs()).fold(1.0f64, f64::max);
        let enclosing = |e: &TraceEvent| {
            steps
                .iter()
                .find(|(_, s)| e.t0 >= s.t0 - eps && e.t1 <= s.t1 + eps)
                .map(|(k, _)| *k)
        };
        for e in &events {
            let Some(k) = enclosing(e) else { continue };
            let row = rows.get_mut(&k).expect("step row exists");
            let cell = per_rank.entry((rank, k)).or_insert((0.0, 0.0));
            match e.kind {
                EventKind::Send { bytes, .. } => {
                    cell.0 += e.duration();
                    row.msgs += 1;
                    row.bytes += bytes;
                }
                EventKind::Recv { .. } => cell.0 += e.duration(),
                EventKind::Compute { flops } => {
                    cell.1 += e.duration();
                    row.flops += flops;
                }
                EventKind::Collective { .. } | EventKind::PivotStep { .. } => {}
            }
        }
    }

    for ((_, k), (comm, comp)) in per_rank {
        let row = rows.get_mut(&k).expect("step row exists");
        row.comm_max = row.comm_max.max(comm);
        row.comp_max = row.comp_max.max(comp);
        row.comm_sum += comm;
        row.comp_sum += comp;
    }
    rows.into_values().collect()
}

/// Plain-text table for CLI output.
pub fn render_breakdown(rows: &[StepRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "   k     B     b     comm_max      comp_max         msgs        bytes        flops\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>4}  {:>4}  {:>4}  {:>11.5e}  {:>11.5e}  {:>11}  {:>11}  {:>11}\n",
            r.k, r.outer, r.inner, r.comm_max, r.comp_max, r.msgs, r.bytes, r.flops
        ));
    }
    let comm: f64 = rows.iter().map(|r| r.comm_max).sum();
    let comp: f64 = rows.iter().map(|r| r.comp_max).sum();
    out.push_str(&format!(
        "total over steps: comm_max {:.5e}s  comp_max {:.5e}s\n",
        comm, comp
    ));
    out
}

impl Trace {
    /// Per-pivot-step comm/compute breakdown (see [`StepRow`]).
    pub fn step_breakdown(&self) -> Vec<StepRow> {
        step_breakdown(self)
    }

    /// Critical path through the send→recv dependency graph.
    pub fn critical_path(&self) -> crate::critical::CriticalPath {
        crate::critical::critical_path(&self.events)
    }

    /// Chrome tracing JSON (see [`crate::validate_json`]).
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn events_attribute_to_their_enclosing_step() {
        let t = Tracer::new(2);
        {
            let s0 = t.sink(0);
            let s1 = t.sink(1);
            // Rank 0, step 0: one send + compute; step 1: compute only.
            s0.record(
                EventKind::Send {
                    dst: 1,
                    tag: 0,
                    channel: 0,
                    bytes: 100,
                },
                0.0,
                1.0,
            );
            s0.record(EventKind::Compute { flops: 10 }, 1.0, 3.0);
            s0.record(
                EventKind::PivotStep {
                    k: 0,
                    outer: 8,
                    inner: 4,
                },
                0.0,
                3.0,
            );
            s0.record(EventKind::Compute { flops: 20 }, 3.0, 4.0);
            s0.record(
                EventKind::PivotStep {
                    k: 1,
                    outer: 8,
                    inner: 4,
                },
                3.0,
                4.0,
            );
            // Rank 1, step 0: the matching recv (longer wait).
            s1.record(
                EventKind::Recv {
                    src: 0,
                    tag: 0,
                    channel: 0,
                    bytes: 100,
                },
                0.0,
                2.5,
            );
            s1.record(
                EventKind::PivotStep {
                    k: 0,
                    outer: 8,
                    inner: 4,
                },
                0.0,
                2.5,
            );
        }
        let rows = t.collect().step_breakdown();
        assert_eq!(rows.len(), 2);
        let r0 = &rows[0];
        assert_eq!((r0.k, r0.outer, r0.inner), (0, 8, 4));
        assert_eq!(r0.msgs, 1);
        assert_eq!(r0.bytes, 100);
        assert_eq!(r0.flops, 10);
        // comm: rank0 send 1.0s, rank1 recv 2.5s → max 2.5, sum 3.5.
        assert!((r0.comm_max - 2.5).abs() < 1e-12);
        assert!((r0.comm_sum - 3.5).abs() < 1e-12);
        assert!((r0.comp_max - 2.0).abs() < 1e-12);
        let r1 = &rows[1];
        assert_eq!(r1.k, 1);
        assert_eq!(r1.msgs, 0);
        assert!((r1.comp_max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn events_outside_any_step_are_ignored() {
        let t = Tracer::new(1);
        {
            let s = t.sink(0);
            s.record(EventKind::Compute { flops: 5 }, 0.0, 1.0);
            // No PivotStep span at all.
        }
        assert!(t.collect().step_breakdown().is_empty());
    }

    #[test]
    fn render_produces_one_line_per_step_plus_header_and_total() {
        let rows = vec![
            StepRow {
                k: 0,
                outer: 16,
                inner: 8,
                comm_max: 1e-3,
                comp_max: 2e-3,
                ..StepRow::default()
            },
            StepRow {
                k: 1,
                outer: 16,
                inner: 8,
                ..StepRow::default()
            },
        ];
        let s = render_breakdown(&rows);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("total over steps"));
    }
}
