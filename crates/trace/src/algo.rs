//! The one shared broadcast-algorithm selector.
//!
//! Both execution substrates — the threaded runtime (`hsumma-runtime`)
//! and the discrete-event simulator (`hsumma-netsim`) — schedule their
//! broadcasts from this single enum. It lives here, in the leaf crate
//! both already depend on for tracing, so the two sides *cannot* drift:
//! there is no second copy to re-unify (the duplication used to exist as
//! `runtime::BcastAlgorithm` vs `netsim::SimBcast`, and the trees had to
//! be hand-reconciled once already).
//!
//! Cost models on a flat Hockney network (`α + m·β` per message):
//!
//! | algorithm | messages on the critical path | model cost |
//! |---|---|---|
//! | `Flat` | root sends `p−1` copies | `(p−1)(α+mβ)` |
//! | `Binomial` | `⌈log₂p⌉` rounds of full copies | `log₂(p)(α+mβ)` |
//! | `Binary` | depth `⌊log₂p⌋` tree, 2 sends per node | `≈2log₂(p)(α+mβ)` |
//! | `Ring` | chain of `p−1` full copies | `(p−1)(α+mβ)` |
//! | `Pipelined{s}` | chain of `p−1+s−1` segments | `(p+s−2)(α+mβ/s)` |
//! | `ScatterAllgather` | binomial scatter + ring allgather | `(log₂p+p−1)α + 2((p−1)/p)mβ` |

/// Selectable broadcast algorithm (see module docs for cost models).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcastAlgorithm {
    /// Root sends the full message to every other rank.
    Flat,
    /// Binomial tree: `⌈log₂ p⌉` rounds, the classic short-message choice.
    Binomial,
    /// Balanced binary tree rooted at the root.
    Binary,
    /// Linear chain through all ranks (pipeline with one segment).
    Ring,
    /// Linear chain with the payload cut into `segments` pipelined pieces.
    Pipelined {
        /// Number of segments the payload is cut into (≥ 1).
        segments: usize,
    },
    /// Van de Geijn: binomial-tree scatter then ring allgather. The paper's
    /// long-message broadcast (Table II).
    ScatterAllgather,
}

impl BcastAlgorithm {
    /// Stable name for traces and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            BcastAlgorithm::Flat => "flat",
            BcastAlgorithm::Binomial => "binomial",
            BcastAlgorithm::Binary => "binary",
            BcastAlgorithm::Ring => "ring",
            BcastAlgorithm::Pipelined { .. } => "pipelined",
            BcastAlgorithm::ScatterAllgather => "scatter_allgather",
        }
    }

    /// Whether the algorithm cuts the payload into pieces (and therefore
    /// requires a sliceable payload on the executable substrate).
    pub fn needs_segmentation(&self) -> bool {
        matches!(
            self,
            BcastAlgorithm::Pipelined { .. } | BcastAlgorithm::ScatterAllgather
        )
    }
}

/// MPICH's broadcast-selection policy, reproduced: binomial tree for
/// short messages, scatter + allgather (van de Geijn) for long ones.
/// The default threshold is MPICH's classic 12 KiB medium-message cutoff.
///
/// This is what "MPI_Bcast" effectively ran inside the paper's SUMMA.
pub fn auto_bcast(payload_bytes: usize, p: usize) -> BcastAlgorithm {
    const MEDIUM: usize = 12 * 1024;
    if payload_bytes < MEDIUM || p < 8 {
        BcastAlgorithm::Binomial
    } else {
        BcastAlgorithm::ScatterAllgather
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        for (algo, want) in [
            (BcastAlgorithm::Flat, "flat"),
            (BcastAlgorithm::Binomial, "binomial"),
            (BcastAlgorithm::Binary, "binary"),
            (BcastAlgorithm::Ring, "ring"),
            (BcastAlgorithm::Pipelined { segments: 4 }, "pipelined"),
            (BcastAlgorithm::ScatterAllgather, "scatter_allgather"),
        ] {
            assert_eq!(algo.name(), want);
        }
    }

    #[test]
    fn auto_bcast_reproduces_mpich_cutoff() {
        assert_eq!(auto_bcast(1024, 64), BcastAlgorithm::Binomial);
        assert_eq!(auto_bcast(64 * 1024, 64), BcastAlgorithm::ScatterAllgather);
        // Small communicators stay binomial even for long messages.
        assert_eq!(auto_bcast(64 * 1024, 4), BcastAlgorithm::Binomial);
    }

    #[test]
    fn segmentation_flags() {
        assert!(BcastAlgorithm::Pipelined { segments: 2 }.needs_segmentation());
        assert!(BcastAlgorithm::ScatterAllgather.needs_segmentation());
        assert!(!BcastAlgorithm::Binomial.needs_segmentation());
        assert!(!BcastAlgorithm::Ring.needs_segmentation());
    }
}
