//! Unified per-rank event tracing for the HSUMMA reproduction.
//!
//! The paper's argument is entirely about *where time goes*: the
//! comm/compute split of Figs. 5–9 and the message-level broadcast
//! schedules of §II. This crate gives both execution substrates — the
//! threaded runtime (`hsumma-runtime`, wall clocks) and the discrete-event
//! simulator (`hsumma-netsim`, virtual clocks) — one structured event
//! model, so a real run and a simulated run of the same algorithm produce
//! structurally comparable traces.
//!
//! The pieces:
//!
//! * [`TraceEvent`] / [`EventKind`] — the event model: p2p sends and
//!   receives (src/dst/tag/bytes), collective spans (operation, algorithm,
//!   root), pivot-step spans (`k`, outer block `B`, inner block `b`) and
//!   local compute spans with flop counts.
//! * [`Tracer`] / [`TraceSink`] — a zero-cost-when-off handle. Each rank
//!   records into its own lock-free bounded ring buffer; a disabled tracer
//!   is a `None` and every record call is a single branch.
//! * [`Trace`] — the collected events, with analyses on top:
//!   [`Trace::to_chrome_json`] (Chrome-trace/Perfetto export, one track
//!   per rank, nested spans, flow arrows for messages),
//!   [`Trace::critical_path`] (longest chain through the send→recv
//!   dependency graph with per-edge α/β attribution) and
//!   [`Trace::step_breakdown`] (per-pivot-step comm/compute table).

mod algo;
mod breakdown;
mod chrome;
mod critical;
mod event;
pub mod fault;
mod payload;
mod ring;
mod tracer;

pub use algo::{auto_bcast, BcastAlgorithm};
pub use breakdown::{render_breakdown, StepRow};
pub use chrome::validate_json;
pub use critical::{CriticalPath, MessageEdge, PathCost};
pub use event::{EventKind, TraceEvent};
pub use fault::{
    primary_comm_error, CommEdge, CommError, CommErrorKind, FaultAction, FaultDecision, FaultPlan,
    FaultRule, FaultState, KillRule, TagClass, COLLECTIVE_TAG_FLOOR,
};
pub use payload::WirePayload;
pub use tracer::{Trace, TraceSink, Tracer};
