//! The `Tracer` handle, per-rank `TraceSink`s and the collected `Trace`.

use crate::event::{EventKind, TraceEvent};
use crate::ring::Ring;
use std::sync::Arc;
use std::time::Instant;

/// Default per-rank ring capacity (events). Enough for the test-scale
/// problem sizes this repo runs; overflow is counted, not fatal.
const DEFAULT_CAPACITY: usize = 1 << 14;

struct Shared {
    rings: Vec<Ring>,
    epoch: Instant,
}

/// The tracing handle an experiment owns. Disabled (the default for every
/// untraced run) it is a `None` — handing out sinks, timestamping and
/// recording all collapse to a branch on that `None`, so tracing costs
/// nothing when off.
///
/// Enabled, it owns one lock-free ring buffer per rank; rank threads
/// record through [`TraceSink`]s and the experiment calls
/// [`Tracer::collect`] afterwards.
///
/// Cloning is shallow (an `Arc` bump): clones observe the same rings.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Shared>>,
}

impl Tracer {
    /// A tracer that records nothing and costs nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer for `ranks` ranks with the default per-rank
    /// capacity.
    pub fn new(ranks: usize) -> Self {
        Self::with_capacity(ranks, DEFAULT_CAPACITY)
    }

    /// An enabled tracer with an explicit per-rank event capacity.
    pub fn with_capacity(ranks: usize, capacity: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        Tracer {
            inner: Some(Arc::new(Shared {
                rings: (0..ranks).map(|_| Ring::new(capacity)).collect(),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of rank rings (0 when disabled).
    pub fn ranks(&self) -> usize {
        self.inner.as_ref().map_or(0, |s| s.rings.len())
    }

    /// Seconds since the tracer was created (0.0 when disabled). The
    /// threaded runtime stamps events with this clock; the simulator uses
    /// its own virtual clocks instead.
    #[inline]
    pub fn now(&self) -> f64 {
        match &self.inner {
            Some(s) => s.epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// The recording handle for `rank`. Panics if `rank` already has a
    /// live sink (single-writer protocol) or is out of range.
    pub fn sink(&self, rank: usize) -> TraceSink {
        match &self.inner {
            None => TraceSink { inner: None },
            Some(s) => {
                assert!(rank < s.rings.len(), "rank out of range for tracer");
                s.rings[rank].claim();
                TraceSink {
                    inner: Some(SinkInner {
                        shared: Arc::clone(s),
                        rank,
                    }),
                }
            }
        }
    }

    /// Snapshot of everything recorded so far. Events are grouped by rank
    /// (all of rank 0's events in recording order, then rank 1's, …).
    pub fn collect(&self) -> Trace {
        match &self.inner {
            None => Trace {
                ranks: 0,
                events: Vec::new(),
                dropped: 0,
            },
            Some(s) => {
                let mut events = Vec::with_capacity(s.rings.iter().map(Ring::len).sum());
                for ring in &s.rings {
                    events.extend(ring.snapshot());
                }
                Trace {
                    ranks: s.rings.len(),
                    events,
                    dropped: s.rings.iter().map(Ring::dropped).sum(),
                }
            }
        }
    }
}

struct SinkInner {
    shared: Arc<Shared>,
    rank: usize,
}

/// One rank's recording handle. `Send` but deliberately not `Clone`:
/// exactly one live sink per rank keeps the ring single-writer.
pub struct TraceSink {
    inner: Option<SinkInner>,
}

impl TraceSink {
    /// A sink that records nothing (what a disabled tracer hands out).
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// Whether records will be kept. Hot paths branch on this before
    /// taking any timestamps.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since the owning tracer's epoch (0.0 when disabled).
    #[inline]
    pub fn now(&self) -> f64 {
        match &self.inner {
            Some(s) => s.shared.epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Records one event spanning `[t0, t1]`.
    #[inline]
    pub fn record(&self, kind: EventKind, t0: f64, t1: f64) {
        if let Some(s) = &self.inner {
            s.shared.rings[s.rank].push(TraceEvent {
                rank: s.rank,
                t0,
                t1,
                kind,
            });
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        if let Some(s) = &self.inner {
            s.shared.rings[s.rank].release();
        }
    }
}

/// A collected trace: every recorded event, grouped by rank and in
/// per-rank recording order.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Number of rank tracks.
    pub ranks: usize,
    /// All events, rank 0's first (each rank's in recording order).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow (0 means the trace is complete).
    pub dropped: u64,
}

impl Trace {
    /// Events recorded by `rank`, in recording order.
    pub fn events_of(&self, rank: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// The `(src, dst, bytes)` multiset of payload-carrying sends
    /// (`bytes > 0` filters out zero-byte control/barrier messages),
    /// sorted so two traces of the same schedule compare equal.
    pub fn payload_send_multiset(&self) -> Vec<(usize, usize, u64)> {
        let mut out: Vec<(usize, usize, u64)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Send { dst, bytes, .. } if bytes > 0 => Some((e.rank, dst, bytes)),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Per-source-rank `(src, dst, bytes)` multisets of payload sends:
    /// entry `r` lists what rank `r` sent, sorted.
    pub fn per_rank_send_multisets(&self) -> Vec<Vec<(usize, usize, u64)>> {
        let mut out = vec![Vec::new(); self.ranks];
        for (src, dst, bytes) in self.payload_send_multiset() {
            out[src].push((src, dst, bytes));
        }
        out
    }

    /// Count of events matching a predicate (test convenience).
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// The same trace with every timestamp shifted by `dt` seconds.
    ///
    /// Each pooled job records into its own tracer whose clock starts at
    /// the job's own epoch; to lay several jobs on one server-lifetime
    /// timeline, shift each job's trace by its start offset before
    /// [`Trace::merged`] concatenates them.
    pub fn shifted(&self, dt: f64) -> Trace {
        Trace {
            ranks: self.ranks,
            events: self
                .events
                .iter()
                .map(|e| TraceEvent {
                    rank: e.rank,
                    t0: e.t0 + dt,
                    t1: e.t1 + dt,
                    kind: e.kind,
                })
                .collect(),
            dropped: self.dropped,
        }
    }

    /// Concatenates per-job traces into one timeline, preserving the
    /// grouped-by-rank invariant (all of rank 0's events — job after
    /// job — then rank 1's, …). Callers wanting disjoint job spans
    /// should [`Trace::shifted`] each input by its job's start offset
    /// first; `merged` itself does not reclock anything.
    pub fn merged(traces: &[Trace]) -> Trace {
        let ranks = traces.iter().map(|t| t.ranks).max().unwrap_or(0);
        let mut events = Vec::with_capacity(traces.iter().map(|t| t.events.len()).sum());
        for rank in 0..ranks {
            for t in traces {
                events.extend(t.events_of(rank).cloned());
            }
        }
        Trace {
            ranks,
            events,
            dropped: traces.iter().map(|t| t.dropped).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(dst: usize, bytes: u64) -> EventKind {
        EventKind::Send {
            dst,
            tag: 0,
            channel: 0,
            bytes,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_costs_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.now(), 0.0);
        let sink = t.sink(3); // any rank: no rings to bound-check
        assert!(!sink.enabled());
        sink.record(EventKind::Compute { flops: 1 }, 0.0, 1.0);
        let trace = t.collect();
        assert_eq!(trace.events.len(), 0);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn events_collect_grouped_by_rank() {
        let t = Tracer::new(2);
        let s1 = t.sink(1);
        let s0 = t.sink(0);
        s1.record(send(0, 8), 1.0, 2.0);
        s0.record(send(1, 8), 0.0, 1.0);
        s0.record(EventKind::Compute { flops: 10 }, 1.0, 3.0);
        let trace = t.collect();
        assert_eq!(trace.ranks, 2);
        let ranks: Vec<usize> = trace.events.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![0, 0, 1]);
        assert_eq!(trace.events_of(1).count(), 1);
    }

    #[test]
    fn payload_multiset_filters_control_messages_and_sorts() {
        let t = Tracer::new(2);
        {
            let s0 = t.sink(0);
            let s1 = t.sink(1);
            s1.record(send(0, 16), 0.0, 1.0);
            s0.record(send(1, 0), 0.0, 1.0); // zero-byte control msg
            s0.record(send(1, 8), 1.0, 2.0);
        }
        let trace = t.collect();
        assert_eq!(trace.payload_send_multiset(), vec![(0, 1, 8), (1, 0, 16)]);
        let per_rank = trace.per_rank_send_multisets();
        assert_eq!(per_rank[0], vec![(0, 1, 8)]);
        assert_eq!(per_rank[1], vec![(1, 0, 16)]);
    }

    #[test]
    fn shifted_moves_every_timestamp() {
        let t = Tracer::new(1);
        {
            let s = t.sink(0);
            s.record(send(0, 8), 1.0, 2.0);
        }
        let shifted = t.collect().shifted(10.0);
        assert_eq!(shifted.events[0].t0, 11.0);
        assert_eq!(shifted.events[0].t1, 12.0);
        assert_eq!(shifted.ranks, 1);
    }

    #[test]
    fn merged_concatenates_jobs_grouped_by_rank() {
        // Two "jobs", each with its own tracer over the same 2 ranks.
        let job = |bytes: u64| {
            let t = Tracer::new(2);
            {
                let s0 = t.sink(0);
                let s1 = t.sink(1);
                s0.record(send(1, bytes), 0.0, 1.0);
                s1.record(send(0, bytes), 0.0, 1.0);
            }
            t.collect()
        };
        let first = job(8);
        let second = job(16).shifted(5.0);
        let merged = Trace::merged(&[first, second]);
        assert_eq!(merged.ranks, 2);
        assert_eq!(merged.events.len(), 4);
        // Grouped by rank: rank 0's two jobs first, then rank 1's.
        let ranks: Vec<usize> = merged.events.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![0, 0, 1, 1]);
        // Second job's events carry the shifted clock.
        assert_eq!(merged.events[1].t0, 5.0);
        assert_eq!(
            merged.payload_send_multiset(),
            vec![(0, 1, 8), (0, 1, 16), (1, 0, 8), (1, 0, 16)]
        );
    }

    #[test]
    fn merged_of_nothing_is_empty() {
        let m = Trace::merged(&[]);
        assert_eq!(m.ranks, 0);
        assert!(m.events.is_empty());
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn two_live_sinks_for_one_rank_rejected() {
        let t = Tracer::new(1);
        let _a = t.sink(0);
        let _b = t.sink(0);
    }

    #[test]
    fn sink_can_be_reclaimed_after_drop() {
        let t = Tracer::new(1);
        {
            let s = t.sink(0);
            s.record(EventKind::Compute { flops: 0 }, 0.0, 1.0);
        }
        let s = t.sink(0);
        s.record(EventKind::Compute { flops: 0 }, 1.0, 2.0);
        drop(s);
        assert_eq!(t.collect().events.len(), 2);
    }

    #[test]
    fn wall_clock_advances() {
        let t = Tracer::new(1);
        let a = t.now();
        let b = t.now();
        assert!(b >= a);
    }

    #[test]
    fn overflow_is_reported_not_fatal() {
        let t = Tracer::with_capacity(1, 2);
        let s = t.sink(0);
        for i in 0..5 {
            s.record(EventKind::Compute { flops: i }, 0.0, 0.0);
        }
        drop(s);
        let trace = t.collect();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 3);
    }

    #[test]
    fn clones_share_rings() {
        let t = Tracer::new(1);
        let t2 = t.clone();
        let s = t.sink(0);
        s.record(EventKind::Compute { flops: 0 }, 0.0, 1.0);
        drop(s);
        assert_eq!(t2.collect().events.len(), 1);
    }
}
