//! Fallible-communication vocabulary shared by both substrates.
//!
//! The paper's target platforms (a 16-rack BlueGene/P, Grid'5000) make
//! message loss and stragglers an operational reality; a serving layer on
//! top of either substrate needs every blocking wait to be bounded and
//! every stall to be diagnosable. This module holds the pieces both the
//! threaded runtime and the discrete-event simulator agree on:
//!
//! * [`CommError`] / [`CommEdge`] — what a failed communication operation
//!   returns. Every variant (except a self-inflicted [`CommError::Shutdown`])
//!   names the exact `(rank, peer, ctx, tag, epoch)` edge that stalled, so
//!   a hung-job report reads "rank 2 timed out waiting on rank 0, tag
//!   0x…11" instead of "recv failed".
//! * [`FaultPlan`] / [`FaultState`] — a deterministic fault schedule
//!   (drop / delay / duplicate the n-th matching message, kill a rank
//!   after its k-th send) that plugs into the send path of *both*
//!   substrates. Because the runtime and the simulator emit identical
//!   per-rank send sequences for every collective (the PR 2/3 parity
//!   property), the same plan injects the same faults on both, and a
//!   simulated failure can be replayed on real threads.
//!
//! This crate is dependency-free and sits below both substrates, which is
//! why the error type lives here rather than in `hsumma-runtime` (the
//! same reason [`crate::BcastAlgorithm`] does).

use std::fmt;
use std::sync::Arc;

/// Both substrates reserve tags at and above this bit for internal /
/// collective traffic (the simulator's `SIM_TAG_*` start at `1 << 62`,
/// the runtime's internal tags at `1 << 63`); application point-to-point
/// tags live below it. [`TagClass`] uses this boundary so a fault rule
/// written against "collective traffic" matches the same messages on
/// either substrate.
pub const COLLECTIVE_TAG_FLOOR: u64 = 1 << 62;

/// The communication edge a failed operation was blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommEdge {
    /// World rank of the side reporting the error.
    pub rank: usize,
    /// World rank of the partner (the expected sender for a receive, the
    /// destination for a send; for a peer death, the rank that died).
    pub peer: usize,
    /// Communicator context the operation ran on.
    pub ctx: u64,
    /// Message tag.
    pub tag: u64,
    /// Job epoch (always 0 on the simulator and one-shot runtime).
    pub epoch: u64,
}

impl fmt::Display for CommEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} <-> rank {} (ctx={:#x}, tag={:#x}, epoch={})",
            self.rank, self.peer, self.ctx, self.tag, self.epoch
        )
    }
}

/// Why a communication operation failed. Ordered by severity for
/// [`primary_comm_error`]: a timeout outranks a cancellation outranks a
/// peer death outranks a self-shutdown when summarising a whole job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The job deadline passed while this operation was blocked on `edge`.
    Timeout {
        /// The edge the operation was waiting on when the deadline hit.
        edge: CommEdge,
        /// The operation that was blocked (`"recv"`, `"send"`, …).
        op: &'static str,
    },
    /// The job was cancelled (by the pool watchdog or a caller-held
    /// cancel token) while this operation waited.
    Cancelled {
        /// The edge the operation was waiting on when cancelled.
        edge: CommEdge,
        /// The operation that was blocked.
        op: &'static str,
    },
    /// A peer rank died (panicked or was killed by a fault plan) while
    /// this rank waited on it.
    PeerDead {
        /// `edge.peer` is the rank that died.
        edge: CommEdge,
        /// The operation that was blocked.
        op: &'static str,
    },
    /// This rank itself was taken down — killed by a [`FaultPlan`] or
    /// caught in a pool shutdown — and must stop communicating.
    Shutdown {
        /// World rank of the dying side.
        rank: usize,
        /// Human-readable cause ("killed by fault plan after 3 sends").
        detail: String,
    },
}

/// Discriminant of a [`CommError`], for outcome-parity comparisons that
/// should ignore the substrate-specific edge details.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommErrorKind {
    /// See [`CommError::Timeout`].
    Timeout,
    /// See [`CommError::Cancelled`].
    Cancelled,
    /// See [`CommError::PeerDead`].
    PeerDead,
    /// See [`CommError::Shutdown`].
    Shutdown,
}

impl CommError {
    /// The variant, with edge details stripped.
    pub fn kind(&self) -> CommErrorKind {
        match self {
            CommError::Timeout { .. } => CommErrorKind::Timeout,
            CommError::Cancelled { .. } => CommErrorKind::Cancelled,
            CommError::PeerDead { .. } => CommErrorKind::PeerDead,
            CommError::Shutdown { .. } => CommErrorKind::Shutdown,
        }
    }

    /// The stalled edge, when the error has one.
    pub fn edge(&self) -> Option<&CommEdge> {
        match self {
            CommError::Timeout { edge, .. }
            | CommError::Cancelled { edge, .. }
            | CommError::PeerDead { edge, .. } => Some(edge),
            CommError::Shutdown { .. } => None,
        }
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { edge, op } => {
                write!(
                    f,
                    "deadline passed while rank {} waited in {op} on {edge}",
                    edge.rank
                )
            }
            CommError::Cancelled { edge, op } => {
                write!(
                    f,
                    "job cancelled while rank {} waited in {op} on {edge}",
                    edge.rank
                )
            }
            CommError::PeerDead { edge, op } => {
                write!(
                    f,
                    "peer rank {} died while rank {} waited in {op} on {edge}",
                    edge.peer, edge.rank
                )
            }
            CommError::Shutdown { rank, detail } => {
                write!(f, "rank {rank} shut down: {detail}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Picks the error that best summarises a job from the per-rank failures,
/// preferring `Timeout > Cancelled > PeerDead > Shutdown` (a timeout names
/// the stalled edge; the peers' secondary deaths are cascade noise).
pub fn primary_comm_error<'a, I>(errors: I) -> Option<&'a CommError>
where
    I: IntoIterator<Item = &'a CommError>,
{
    errors.into_iter().min_by_key(|e| e.kind())
}

/// Which tag band a fault rule applies to; see [`COLLECTIVE_TAG_FLOOR`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TagClass {
    /// Match every eligible message.
    #[default]
    Any,
    /// Application point-to-point tags (below [`COLLECTIVE_TAG_FLOOR`]).
    App,
    /// Internal / collective tags (at or above [`COLLECTIVE_TAG_FLOOR`]).
    Collective,
}

impl TagClass {
    /// Whether `tag` falls in this class.
    pub fn matches(self, tag: u64) -> bool {
        match self {
            TagClass::Any => true,
            TagClass::App => tag < COLLECTIVE_TAG_FLOOR,
            TagClass::Collective => tag >= COLLECTIVE_TAG_FLOOR,
        }
    }
}

/// What to do to a matched message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The message vanishes at the send path — never enqueued, never
    /// counted as sent. The receiver blocks until its deadline.
    Drop,
    /// The message is delivered, but only after the given extra delay
    /// (wall seconds on the runtime, virtual seconds on the simulator).
    Delay(f64),
    /// The message is enqueued twice. The duplicate is absorbed by the
    /// receiver's epoch purge (runtime) or left-over-mail tolerance (sim).
    Duplicate,
}

/// One deterministic injection: apply `action` to the `nth` message
/// (0-based) this plan sees that matches the `(src, dst, tag_class)`
/// filter. `None` filters are wildcards.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Only messages sent by this world rank (any sender when `None`).
    pub src: Option<usize>,
    /// Only messages addressed to this world rank (any when `None`).
    pub dst: Option<usize>,
    /// Only tags in this band.
    pub tag_class: TagClass,
    /// 0-based index among matching messages *per sending rank*: rule
    /// counters live in the sender's [`FaultState`], so `nth = 2` means
    /// "the third matching message that sender emits".
    pub nth: u64,
    /// What to do to it.
    pub action: FaultAction,
}

/// Kill a rank: its `after_sends`-th eligible send (0-based) returns
/// [`CommError::Shutdown`] instead of delivering, and the rank's job
/// closure is expected to propagate the error and die silently. Peers
/// then time out at the job deadline — identically on both substrates —
/// so plans with kills require a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillRule {
    /// World rank to kill.
    pub rank: usize,
    /// How many eligible sends the rank completes before dying.
    pub after_sends: u64,
}

/// A deterministic, replayable fault schedule. Build one with the
/// fluent constructors, hand the same plan (via `Arc`) to the simulator
/// and the threaded runtime, and both will inject the same faults at the
/// same points in the communication schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Message-level injections; the first matching rule wins.
    pub rules: Vec<FaultRule>,
    /// Rank kills.
    pub kills: Vec<KillRule>,
    /// Seed reserved for probabilistic extensions; today's rules are
    /// count-deterministic and ignore it, but it is part of the plan's
    /// identity so replays carry it along.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Drops the `nth` message from `src` to `dst` in `tag_class`.
    pub fn drop_nth(
        mut self,
        src: Option<usize>,
        dst: Option<usize>,
        tag_class: TagClass,
        nth: u64,
    ) -> Self {
        self.rules.push(FaultRule {
            src,
            dst,
            tag_class,
            nth,
            action: FaultAction::Drop,
        });
        self
    }

    /// Delays the `nth` matching message by `seconds`.
    pub fn delay_nth(
        mut self,
        src: Option<usize>,
        dst: Option<usize>,
        tag_class: TagClass,
        nth: u64,
        seconds: f64,
    ) -> Self {
        self.rules.push(FaultRule {
            src,
            dst,
            tag_class,
            nth,
            action: FaultAction::Delay(seconds),
        });
        self
    }

    /// Duplicates the `nth` matching message.
    pub fn duplicate_nth(
        mut self,
        src: Option<usize>,
        dst: Option<usize>,
        tag_class: TagClass,
        nth: u64,
    ) -> Self {
        self.rules.push(FaultRule {
            src,
            dst,
            tag_class,
            nth,
            action: FaultAction::Duplicate,
        });
        self
    }

    /// Kills `rank` after `after_sends` eligible sends.
    pub fn kill_rank(mut self, rank: usize, after_sends: u64) -> Self {
        self.kills.push(KillRule { rank, after_sends });
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.kills.is_empty()
    }

    /// Whether the plan kills any rank (such plans require a deadline so
    /// the victim's peers resolve to `Timeout` instead of hanging).
    pub fn has_kills(&self) -> bool {
        !self.kills.is_empty()
    }
}

/// The decision [`FaultState::on_send`] hands back to the send path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Swallow the message (count a fault, not a send).
    Drop,
    /// Deliver after the given extra seconds.
    DeliverDelayed(f64),
    /// Deliver the message and an identical duplicate.
    DeliverTwice,
    /// The sending rank dies here: return [`CommError::Shutdown`].
    Kill,
}

/// Per-sending-rank replay cursor over a [`FaultPlan`]. Each substrate
/// creates one per rank and consults it on every *eligible* send (the
/// runtime excludes its split/barrier bookkeeping messages, which have no
/// simulator counterpart, so the counters advance in lockstep on both).
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: Arc<FaultPlan>,
    rank: usize,
    /// Per-rule count of messages (from this rank) that matched the
    /// rule's static filter so far.
    rule_hits: Vec<u64>,
    /// Eligible sends completed (or faulted) so far.
    sends: u64,
    /// Faults injected by this rank so far (kills included).
    injected: u64,
    killed: bool,
}

impl FaultState {
    /// A cursor for world rank `rank` over `plan`.
    pub fn new(plan: Arc<FaultPlan>, rank: usize) -> Self {
        let rule_hits = vec![0; plan.rules.len()];
        FaultState {
            plan,
            rank,
            rule_hits,
            sends: 0,
            injected: 0,
            killed: false,
        }
    }

    /// Consulted by the send path for every eligible send from this rank
    /// to world rank `dst` with message tag `tag`. Advances the replay
    /// cursors; the first matching rule wins.
    pub fn on_send(&mut self, dst: usize, tag: u64) -> FaultDecision {
        if self.killed {
            return FaultDecision::Kill;
        }
        for kill in &self.plan.kills {
            if kill.rank == self.rank && self.sends == kill.after_sends {
                self.killed = true;
                self.injected += 1;
                return FaultDecision::Kill;
            }
        }
        self.sends += 1;
        // Advance EVERY matching rule's cursor (so counters are
        // independent of which rule fires), then apply the first rule
        // whose nth slot this send landed on.
        let plan = Arc::clone(&self.plan);
        let mut decision = FaultDecision::Deliver;
        for (i, rule) in plan.rules.iter().enumerate() {
            let src_ok = rule.src.is_none_or(|s| s == self.rank);
            let dst_ok = rule.dst.is_none_or(|d| d == dst);
            if !(src_ok && dst_ok && rule.tag_class.matches(tag)) {
                continue;
            }
            let hit = self.rule_hits[i];
            self.rule_hits[i] += 1;
            if hit == rule.nth && decision == FaultDecision::Deliver {
                self.injected += 1;
                decision = match rule.action {
                    FaultAction::Drop => FaultDecision::Drop,
                    FaultAction::Delay(s) => FaultDecision::DeliverDelayed(s),
                    FaultAction::Duplicate => FaultDecision::DeliverTwice,
                };
            }
        }
        decision
    }

    /// Faults injected by this rank so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Whether the kill rule has fired for this rank.
    pub fn killed(&self) -> bool {
        self.killed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> CommEdge {
        CommEdge {
            rank: 2,
            peer: 0,
            ctx: 0x11,
            tag: COLLECTIVE_TAG_FLOOR + 17,
            epoch: 3,
        }
    }

    #[test]
    fn errors_name_the_stalled_edge() {
        let e = CommError::Timeout {
            edge: edge(),
            op: "recv",
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("rank 0"), "{msg}");
        assert!(msg.contains("epoch=3"), "{msg}");
        assert!(msg.contains("recv"), "{msg}");
    }

    #[test]
    fn primary_error_prefers_timeout_over_cascade() {
        let timeout = CommError::Timeout {
            edge: edge(),
            op: "recv",
        };
        let dead = CommError::PeerDead {
            edge: edge(),
            op: "recv",
        };
        let shut = CommError::Shutdown {
            rank: 1,
            detail: "killed by fault plan".into(),
        };
        let errs = [shut, dead, timeout.clone()];
        assert_eq!(primary_comm_error(errs.iter()), Some(&timeout));
    }

    #[test]
    fn tag_class_boundary_matches_both_substrates() {
        assert!(TagClass::App.matches(41));
        assert!(!TagClass::App.matches(1 << 62)); // sim collective tags
        assert!(TagClass::Collective.matches(1 << 62));
        assert!(TagClass::Collective.matches((1 << 63) + 17)); // runtime internal
        assert!(TagClass::Any.matches(0));
        assert!(TagClass::Any.matches(u64::MAX));
    }

    #[test]
    fn nth_rule_fires_exactly_once() {
        let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::Any, 2));
        let mut st = FaultState::new(plan, 0);
        assert_eq!(st.on_send(1, 5), FaultDecision::Deliver);
        assert_eq!(st.on_send(2, 5), FaultDecision::Deliver); // dst mismatch: no hit
        assert_eq!(st.on_send(1, 5), FaultDecision::Deliver);
        assert_eq!(st.on_send(1, 5), FaultDecision::Drop); // 3rd match (nth=2)
        assert_eq!(st.on_send(1, 5), FaultDecision::Deliver);
        assert_eq!(st.injected(), 1);
    }

    #[test]
    fn rules_are_scoped_to_their_sender() {
        let plan = Arc::new(FaultPlan::new().drop_nth(Some(3), None, TagClass::Any, 0));
        let mut not_me = FaultState::new(Arc::clone(&plan), 1);
        assert_eq!(not_me.on_send(0, 9), FaultDecision::Deliver);
        assert_eq!(not_me.injected(), 0);
        let mut me = FaultState::new(plan, 3);
        assert_eq!(me.on_send(0, 9), FaultDecision::Drop);
        assert_eq!(me.injected(), 1);
    }

    #[test]
    fn kill_fires_after_counted_sends_and_sticks() {
        let plan = Arc::new(FaultPlan::new().kill_rank(2, 2));
        let mut st = FaultState::new(plan, 2);
        assert_eq!(st.on_send(0, 1), FaultDecision::Deliver);
        assert_eq!(st.on_send(0, 1), FaultDecision::Deliver);
        assert_eq!(st.on_send(0, 1), FaultDecision::Kill);
        assert!(st.killed());
        assert_eq!(st.on_send(0, 1), FaultDecision::Kill, "kill is sticky");
        assert_eq!(st.injected(), 1, "a kill counts once");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = Arc::new(
            FaultPlan::new()
                .delay_nth(None, None, TagClass::Any, 0, 0.5)
                .drop_nth(None, None, TagClass::Any, 0),
        );
        let mut st = FaultState::new(plan, 0);
        assert_eq!(st.on_send(1, 0), FaultDecision::DeliverDelayed(0.5));
        // Both rules' cursors advanced on the first send, so the drop
        // rule's nth=0 slot is spent too.
        assert_eq!(st.on_send(1, 0), FaultDecision::Deliver);
    }

    #[test]
    fn duplicate_decision_counts_one_fault() {
        let plan = Arc::new(FaultPlan::new().duplicate_nth(None, None, TagClass::Collective, 0));
        let mut st = FaultState::new(plan, 0);
        assert_eq!(st.on_send(1, 3), FaultDecision::Deliver, "app tag skipped");
        assert_eq!(
            st.on_send(1, COLLECTIVE_TAG_FLOOR),
            FaultDecision::DeliverTwice
        );
        assert_eq!(st.injected(), 1);
    }
}
