//! The shared event model.
//!
//! Both substrates emit the same events. Timestamps are seconds on the
//! substrate's own clock: wall-clock seconds since the tracer's epoch in
//! the threaded runtime, virtual seconds in the simulator. A span's
//! duration is `t1 - t0`; instantaneous events set `t1 == t0`.

/// What happened. Small and `Copy` so recording is a plain store.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A point-to-point send. `dst` is a world rank; `channel` is the
    /// communicator context the message travelled on (0 = world);
    /// `bytes` is the payload size where the substrate knows it, else 0.
    Send {
        /// Destination world rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Communicator context id (isolates matching per communicator).
        channel: u64,
        /// Payload bytes (0 when the size is unknowable, e.g. opaque
        /// user types).
        bytes: u64,
    },
    /// A point-to-point receive; the span covers the blocking wait.
    Recv {
        /// Source world rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Communicator context id.
        channel: u64,
        /// Payload bytes (mirrors the matching send).
        bytes: u64,
    },
    /// A collective operation span (`bcast`, `reduce`, `barrier`, …)
    /// enclosing its constituent point-to-point events.
    Collective {
        /// Operation name (`"bcast"`, `"reduce_sum"`, …).
        op: &'static str,
        /// Algorithm name (`"binomial"`, `"scatter_allgather"`, …).
        algo: &'static str,
        /// Root rank of the operation (local to its communicator;
        /// rootless collectives use 0).
        root: usize,
    },
    /// One pivot step of a blocked algorithm: iteration `k` with outer
    /// block size `outer` (the paper's `B`) and inner block size `inner`
    /// (the paper's `b`). Plain SUMMA sets `outer == inner`.
    PivotStep {
        /// Pivot iteration index.
        k: usize,
        /// Outer (group-level) block size `B`.
        outer: usize,
        /// Inner block size `b`.
        inner: usize,
    },
    /// Local computation (dgemm or other kernel work) with its flop
    /// count where the caller knows it (0 otherwise).
    Compute {
        /// Floating-point operations performed (0 if unknown).
        flops: u64,
    },
}

impl EventKind {
    /// Payload bytes carried by this event (0 for non-message events).
    pub fn bytes(&self) -> u64 {
        match *self {
            EventKind::Send { bytes, .. } | EventKind::Recv { bytes, .. } => bytes,
            _ => 0,
        }
    }

    /// Display name for exporters.
    pub fn name(&self) -> String {
        match *self {
            EventKind::Send { dst, bytes, .. } => format!("send {bytes}B to r{dst}"),
            EventKind::Recv { src, bytes, .. } => format!("recv {bytes}B from r{src}"),
            EventKind::Collective { op, algo, root } => format!("{op}[{algo}] root={root}"),
            EventKind::PivotStep { k, outer, inner } => format!("step k={k} B={outer} b={inner}"),
            EventKind::Compute { flops } => {
                if flops > 0 {
                    format!("compute {flops} flops")
                } else {
                    "compute".to_string()
                }
            }
        }
    }

    /// Category for exporters (Chrome trace `cat` field).
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::Send { .. } => "send",
            EventKind::Recv { .. } => "recv",
            EventKind::Collective { .. } => "collective",
            EventKind::PivotStep { .. } => "step",
            EventKind::Compute { .. } => "compute",
        }
    }
}

/// One recorded event: which rank, when, what.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// World rank that recorded the event.
    pub rank: usize,
    /// Span start, seconds on the substrate's clock.
    pub t0: f64,
    /// Span end (`>= t0`).
    pub t1: f64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_only_for_messages() {
        let send = EventKind::Send {
            dst: 1,
            tag: 0,
            channel: 0,
            bytes: 64,
        };
        assert_eq!(send.bytes(), 64);
        assert_eq!(EventKind::Compute { flops: 100 }.bytes(), 0);
        assert_eq!(
            EventKind::PivotStep {
                k: 0,
                outer: 8,
                inner: 4
            }
            .bytes(),
            0
        );
    }

    #[test]
    fn names_are_descriptive() {
        let e = EventKind::Collective {
            op: "bcast",
            algo: "binomial",
            root: 2,
        };
        assert_eq!(e.name(), "bcast[binomial] root=2");
        assert_eq!(e.category(), "collective");
        assert_eq!(EventKind::Compute { flops: 0 }.name(), "compute");
    }

    #[test]
    fn duration_is_span_extent() {
        let e = TraceEvent {
            rank: 0,
            t0: 1.5,
            t1: 2.0,
            kind: EventKind::Compute { flops: 0 },
        };
        assert!((e.duration() - 0.5).abs() < 1e-15);
    }
}
