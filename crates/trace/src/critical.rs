//! Critical-path analysis over the send→recv dependency graph.
//!
//! A trace induces a DAG: each rank's events are chained in recording
//! order (program order), and every matched send→recv pair adds a
//! cross-rank edge. The longest chain through that DAG — the sequence of
//! events with no slack that ends at the final event — is the critical
//! path; shortening anything *not* on it cannot shorten the run.
//!
//! Matching is FIFO per `(src, dst, tag, channel)`, which is exactly the
//! ordering guarantee of both substrates (the runtime's mailbox delivers
//! per-sender-per-context in order; the simulator replays schedules in
//! program order).

use crate::event::{EventKind, TraceEvent};

/// One send→recv edge on the critical path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageEdge {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// When the send span started.
    pub depart: f64,
    /// When the receive span ended (message in hand).
    pub arrive: f64,
}

/// The longest dependency chain through a trace.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Finish time of the last event on the path.
    pub makespan: f64,
    /// The chain, earliest event first.
    pub events: Vec<TraceEvent>,
    /// The send→recv hops on the chain, in path order.
    pub message_edges: Vec<MessageEdge>,
}

/// α/β/γ attribution of a critical path under a Hockney-style model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PathCost {
    /// Latency share: one α per message edge.
    pub alpha_seconds: f64,
    /// Bandwidth share: `Σ bytes·β` over message edges.
    pub beta_seconds: f64,
    /// Time inside compute spans on the path.
    pub compute_seconds: f64,
    /// Number of message edges.
    pub edges: usize,
    /// Bytes carried over those edges.
    pub bytes: u64,
}

impl CriticalPath {
    /// Message edges that occur *after* the chain has started computing
    /// — steady-state stalls, as opposed to pipeline-fill edges. Any
    /// cold-started SPMD broadcast schedule necessarily has fill edges
    /// on its longest chain (the last-finishing rank is one that waited
    /// for the first panel; no schedule can hide a transfer before there
    /// is compute to hide it behind), so the meaningful overlap signal
    /// is whether any transfer stalls the multiply loop *once it is
    /// running*.
    pub fn steady_state_edges(&self) -> Vec<MessageEdge> {
        let first_compute = self
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::Compute { .. }));
        let Some(fc) = first_compute else {
            return Vec::new();
        };
        let cutoff = self.events[fc].t1;
        self.message_edges
            .iter()
            .filter(|e| e.arrive > cutoff)
            .copied()
            .collect()
    }

    /// Whether every message edge on the path is pipeline fill: once the
    /// chain's first compute completes, no transfer ever stalls it
    /// again, i.e. steady-state communication is fully hidden behind the
    /// multiply. This is the acceptance signal for the pipelined overlap
    /// algorithms — at compute-bound sizes their broadcast edges must
    /// leave the steady-state critical path entirely.
    pub fn is_compute_bound(&self) -> bool {
        self.steady_state_edges().is_empty()
    }

    /// Attributes the path's message edges to latency (α per hop) and
    /// bandwidth (β per byte), and sums the compute spans on the path.
    pub fn attribute(&self, alpha: f64, beta: f64) -> PathCost {
        let bytes: u64 = self.message_edges.iter().map(|e| e.bytes).sum();
        let compute_seconds = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Compute { .. }))
            .map(TraceEvent::duration)
            .sum();
        PathCost {
            alpha_seconds: self.message_edges.len() as f64 * alpha,
            beta_seconds: bytes as f64 * beta,
            compute_seconds,
            edges: self.message_edges.len(),
            bytes,
        }
    }

    /// One-line-per-hop rendering for CLI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: makespan {:.6e}s, {} events, {} message edges\n",
            self.makespan,
            self.events.len(),
            self.message_edges.len()
        ));
        for e in &self.message_edges {
            out.push_str(&format!(
                "  r{} -> r{}  {:>10} B  depart {:.6e}  arrive {:.6e}\n",
                e.src, e.dst, e.bytes, e.depart, e.arrive
            ));
        }
        out
    }
}

/// Matched send/recv pairs: `(send index, recv index)` into the event
/// slice. FIFO per `(src, dst, tag, channel)`.
pub(crate) fn match_messages(events: &[TraceEvent]) -> Vec<(usize, usize)> {
    use std::collections::{HashMap, VecDeque};
    // Sends in per-rank recording order; `events` is grouped by rank in
    // recording order already, so a linear scan preserves FIFO per key.
    let mut pending: HashMap<(usize, usize, u64, u64), VecDeque<usize>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if let EventKind::Send {
            dst, tag, channel, ..
        } = e.kind
        {
            pending
                .entry((e.rank, dst, tag, channel))
                .or_default()
                .push_back(i);
        }
    }
    let mut pairs = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if let EventKind::Recv {
            src, tag, channel, ..
        } = e.kind
        {
            if let Some(q) = pending.get_mut(&(src, e.rank, tag, channel)) {
                if let Some(s) = q.pop_front() {
                    pairs.push((s, i));
                }
            }
        }
    }
    pairs
}

/// Computes the critical path of `events` (grouped by rank, per-rank
/// recording order — the layout [`crate::Tracer::collect`] produces).
pub(crate) fn critical_path(events: &[TraceEvent]) -> CriticalPath {
    if events.is_empty() {
        return CriticalPath {
            makespan: 0.0,
            events: Vec::new(),
            message_edges: Vec::new(),
        };
    }

    let n = events.len();
    // Dependency edges: program order within a rank, plus send→recv.
    // preds[i] lists (pred index, is_message_edge).
    let mut preds: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    let mut last_on_rank: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if let Some(&prev) = last_on_rank.get(&e.rank) {
            preds[i].push((prev, false));
        }
        last_on_rank.insert(e.rank, i);
    }
    for (s, r) in match_messages(events) {
        preds[r].push((s, true));
    }

    let makespan = events.iter().map(|e| e.t1).fold(0.0, f64::max);
    let eps = 1e-12 * makespan.max(1.0);

    // Events are topologically ordered already: program order is index
    // order within a rank, and a matched send always precedes its recv in
    // *time*; process in order of (t1, then index) to be safe. In both
    // substrates a recv's t1 is >= the send's t1 (the message must be in
    // hand), so sorting by t1 respects every edge.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        events[a]
            .t1
            .partial_cmp(&events[b].t1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // DP: for each event, the predecessor that *binds* it (finishes at or
    // after this event starts — no slack). If several bind, prefer the one
    // whose chain carries the most message hops (breaks the ties a
    // store-and-forward schedule produces between a root's serialized
    // sends and the relay chain). If none binds (idle gap), fall back to
    // the latest-finishing predecessor.
    let mut hops: Vec<usize> = vec![0; n];
    let mut parent: Vec<Option<(usize, bool)>> = vec![None; n];
    for &i in &order {
        let e = &events[i];
        let mut best: Option<(usize, bool)> = None;
        let mut best_binding = false;
        for &(p, is_msg) in &preds[i] {
            let binding = events[p].t1 >= e.t0 - eps;
            let cand_hops = hops[p] + usize::from(is_msg);
            let better = match &best {
                None => true,
                Some((bp, b_msg)) => {
                    let (bp, b_msg) = (*bp, *b_msg);
                    let best_hops = hops[bp] + usize::from(b_msg);
                    if binding != best_binding {
                        binding
                    } else if binding {
                        cand_hops > best_hops
                    } else {
                        events[p].t1 > events[bp].t1
                    }
                }
            };
            if better {
                best = Some((p, is_msg));
                best_binding = binding;
            }
        }
        if let Some((p, is_msg)) = best {
            hops[i] = hops[p] + usize::from(is_msg);
            parent[i] = Some((p, is_msg));
        }
    }

    // Endpoint: latest finish; among ties, the chain with the most hops.
    let mut end = 0usize;
    for i in 1..n {
        let later = events[i].t1 > events[end].t1 + eps;
        let tied = (events[i].t1 - events[end].t1).abs() <= eps;
        if later || (tied && hops[i] > hops[end]) {
            end = i;
        }
    }

    // Walk back.
    let mut chain = vec![(end, false)];
    let mut cur = end;
    while let Some((p, is_msg)) = parent[cur] {
        chain.push((p, is_msg));
        cur = p;
    }
    chain.reverse();

    let mut path_events = Vec::with_capacity(chain.len());
    let mut message_edges = Vec::new();
    for (pos, &(i, is_msg_out)) in chain.iter().enumerate() {
        path_events.push(events[i]);
        // Each entry's flag describes its *outgoing* edge to the next
        // entry (the parent link was stored on the parent side).
        if is_msg_out {
            if let Some(&(j, _)) = chain.get(pos + 1) {
                let send = &events[i];
                let recv = &events[j];
                message_edges.push(MessageEdge {
                    src: send.rank,
                    dst: recv.rank,
                    bytes: send.kind.bytes(),
                    depart: send.t0,
                    arrive: recv.t1,
                });
            }
        }
    }

    CriticalPath {
        makespan: events[end].t1,
        events: path_events,
        message_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, t0: f64, t1: f64, kind: EventKind) -> TraceEvent {
        TraceEvent { rank, t0, t1, kind }
    }

    fn send(dst: usize, bytes: u64) -> EventKind {
        EventKind::Send {
            dst,
            tag: 0,
            channel: 0,
            bytes,
        }
    }

    fn recv(src: usize, bytes: u64) -> EventKind {
        EventKind::Recv {
            src,
            tag: 0,
            channel: 0,
            bytes,
        }
    }

    #[test]
    fn empty_trace_has_empty_path() {
        let cp = critical_path(&[]);
        assert_eq!(cp.makespan, 0.0);
        assert!(cp.events.is_empty());
        assert!(cp.message_edges.is_empty());
    }

    #[test]
    fn fifo_matching_pairs_in_order() {
        let events = vec![
            ev(0, 0.0, 1.0, send(1, 10)),
            ev(0, 1.0, 2.0, send(1, 20)),
            ev(1, 0.0, 1.0, recv(0, 10)),
            ev(1, 1.0, 2.0, recv(0, 20)),
        ];
        assert_eq!(match_messages(&events), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn relay_chain_beats_serialized_sends_on_hops() {
        // Store-and-forward binomial bcast over p=4 with unit transfer
        // time: root 0 sends to 1 then 2; 1 relays to 3. The chains
        // ending at recv@2 (1 hop) and recv@3 (2 hops) tie at t=2; the
        // hop-maximizing tie-break must pick recv@3's chain.
        let events = vec![
            // rank 0
            ev(0, 0.0, 1.0, send(1, 8)),
            ev(0, 1.0, 2.0, send(2, 8)),
            // rank 1
            ev(1, 0.0, 1.0, recv(0, 8)),
            ev(1, 1.0, 2.0, send(3, 8)),
            // rank 2
            ev(2, 0.0, 2.0, recv(0, 8)),
            // rank 3
            ev(3, 0.0, 2.0, recv(1, 8)),
        ];
        let cp = critical_path(&events);
        assert_eq!(cp.message_edges.len(), 2);
        assert_eq!((cp.message_edges[0].src, cp.message_edges[0].dst), (0, 1));
        assert_eq!((cp.message_edges[1].src, cp.message_edges[1].dst), (1, 3));
        assert!((cp.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_falls_back_to_latest_predecessor() {
        // Rank 0 computes [0,1], idles, computes [5,6]: the path must
        // still connect through the earlier event.
        let events = vec![
            ev(0, 0.0, 1.0, EventKind::Compute { flops: 5 }),
            ev(0, 5.0, 6.0, EventKind::Compute { flops: 7 }),
        ];
        let cp = critical_path(&events);
        assert_eq!(cp.events.len(), 2);
        assert!((cp.makespan - 6.0).abs() < 1e-12);
    }

    #[test]
    fn attribution_splits_alpha_beta_compute() {
        let events = vec![
            ev(0, 0.0, 1.0, send(1, 100)),
            ev(1, 0.0, 1.0, recv(0, 100)),
            ev(1, 1.0, 3.0, EventKind::Compute { flops: 50 }),
        ];
        let cp = critical_path(&events);
        let cost = cp.attribute(0.5, 0.01);
        assert_eq!(cost.edges, 1);
        assert_eq!(cost.bytes, 100);
        assert!((cost.alpha_seconds - 0.5).abs() < 1e-12);
        assert!((cost.beta_seconds - 1.0).abs() < 1e-12);
        assert!((cost.compute_seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fill_edges_do_not_break_compute_bound() {
        // Rank 1 waits for the first panel (fill edge), then computes to
        // the end: compute-bound despite the edge.
        let events = vec![
            ev(0, 0.0, 1.0, send(1, 8)),
            ev(1, 0.0, 1.0, recv(0, 8)),
            ev(1, 1.0, 9.0, EventKind::Compute { flops: 100 }),
        ];
        let cp = critical_path(&events);
        assert_eq!(cp.message_edges.len(), 1);
        assert!(cp.steady_state_edges().is_empty());
        assert!(cp.is_compute_bound());
    }

    #[test]
    fn steady_state_stall_breaks_compute_bound() {
        // The multiply is already running (rank 0 computes, then sends a
        // panel rank 1 stalls on): an edge past the chain's first compute
        // is a steady-state stall, not pipeline fill.
        let events = vec![
            ev(0, 0.0, 2.0, EventKind::Compute { flops: 100 }),
            ev(0, 2.0, 3.0, send(1, 8)),
            ev(1, 0.0, 1.0, EventKind::Compute { flops: 100 }),
            ev(1, 1.0, 3.0, recv(0, 8)),
            ev(1, 3.0, 4.0, EventKind::Compute { flops: 100 }),
        ];
        let cp = critical_path(&events);
        assert_eq!(cp.message_edges.len(), 1);
        assert_eq!(cp.steady_state_edges().len(), 1);
        assert!(!cp.is_compute_bound());
    }

    #[test]
    fn render_mentions_every_edge() {
        let events = vec![ev(0, 0.0, 1.0, send(1, 64)), ev(1, 0.0, 1.0, recv(0, 64))];
        let s = critical_path(&events).render();
        assert!(s.contains("1 message edges"));
        assert!(s.contains("r0 -> r1"));
    }
}
