//! Chrome-trace (Perfetto) JSON export.
//!
//! Emits the classic Trace Event Format JSON array: one track (`tid`)
//! per rank under a single process, complete-duration events (`ph: "X"`)
//! for every span, and flow arrows (`ph: "s"` / `"f"`) connecting each
//! matched send to its receive. Load the output at
//! <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! Nested spans (a pivot step containing a collective containing sends)
//! render as a nested flame because Chrome nests `X` events on one track
//! by containment of their time ranges.

use crate::critical::match_messages;
use crate::tracer::Trace;

/// Seconds → Trace-Event-Format microseconds.
fn us(t: f64) -> f64 {
    t * 1e6
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  {");
    out.push_str(body);
    out.push('}');
}

/// Serializes a [`Trace`] into Chrome tracing JSON.
pub(crate) fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    let mut first = true;

    // Track naming metadata: one row per rank, sorted by rank.
    for rank in 0..trace.ranks {
        push_event(
            &mut out,
            &mut first,
            &format!(
                r#""name":"thread_name","ph":"M","pid":0,"tid":{rank},"args":{{"name":"rank {rank}"}}"#
            ),
        );
        push_event(
            &mut out,
            &mut first,
            &format!(
                r#""name":"thread_sort_index","ph":"M","pid":0,"tid":{rank},"args":{{"sort_index":{rank}}}"#
            ),
        );
    }

    for e in &trace.events {
        push_event(
            &mut out,
            &mut first,
            &format!(
                r#""name":"{}","cat":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":0,"tid":{},"args":{{"bytes":{}}}"#,
                e.kind.name(),
                e.kind.category(),
                us(e.t0),
                us(e.duration()),
                e.rank,
                e.kind.bytes(),
            ),
        );
    }

    // Flow arrows between matched sends and receives. The start ("s")
    // binds to the send span, the finish ("f", bp:"e") to the enclosing
    // receive span at its end.
    for (id, (s, r)) in match_messages(&trace.events).into_iter().enumerate() {
        let send = &trace.events[s];
        let recv = &trace.events[r];
        push_event(
            &mut out,
            &mut first,
            &format!(
                r#""name":"msg","cat":"flow","ph":"s","id":{id},"ts":{:.3},"pid":0,"tid":{}"#,
                us(send.t0),
                send.rank,
            ),
        );
        push_event(
            &mut out,
            &mut first,
            &format!(
                r#""name":"msg","cat":"flow","ph":"f","bp":"e","id":{id},"ts":{:.3},"pid":0,"tid":{}"#,
                us(recv.t1),
                recv.rank,
            ),
        );
    }

    out.push_str("\n]\n");
    out
}

/// Minimal JSON validator (the workspace has no serde): checks that `s`
/// is one well-formed JSON value. Returns `Err` with a byte offset and
/// reason on the first violation.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        None => Err(format!("unexpected end of input at byte {i}")),
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, b"true"),
        Some(b'f') => parse_lit(b, i, b"false"),
        Some(b'n') => parse_lit(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        Some(c) => Err(format!("unexpected byte {c:?} at {i}")),
    }
}

fn parse_object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        parse_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn parse_array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // opening '"'
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*i + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {i}"));
                            }
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1F => return Err(format!("raw control char in string at byte {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::tracer::Tracer;

    fn tiny_trace() -> Trace {
        let t = Tracer::new(2);
        {
            let s0 = t.sink(0);
            let s1 = t.sink(1);
            s0.record(
                EventKind::Send {
                    dst: 1,
                    tag: 7,
                    channel: 0,
                    bytes: 64,
                },
                0.0,
                1e-3,
            );
            s1.record(
                EventKind::Recv {
                    src: 0,
                    tag: 7,
                    channel: 0,
                    bytes: 64,
                },
                0.0,
                2e-3,
            );
            s1.record(EventKind::Compute { flops: 128 }, 2e-3, 5e-3);
        }
        t.collect()
    }

    #[test]
    fn export_is_valid_json_with_spans_and_flows() {
        let json = to_chrome_json(&tiny_trace());
        validate_json(&json).expect("exported trace must be valid JSON");
        assert!(json.trim_start().starts_with('['));
        // 3 spans
        assert_eq!(json.matches(r#""ph":"X""#).count(), 3);
        // 1 matched message → one flow start + one flow finish
        assert_eq!(json.matches(r#""ph":"s""#).count(), 1);
        assert_eq!(json.matches(r#""ph":"f""#).count(), 1);
        // 2 ranks → 2 thread_name metadata records
        assert_eq!(json.matches("thread_name").count(), 2);
    }

    #[test]
    fn export_of_empty_trace_is_valid() {
        let t = Tracer::new(1);
        let json = to_chrome_json(&t.collect());
        validate_json(&json).expect("empty trace exports cleanly");
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for ok in [
            "[]",
            "{}",
            r#"{"a":1,"b":[true,false,null],"c":"x\n"}"#,
            "-1.5e-3",
            r#""é""#,
            " [ 1 , 2 ] ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "[1,",
            "{\"a\":}",
            "[1 2]",
            "\"unterminated",
            "01x",
            "{\"a\":1}trailing",
            "{'a':1}",
            "[1,]",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn spans_carry_rank_as_tid() {
        let json = to_chrome_json(&tiny_trace());
        assert!(json.contains(r#""tid":0"#));
        assert!(json.contains(r#""tid":1"#));
    }
}
