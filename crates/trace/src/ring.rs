//! Lock-free single-writer event buffers.
//!
//! Each rank owns one [`Ring`]: the rank thread appends with a relaxed
//! load + release store (no CAS, no locks — there is exactly one writer
//! per ring, enforced by [`crate::TraceSink`] being neither `Clone` nor
//! claimable twice), and the collector reads with acquire loads after the
//! rank threads are done. When the ring fills, further events are counted
//! as dropped rather than blocking the hot path.

use crate::event::TraceEvent;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

pub(crate) struct Ring {
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    /// Number of initialized slots. The writer publishes with a release
    /// store; readers synchronize with an acquire load.
    len: AtomicUsize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
    /// Writer-exclusivity guard: set while a `TraceSink` holds this ring.
    claimed: AtomicBool,
}

// The writer side is confined to one thread at a time (`claimed`), and the
// reader only touches slots below the release-published `len`.
unsafe impl Sync for Ring {}

impl Ring {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Ring {
            slots,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            claimed: AtomicBool::new(false),
        }
    }

    /// Marks the ring as owned by a writer. Panics on double-claim: two
    /// live sinks for one rank would race the single-writer protocol.
    pub(crate) fn claim(&self) {
        assert!(
            !self.claimed.swap(true, Ordering::AcqRel),
            "rank ring already claimed by another TraceSink"
        );
    }

    pub(crate) fn release(&self) {
        self.claimed.store(false, Ordering::Release);
    }

    /// Appends one event. Single-writer only (guaranteed by `claim`).
    pub(crate) fn push(&self, ev: TraceEvent) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: slot `i` is not yet published (`i >= len` as seen by any
        // reader) and this thread is the only writer.
        unsafe { (*self.slots[i].get()).write(ev) };
        self.len.store(i + 1, Ordering::Release);
    }

    /// Copies out the recorded events. Sound to call concurrently with a
    /// writer: only slots below the published length are read.
    pub(crate) fn snapshot(&self) -> Vec<TraceEvent> {
        let n = self.len.load(Ordering::Acquire);
        (0..n)
            // SAFETY: slots `< n` were initialized before the release
            // store that published `n`; `TraceEvent` is `Copy`.
            .map(|i| unsafe { (*self.slots[i].get()).assume_init() })
            .collect()
    }

    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(rank: usize, t: f64) -> TraceEvent {
        TraceEvent {
            rank,
            t0: t,
            t1: t,
            kind: EventKind::Compute { flops: 0 },
        }
    }

    #[test]
    fn push_then_snapshot_roundtrips() {
        let ring = Ring::new(8);
        ring.push(ev(0, 1.0));
        ring.push(ev(0, 2.0));
        let out = ring.snapshot();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].t0, 1.0);
        assert_eq!(out[1].t0, 2.0);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_instead_of_blocking() {
        let ring = Ring::new(2);
        for i in 0..5 {
            ring.push(ev(0, i as f64));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        // The first events are kept, the overflow is what's dropped.
        assert_eq!(ring.snapshot()[1].t0, 1.0);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_claim_panics() {
        let ring = Ring::new(2);
        ring.claim();
        ring.claim();
    }

    #[test]
    fn claim_release_claim_is_fine() {
        let ring = Ring::new(2);
        ring.claim();
        ring.release();
        ring.claim();
    }

    #[test]
    fn cross_thread_publish_is_visible_after_join() {
        let ring = std::sync::Arc::new(Ring::new(1024));
        let w = std::sync::Arc::clone(&ring);
        std::thread::spawn(move || {
            for i in 0..1000 {
                w.push(ev(1, i as f64));
            }
        })
        .join()
        .unwrap();
        let out = ring.snapshot();
        assert_eq!(out.len(), 1000);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.t0, i as f64);
        }
    }
}
