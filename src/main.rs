//! `hsumma` — command-line front end of the reproduction.
//!
//! ```text
//! hsumma run     --n 512 --grid 4x4 --groups 2x2 --block 32
//! hsumma sweep   --machine bluegene --profile measured --p 2048 --n 65536 --block 256
//! hsumma predict --alpha 5e-7 --beta 1e-11 --n 4194304 --p 1048576 --block 256
//! hsumma bcast   --p 16 --bytes 1048576
//! ```
//!
//! `run` executes HSUMMA with real data on rank threads and verifies the
//! product; `sweep` simulates a group-count sweep on a platform profile;
//! `predict` evaluates the paper's analytic model for arbitrary machine
//! parameters; `bcast` compares the broadcast algorithms' simulated cost.

use hsumma_repro::core::simdrive::sim_summa_sync;
use hsumma_repro::core::testutil::reference_product;
use hsumma_repro::core::tuning::{best_by_comm, power_of_two_gs, sweep_groups_with};
use hsumma_repro::core::{hsumma, HsummaConfig};
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GridShape};
use hsumma_repro::model::predict::{best_point, sweep_groups as model_sweep};
use hsumma_repro::model::{classify_regime, BcastModel, ModelParams, Regime};
use hsumma_repro::netsim::{Hockney, Platform, SimBcast, SimNet};
use hsumma_repro::runtime::Runtime;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&opts),
        "sweep" => cmd_sweep(&opts),
        "predict" => cmd_predict(&opts),
        "bcast" => cmd_bcast(&opts),
        "trace" => cmd_trace(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hsumma run     [--n 512] [--grid 4x4] [--groups 2x2] [--block 32]
                 execute HSUMMA on rank threads, verify against serial
  hsumma sweep   [--machine grid5000|bluegene|exascale] [--profile ideal|measured]
                 [--p 2048] [--n 65536] [--block 256]
                 simulate the group-count sweep on a platform
  hsumma predict [--alpha S] [--beta S_PER_BYTE] [--gamma S] [--n N] [--p P] [--block B]
                 evaluate the analytic model (defaults: exascale roadmap)
  hsumma bcast   [--p 16] [--bytes 1048576]
                 compare simulated broadcast algorithm costs
  hsumma trace   [--p 16] [--n 256] [--block 32] [--groups 4] [--out trace.json]
                 dump a Chrome-tracing timeline of a simulated HSUMMA run";

/// Parses `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{key}`"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

/// Parses `4x4`-style grid shapes.
fn parse_shape(s: &str) -> Result<GridShape, String> {
    let (a, b) = s
        .split_once('x')
        .ok_or_else(|| format!("expected RxC, got `{s}`"))?;
    let rows = a.parse().map_err(|_| format!("bad rows in `{s}`"))?;
    let cols = b.parse().map_err(|_| format!("bad cols in `{s}`"))?;
    Ok(GridShape::new(rows, cols))
}

fn cmd_run(opts: &HashMap<String, String>) -> Result<(), String> {
    let n: usize = get(opts, "n", 512)?;
    let grid = parse_shape(&get(opts, "grid", "4x4".to_string())?)?;
    let groups = parse_shape(&get(opts, "groups", "2x2".to_string())?)?;
    let block: usize = get(opts, "block", 32)?;

    let cfg = HsummaConfig::uniform(groups, block);
    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&b);

    let t0 = std::time::Instant::now();
    let out = Runtime::run(grid.size(), |comm| {
        let c = hsumma(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &cfg,
        )
        .unwrap();
        (c, comm.stats())
    });
    let wall = t0.elapsed().as_secs_f64();

    let tiles: Vec<_> = out.iter().map(|(c, _)| c.clone()).collect();
    let c = dist.gather(&tiles);
    let err = c.max_abs_diff(&reference_product(&a, &b));
    let comm_max = out.iter().map(|(_, s)| s.comm_seconds).fold(0.0, f64::max);
    let comp_max = out.iter().map(|(_, s)| s.comp_seconds).fold(0.0, f64::max);
    let msgs: u64 = out.iter().map(|(_, s)| s.msgs_sent).sum();

    println!(
        "HSUMMA n={n} grid {}x{} groups {}x{} block {block}",
        grid.rows, grid.cols, groups.rows, groups.cols
    );
    println!("wall time          {wall:.4} s");
    println!("max rank comm      {comm_max:.4} s");
    println!("max rank compute   {comp_max:.4} s");
    println!("messages           {msgs}");
    println!("max |C - A*B|      {err:.3e}");
    if err < 1e-9 {
        println!("verification       OK");
        Ok(())
    } else {
        Err("verification FAILED".to_string())
    }
}

fn cmd_sweep(opts: &HashMap<String, String>) -> Result<(), String> {
    let machine = get(opts, "machine", "bluegene".to_string())?;
    let profile = get(opts, "profile", "measured".to_string())?;
    let p: usize = get(opts, "p", 2048)?;
    let n: usize = get(opts, "n", 65536)?;
    let block: usize = get(opts, "block", 256)?;

    let platform = match (machine.as_str(), profile.as_str()) {
        ("grid5000", "ideal") => Platform::grid5000(),
        ("grid5000", "measured") => Platform::grid5000_effective(),
        ("bluegene", "ideal") => Platform::bluegene_p(),
        ("bluegene", "measured") => Platform::bluegene_p_effective(),
        ("exascale", _) => Platform::exascale(),
        _ => return Err(format!("unknown machine/profile `{machine}`/`{profile}`")),
    };
    let bcast = if profile == "ideal" {
        SimBcast::ScatterAllgather
    } else {
        SimBcast::Flat
    };
    let mut s = (p as f64).sqrt() as usize;
    while s > 1 && !p.is_multiple_of(s) {
        s -= 1;
    }
    let grid = GridShape::new(s, p / s);

    println!(
        "sweep on {} (p={p}, grid {}x{}, n={n}, b=B={block})",
        platform.name,
        s,
        p / s
    );
    let summa = sim_summa_sync(&platform, grid, n, block, bcast);
    println!(
        "SUMMA: total {:.4} s, comm {:.4} s",
        summa.total_time, summa.comm_time
    );
    let sweep = sweep_groups_with(
        &platform,
        grid,
        n,
        block,
        block,
        bcast,
        bcast,
        &power_of_two_gs(p),
        true,
    );
    println!(
        "{:>7} {:>9} {:>12} {:>12}",
        "G", "IxJ", "total (s)", "comm (s)"
    );
    for pt in &sweep {
        println!(
            "{:>7} {:>4}x{:<4} {:>12.4} {:>12.4}",
            pt.g, pt.groups.rows, pt.groups.cols, pt.report.total_time, pt.report.comm_time
        );
    }
    let best = best_by_comm(&sweep);
    println!(
        "best: G={} -> comm {:.4} s ({:.2}x less than SUMMA)",
        best.g,
        best.report.comm_time,
        summa.comm_time / best.report.comm_time
    );
    Ok(())
}

fn cmd_predict(opts: &HashMap<String, String>) -> Result<(), String> {
    let defaults = ModelParams::exascale();
    let params = ModelParams {
        alpha: get(opts, "alpha", defaults.alpha)?,
        beta: get(opts, "beta", defaults.beta)?,
        gamma: get(opts, "gamma", defaults.gamma)?,
    };
    let n: f64 = get(opts, "n", (1u64 << 22) as f64)?;
    let p: f64 = get(opts, "p", (1u64 << 20) as f64)?;
    let b: f64 = get(opts, "block", 256.0)?;

    match classify_regime(params.alpha, params.beta, n, p, b) {
        Regime::InteriorMinimum => {
            println!("regime: latency-dominated (alpha/beta > 2nb/p) -> optimum near G=sqrt(p)")
        }
        Regime::InteriorMaximum => {
            println!("regime: bandwidth-dominated -> use G=1 or G=p (ties SUMMA)")
        }
        Regime::Degenerate => println!("regime: boundary — G does not matter"),
    }
    let gs: Vec<f64> = {
        let mut v = Vec::new();
        let mut g = 1.0;
        while g <= p {
            v.push(g);
            g *= 4.0;
        }
        v.push(p);
        v
    };
    let sweep = model_sweep(&params, BcastModel::VanDeGeijn, n, p, b, &gs);
    println!(
        "{:>12} {:>14} {:>14}",
        "G", "HSUMMA comm(s)", "SUMMA comm(s)"
    );
    for pt in &sweep {
        println!(
            "{:>12} {:>14.4} {:>14.4}",
            pt.g,
            pt.hsumma.comm(),
            pt.summa.comm()
        );
    }
    let best = best_point(&sweep);
    println!(
        "best: G={} -> {:.4} s ({:.2}x less than SUMMA)",
        best.g,
        best.hsumma.comm(),
        best.summa.comm() / best.hsumma.comm()
    );
    Ok(())
}

fn cmd_bcast(opts: &HashMap<String, String>) -> Result<(), String> {
    use hsumma_repro::core::{Communicator, PhantomMat};
    use hsumma_repro::netsim::spmd::SimWorld;

    let p: usize = get(opts, "p", 16)?;
    let bytes: u64 = get(opts, "bytes", 1_048_576)?;
    // Payloads travel as whole f64 elements on every substrate.
    let elems = (bytes / 8).max(1) as usize;
    let net_params = Hockney::new(get(opts, "alpha", 1e-5)?, get(opts, "beta", 1e-9)?);
    println!(
        "broadcast of {} B over {p} ranks (alpha={:.1e}, beta={:.1e}):",
        elems as u64 * 8,
        net_params.alpha,
        net_params.beta
    );
    for (name, algo) in [
        ("flat", SimBcast::Flat),
        ("binomial", SimBcast::Binomial),
        ("binary", SimBcast::Binary),
        ("ring", SimBcast::Ring),
        ("pipelined(16)", SimBcast::Pipelined { segments: 16 }),
        ("van de Geijn", SimBcast::ScatterAllgather),
    ] {
        let (net, _) = SimWorld::run(SimNet::new(p, net_params), 0.0, false, move |comm| {
            let mut m = PhantomMat {
                rows: 1,
                cols: elems,
            };
            comm.bcast_mat(algo, 0, &mut m).unwrap();
        });
        println!("{name:>14}: {:.6} s", net.elapsed());
    }
    Ok(())
}

fn cmd_trace(opts: &HashMap<String, String>) -> Result<(), String> {
    use hsumma_repro::core::grid::HierGrid;
    use hsumma_repro::core::simdrive::sim_hsumma_on;

    let p: usize = get(opts, "p", 16)?;
    let n: usize = get(opts, "n", 256)?;
    let block: usize = get(opts, "block", 32)?;
    let g: usize = get(opts, "groups", 4)?;
    let out = get(opts, "out", "trace.json".to_string())?;

    let mut s = (p as f64).sqrt() as usize;
    while s > 1 && !p.is_multiple_of(s) {
        s -= 1;
    }
    let grid = GridShape::new(s, p / s);
    let groups = hsumma_repro::core::HierGrid::factor_groups(grid, g)
        .ok_or_else(|| format!("G={g} has no valid factorization on a {s}x{} grid", p / s))?;
    let platform = Platform::bluegene_p_effective();
    let mut net = SimNet::new(p, platform.net);
    net.enable_trace();
    let report = sim_hsumma_on(
        &mut net,
        platform.gamma,
        grid,
        groups,
        n,
        block,
        block,
        SimBcast::Flat,
        SimBcast::Flat,
        true,
    );
    let json = net.trace_to_chrome_json().expect("tracing was enabled");
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "HSUMMA p={p} G={g} n={n}: {} messages, {:.4} s simulated; trace -> {out}",
        report.msgs, report.total_time
    );
    println!("open it at chrome://tracing or https://ui.perfetto.dev");
    let _ = HierGrid::valid_group_counts(grid); // keep import used under all cfgs
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_collects_pairs() {
        let args: Vec<String> = ["--n", "64", "--grid", "2x2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let m = parse_flags(&args).expect("valid flags");
        assert_eq!(m["n"], "64");
        assert_eq!(m["grid"], "2x2");
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let args = vec!["--n".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_rejects_bare_words() {
        let args = vec!["n".to_string(), "64".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_shape_accepts_rxc() {
        assert_eq!(parse_shape("4x8").expect("valid"), GridShape::new(4, 8));
        assert!(parse_shape("4*8").is_err());
        assert!(parse_shape("x8").is_err());
    }

    #[test]
    fn get_falls_back_to_default() {
        let m = HashMap::new();
        assert_eq!(get(&m, "n", 7usize).expect("default"), 7);
    }

    #[test]
    fn run_command_verifies_small_case() {
        let mut opts = HashMap::new();
        opts.insert("n".to_string(), "16".to_string());
        opts.insert("grid".to_string(), "2x2".to_string());
        opts.insert("groups".to_string(), "2x2".to_string());
        opts.insert("block".to_string(), "2".to_string());
        cmd_run(&opts).expect("small run verifies");
    }

    #[test]
    fn predict_command_accepts_defaults() {
        cmd_predict(&HashMap::new()).expect("defaults predict");
    }

    #[test]
    fn sweep_command_runs_small_case() {
        let mut opts = HashMap::new();
        opts.insert("machine".to_string(), "grid5000".to_string());
        opts.insert("profile".to_string(), "ideal".to_string());
        opts.insert("p".to_string(), "16".to_string());
        opts.insert("n".to_string(), "128".to_string());
        opts.insert("block".to_string(), "16".to_string());
        cmd_sweep(&opts).expect("small sweep runs");
    }

    #[test]
    fn sweep_command_rejects_unknown_machine() {
        let mut opts = HashMap::new();
        opts.insert("machine".to_string(), "cray".to_string());
        assert!(cmd_sweep(&opts).is_err());
    }

    #[test]
    fn trace_command_writes_chrome_json() {
        let dir = std::env::temp_dir().join("hsumma_trace_test.json");
        let mut opts = HashMap::new();
        opts.insert("p".to_string(), "4".to_string());
        opts.insert("n".to_string(), "32".to_string());
        opts.insert("block".to_string(), "8".to_string());
        opts.insert("groups".to_string(), "1".to_string());
        opts.insert("out".to_string(), dir.to_string_lossy().to_string());
        cmd_trace(&opts).expect("trace command runs");
        let body = std::fs::read_to_string(&dir).expect("file written");
        assert!(body.trim_start().starts_with('['));
        assert!(body.contains("\"ph\":\"X\""));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn bcast_command_runs() {
        let mut opts = HashMap::new();
        opts.insert("p".to_string(), "8".to_string());
        cmd_bcast(&opts).expect("bcast comparison runs");
    }
}
