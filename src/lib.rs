//! # hsumma-repro
//!
//! Umbrella crate for the reproduction of *"Hierarchical Parallel Matrix
//! Multiplication on Large-Scale Distributed Memory Platforms"* (Quintin,
//! Hasanov, Lastovetsky — ICPP 2013). It re-exports every sub-crate under a
//! stable façade so examples, integration tests and downstream users can
//! depend on a single package:
//!
//! * [`matrix`] — dense matrices, distributions, local GEMM;
//! * [`runtime`] — the threaded message-passing runtime (MPI substitute);
//! * [`netsim`] — the discrete-event Hockney-model network simulator;
//! * [`core`] — SUMMA / HSUMMA / Cannon / Fox, real and simulated;
//! * [`sparse`] — CSR payloads on both substrates, 2-D SpGEMM/SDDMM;
//! * [`model`] — the paper's closed-form cost models and predictions,
//!   including the nnz-aware sparse scoreboard;
//! * [`trace`] — per-rank event tracing, Chrome-trace export,
//!   critical-path analysis (shared by `runtime` and `netsim`).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and experiment index.

pub use hsumma_core as core;
pub use hsumma_matrix as matrix;
pub use hsumma_model as model;
pub use hsumma_netsim as netsim;
pub use hsumma_runtime as runtime;
pub use hsumma_sparse as sparse;
pub use hsumma_trace as trace;
